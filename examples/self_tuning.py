"""Self-tuning netFilter: estimate parameters in-network, derive (g, f)
from the paper's formulas, then run (Section IV-C/D/E end to end).

The optimal filter size (Formula 3) and filter count (Formula 6) need
v̄, v̄_light, n and r — which no peer knows.  The paper's answer is branch
sampling: peers along a few random root-to-leaf paths sample their local
items, the root mass-scales the collected aggregates into global-value
estimates (Formulae 7-8), and the formulas do the rest.  This example
compares the self-tuned run against an oracle-tuned run and against two
badly-tuned ones.

Run:  python examples/self_tuning.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    Hierarchy,
    NetFilter,
    NetFilterConfig,
    Network,
    ParameterEstimates,
    ParameterEstimator,
    SamplingConfig,
    Simulation,
    Topology,
    Workload,
    derive_optimal_settings,
)

RATIO = 0.01


def run_with(engine: AggregationEngine, label: str, g: int, f: int) -> None:
    config = NetFilterConfig(filter_size=g, num_filters=f, threshold_ratio=RATIO)
    result = NetFilter(config).run(engine)
    print(f"  {label:<22} g={g:>5} f={f}  ->  total {result.breakdown.total:8.1f} B/peer "
          f"({len(result.frequent)} frequent, {result.false_positive_count} candidate FPs)")


def main() -> None:
    n_peers, n_items = 200, 20_000
    sim = Simulation(seed=5)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)
    workload = Workload.zipf(n_items, n_peers, 1.0, sim.rng.stream("workload"))
    network.assign_items(workload.item_sets)
    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)

    # --- In-network estimation (what a deployment would do) -----------
    estimator = ParameterEstimator(
        engine, SamplingConfig(n_branches=5, items_per_peer=60)
    )
    estimated = estimator.run(threshold_ratio=RATIO)
    tuned = derive_optimal_settings(estimated, RATIO, network.size_model)

    # --- Oracle values (what only the simulator can know) -------------
    threshold = workload.threshold(RATIO)
    oracle = ParameterEstimates(
        n_items=workload.n_items,
        heavy_count=workload.heavy_count(threshold),
        mean_value=workload.mean_value(),
        mean_light_value=workload.mean_light_value(threshold),
    )
    ideal = derive_optimal_settings(oracle, RATIO, network.size_model)

    print("Estimated vs oracle workload parameters:")
    print(f"  {'':<16}{'estimated':>12}{'oracle':>12}")
    print(f"  {'n (items)':<16}{estimated.n_items:>12.0f}{oracle.n_items:>12.0f}")
    print(f"  {'r (heavy)':<16}{estimated.heavy_count:>12.0f}{oracle.heavy_count:>12.0f}")
    print(f"  {'mean value':<16}{estimated.mean_value:>12.2f}{oracle.mean_value:>12.2f}")
    print(f"  {'mean light':<16}{estimated.mean_light_value:>12.2f}{oracle.mean_light_value:>12.2f}")

    print("\nnetFilter runs:")
    run_with(engine, "self-tuned (sampled)", tuned.filter_size, tuned.num_filters)
    run_with(engine, "oracle-tuned", ideal.filter_size, ideal.num_filters)
    run_with(engine, "badly tuned (tiny g)", 10, 1)
    run_with(engine, "badly tuned (huge g)", 2000, 8)


if __name__ == "__main__":
    main()
