"""Surviving the root: redundant hierarchies with failover
(paper Section III-A.1's single-point-of-failure mitigation).

The hierarchy root is the one peer a convergecast cannot do without.  The
paper's remedy is to "construct multiple hierarchies": this example builds
three, each rooted at a different peer (one chosen centrally to minimize
height), kills the primary root mid-experiment, and shows the IFI query
failing over — still exact.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro import (
    NetFilter,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
    Workload,
    oracle_frequent_items,
)
from repro.hierarchy import MultiHierarchy, central_root


def main() -> None:
    n_peers = 120

    sim = Simulation(seed=9)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)
    workload = Workload.zipf(8000, n_peers, 1.0, sim.rng.stream("workload"))
    network.assign_items(workload.item_sets)

    # Three redundant hierarchies; the first root is chosen centrally
    # (minimum eccentricity), the backups are arbitrary distinct peers.
    primary_root = central_root(network)
    backups = [p for p in (17, 63) if p != primary_root][:2]
    multi = MultiHierarchy.build(network, roots=[primary_root, *backups])

    for index, hierarchy in enumerate(multi.hierarchies):
        print(f"hierarchy {index}: root {hierarchy.root}, "
              f"height {hierarchy.height()}")

    config = NetFilterConfig(filter_size=120, num_filters=3, threshold_ratio=0.01)
    protocol = NetFilter(config)

    first = multi.run_with_failover(protocol.run)
    print(f"\nQuery 1 (all roots alive): {len(first.frequent)} frequent items, "
          f"served by hierarchy rooted at {multi.primary().hierarchy.root}")

    print(f"\nKilling the primary root (peer {primary_root}) ...")
    network.fail_peer(primary_root)

    second = multi.run_with_failover(protocol.run)
    backup = multi.primary().hierarchy
    print(f"Query 2 (primary down): served by backup hierarchy rooted at "
          f"{backup.root}")

    # Availability is immediate; completeness is bounded by the backup
    # tree's reachability — the dead peer was an *internal* node of the
    # backup too, so its subtree there cannot contribute until that
    # hierarchy repairs (Section III-A.3) or is rebuilt.
    contributors = backup.reachable_participants()
    print(f"Contributing peers: {len(contributors)} of "
          f"{network.n_live_peers} live "
          f"(the dead peer's backup-tree subtree is cut off until repair)")

    from repro.items.itemset import LocalItemSet

    truth = LocalItemSet.merge_many(
        [network.node(p).items for p in contributors]
    ).filter_values(second.threshold)
    print(f"Answer exact over the contributing peers: "
          f"{second.frequent == truth}")
    assert second.frequent == truth
    assert second.n_participants == len(contributors)


if __name__ == "__main__":
    main()
