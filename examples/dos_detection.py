"""DoS-attack detection as an IFI query (paper Table I, row 6).

Peers are vantage points observing traffic flows.  Each peer's local item
set maps destination addresses to the bytes it saw flowing toward them.
A fraction of peers forwards attack traffic toward one victim address.
IFI with a suitable threshold surfaces exactly the victim — with its exact
global traffic volume, which is what a mitigation system needs and why the
paper insists on a *precise* (no-false-positive) answer for this use case.

Run:  python examples/dos_detection.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    Hierarchy,
    NetFilter,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
)
from repro.workload.applications import flow_destination_workload


def main() -> None:
    n_peers = 150

    sim = Simulation(seed=7)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)

    workload, scenario = flow_destination_workload(
        n_peers=n_peers,
        n_addresses=5000,
        flows_per_peer=80,
        rng=sim.rng.stream("workload"),
        attack_flows_per_peer=8,
        attack_flow_bytes=1500,
    )
    network.assign_items(workload.item_sets)
    print(f"Traffic observed by {n_peers} vantage peers over "
          f"{scenario.background_addresses} destination addresses")
    print(f"(planted attack: {scenario.attack_bytes_total} bytes toward one victim)\n")

    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)

    # Threshold: any destination receiving more than 2% of all observed
    # traffic is suspicious.
    config = NetFilterConfig(filter_size=200, num_filters=3, threshold_ratio=0.02)
    result = NetFilter(config).run(engine)

    print(f"Destinations over the {result.threshold}-byte threshold "
          f"(2% of {result.grand_total} total observed bytes):")
    for address, volume in result.frequent:
        marker = "  <-- the planted victim" if address == scenario.victim_address else ""
        print(f"  address {address:>6}: {volume} bytes{marker}")

    detected = scenario.victim_address in result.frequent
    print(f"\nVictim detected: {detected}")
    print(f"False alarms: {len(result.frequent) - int(detected)}")
    print(f"Detection cost: {result.breakdown.total:.0f} bytes/peer "
          f"(vs shipping every address's counter to a coordinator)")
    assert detected, "the planted victim must be found"


if __name__ == "__main__":
    main()
