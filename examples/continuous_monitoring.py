"""Standing IFI monitoring over a live stream, with delta filtering.

Every Table I application is a monitoring task: queries keep arriving and
the hot set drifts.  This example feeds an epoch stream (with popularity
drift) into the network and reruns netFilter each epoch two ways — dense
phase 1 every time vs the sparse delta optimization — printing the exact
frequent set as it evolves and the filtering bytes each mode pays.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    ContinuousNetFilter,
    Hierarchy,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
    Workload,
    ZipfStream,
    oracle_frequent_items,
)

N_PEERS, N_ITEMS, EPOCHS = 100, 10_000, 6


def build(seed: int):
    sim = Simulation(seed=seed)
    topology = Topology.random_connected(N_PEERS, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)
    # Seed data: the usual 10·n instances...
    workload = Workload.zipf(N_ITEMS, N_PEERS, 1.0, sim.rng.stream("workload"))
    network.assign_items(workload.item_sets)
    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)
    # ... and a drifting stream delivering 2% more per epoch.
    stream = ZipfStream(
        n_items=N_ITEMS,
        n_peers=N_PEERS,
        skew=1.0,
        instances_per_epoch=2 * N_ITEMS // 100 * 10,
        rng=sim.rng.stream("stream"),
        drift_per_epoch=2000,
    )
    return network, engine, stream


def main() -> None:
    config = NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=0.01)

    print(f"Monitoring {N_ITEMS} items across {N_PEERS} peers for {EPOCHS} epochs "
          f"(drifting stream)\n")
    print(f"{'epoch':>5}  {'mode':<6} {'filtering B/peer':>17} {'total B/peer':>13} "
          f"{'frequent set (top ids)':<30} exact")
    for delta in (False, True):
        network, engine, stream = build(seed=11)
        monitor = ContinuousNetFilter(config, engine, delta_filtering=delta)
        mode = "delta" if delta else "dense"
        for epoch in range(EPOCHS):
            stream.apply_to(network)
            report = monitor.run_epoch()
            result = report.result
            truth = oracle_frequent_items(network, result.threshold)
            ids = ",".join(str(i) for i in result.frequent_ids[:5].tolist())
            print(f"{epoch:>5}  {mode:<6} {result.breakdown.filtering:>17.1f} "
                  f"{result.breakdown.total:>13.1f} {ids:<30} "
                  f"{result.frequent == truth}")
        print()

    print("Delta filtering pays ~2x on epoch 0 (every group changed) and then")
    print("ships only the groups the stream actually touched — the answer is")
    print("byte-identical to the dense rerun at every epoch.")


if __name__ == "__main__":
    main()
