"""A tour of the aggregation hierarchy and its repair machinery
(paper Figure 3 + Section III-A.3).

Builds the BFS hierarchy over a random overlay, prints its shape, then
kills an internal peer and watches the repair protocol re-attach the
orphaned subtree: depth ← ∞ cascades down, heartbeats (carrying the DEPTH
counter) advertise finite depths, and detached peers adopt new parents.

Run:  python examples/hierarchy_tour.py
"""

from __future__ import annotations

from repro import HeartbeatConfig, Hierarchy, Network, Simulation, Topology
from repro.hierarchy import check_invariants, tree_stats
from repro.hierarchy.maintenance import enable_maintenance
from repro.hierarchy.roles import NodeRole


def main() -> None:
    sim = Simulation(seed=3)
    topology = Topology.random_connected(60, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)

    hierarchy = Hierarchy.build(network, root=0)
    stats = tree_stats(hierarchy)
    print("Hierarchy built over a random overlay:")
    print(f"  participants: {stats.n_participants}")
    print(f"  height h:     {stats.height}")
    print(f"  mean fanout b: {stats.mean_fanout:.2f} (paper default b = 3)")
    print(f"  depth histogram: {stats.depth_histogram}")
    print(f"  invariant violations: {len(check_invariants(hierarchy))}")

    # Watch repair events as they happen.
    repairs: list[str] = []
    sim.trace.subscribe(
        "hierarchy.invalidated",
        lambda record: repairs.append(f"    t={record.time:7.1f}  peer {record.fields['peer']} set depth to INFINITY"),
    )
    sim.trace.subscribe(
        "hierarchy.reattached",
        lambda record: repairs.append(
            f"    t={record.time:7.1f}  peer {record.fields['peer']} reattached "
            f"under {record.fields['parent']} at depth {record.fields['depth']}"
        ),
    )

    enable_maintenance(hierarchy, HeartbeatConfig(interval=2.0, timeout=7.0, jitter=0.2))

    # Pick an internal node with the most children and crash it.
    internal = [p for p in hierarchy.participants() if hierarchy.role_of(p) == NodeRole.INTERNAL]
    victim = max(internal, key=lambda p: len(hierarchy.children_of(p)))
    orphans = sorted(hierarchy.children_of(victim))
    print(f"\nCrashing internal peer {victim} "
          f"(depth {hierarchy.depth_of(victim)}, children {orphans}) ...")
    network.fail_peer(victim)
    sim.run(until=sim.now + 150.0)

    print("  repair log:")
    for line in repairs[:20]:
        print(line)
    if len(repairs) > 20:
        print(f"    ... and {len(repairs) - 20} more events")

    print("\nAfter repair:")
    for orphan in orphans:
        state = hierarchy.state_of(orphan)
        print(f"  peer {orphan}: parent {state.upstream}, depth {state.depth}")
    problems = check_invariants(hierarchy)
    print(f"  invariant violations: {len(problems)}")
    stats = tree_stats(hierarchy)
    print(f"  participants now: {stats.n_participants} "
          f"(the victim is gone, everyone else is attached)")
    assert problems == []


if __name__ == "__main__":
    main()
