"""Internet-worm detection as an IFI query (paper Table I, row 7).

Peers monitor the flows passing through them and fingerprint byte
sequences.  A worm's invariant payload substring appears in flows at many
vantage points simultaneously, so its fingerprint becomes a globally
frequent item long before any single peer sees enough traffic to be sure.
The example plants a worm signature in a minority of peers' traffic and
shows netFilter isolating it — exactly, so a signature-based filter can be
deployed without false-positive collateral damage.

Run:  python examples/worm_detection.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    Hierarchy,
    NetFilter,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
    oracle_frequent_items,
)
from repro.workload.applications import byte_sequence_workload


def main() -> None:
    n_peers = 120

    sim = Simulation(seed=13)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)

    workload, scenario = byte_sequence_workload(
        n_peers=n_peers,
        n_sequences=8000,
        flows_per_peer=100,
        rng=sim.rng.stream("workload"),
        infected_fraction=0.35,
        signature_flows_per_infected=40,
    )
    network.assign_items(workload.item_sets)
    print(f"{n_peers} monitoring peers, {len(scenario.infected_peers)} of them "
          f"carrying worm traffic")
    print(f"Worm signature fingerprint: sequence {scenario.signature_id} "
          f"(in {scenario.flows_with_signature} flows system-wide)\n")

    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)

    config = NetFilterConfig(filter_size=150, num_filters=3, threshold_ratio=0.03)
    result = NetFilter(config).run(engine)

    print(f"Byte sequences appearing in >= {result.threshold} flows:")
    for sequence, count in result.frequent:
        marker = "  <-- the worm signature" if sequence == scenario.signature_id else ""
        print(f"  sequence {sequence:>6}: {count} flows{marker}")

    # Exactness check against a centralized oracle.
    truth = oracle_frequent_items(network, result.threshold)
    print(f"\nMatches a centralized scan exactly: {result.frequent == truth}")

    # Compare with collecting every fingerprint's count (naive baseline).
    from repro import NaiveProtocol

    naive = NaiveProtocol(config).run(engine)
    print(f"Cost: {result.breakdown.total:.0f} bytes/peer vs "
          f"{naive.breakdown.naive:.0f} bytes/peer for full collection "
          f"({100 * result.breakdown.total / naive.breakdown.naive:.0f}%)")
    assert scenario.signature_id in result.frequent


if __name__ == "__main__":
    main()
