"""Quickstart: find the frequent items in a simulated P2P system.

Builds the paper's default scenario at laptop scale — N peers sharing a
Zipf-popular item universe — runs netFilter, checks it against the naive
full-collection baseline, and prints the cost comparison that motivates
the whole paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    Hierarchy,
    NaiveProtocol,
    NetFilter,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
    Workload,
)


def main() -> None:
    n_peers, n_items = 200, 20_000

    # 1. A deterministic simulated P2P system.
    sim = Simulation(seed=42)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)

    # 2. The paper's workload: 10·n item instances, Zipf-popular,
    #    scattered uniformly over peers.
    workload = Workload.zipf(
        n_items=n_items, n_peers=n_peers, skew=1.0, rng=sim.rng.stream("workload")
    )
    network.assign_items(workload.item_sets)

    # 3. A BFS hierarchy over the overlay, and the aggregation engine.
    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)

    # 4. netFilter: find every item with global value >= 1% of the total.
    config = NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=0.01)
    result = NetFilter(config).run(engine)

    print(f"System: {n_peers} peers, {n_items} distinct items, "
          f"grand total v = {result.grand_total}")
    print(f"Threshold t = {result.threshold} (ratio 0.01)")
    print(f"\nFrequent items found: {len(result.frequent)}")
    for item_id, value in list(result.frequent)[:10]:
        print(f"  item {item_id:>6}: global value {value}")

    print(f"\nnetFilter cost: {result.breakdown.total:8.1f} bytes/peer "
          f"(filtering {result.breakdown.filtering:.0f}, "
          f"dissemination {result.breakdown.dissemination:.0f}, "
          f"aggregation {result.breakdown.aggregation:.0f})")
    print(f"Candidates verified: {result.candidate_count} "
          f"({result.false_positive_count} filtering false positives, "
          f"all removed by verification)")

    # 5. The naive baseline: ship every (item, value) pair up the tree.
    naive = NaiveProtocol(config).run(engine)
    print(f"naive cost:     {naive.breakdown.naive:8.1f} bytes/peer")
    print(f"\nnetFilter uses {100 * result.breakdown.total / naive.breakdown.naive:.1f}% "
          f"of the naive approach's bandwidth — with the identical, exact answer: "
          f"{result.frequent == naive.frequent}")


if __name__ == "__main__":
    main()
