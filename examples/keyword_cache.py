"""Cache management via frequent keywords, with shared concurrent requests
(paper Table I row 1 + Section III-A.1).

Peers issue search queries; each peer counts, per keyword, how many of its
own queries contained it.  Several peers simultaneously want the globally
frequent keywords — each with a *different* threshold (a small cache wants
only the very hottest keywords, a large cache can hold more).  Instead of
running one netFilter per request, the requests are routed to the root,
served by a single run at the minimum threshold, and each requester gets
its own slice — with exact global counts, which is what cache replacement
policies rank by.

Run:  python examples/keyword_cache.py
"""

from __future__ import annotations

from repro import (
    AggregationEngine,
    Hierarchy,
    IfiRequest,
    MultiRequestCoordinator,
    NetFilterConfig,
    Network,
    Simulation,
    Topology,
)
from repro.workload.applications import query_keyword_workload


def main() -> None:
    n_peers = 100

    sim = Simulation(seed=21)
    topology = Topology.random_connected(n_peers, 4.0, sim.rng.stream("topology"))
    network = Network(sim, topology)

    workload = query_keyword_workload(
        n_peers=n_peers,
        vocabulary_size=3000,
        queries_per_peer=60,
        rng=sim.rng.stream("workload"),
        skew=1.1,
    )
    network.assign_items(workload.item_sets)

    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)
    coordinator = MultiRequestCoordinator(
        engine,
        NetFilterConfig(filter_size=150, num_filters=3, threshold_ratio=0.01),
    )

    # Three caches of different sizes ask simultaneously.
    leaves = hierarchy.leaves()
    requests = [
        IfiRequest(requester=leaves[0], threshold_ratio=0.02),   # small cache
        IfiRequest(requester=leaves[1], threshold_ratio=0.005),  # large cache
        IfiRequest(requester=leaves[2], threshold_ratio=0.01),   # medium cache
    ]
    answers, shared = coordinator.run(requests)

    print(f"{len(requests)} concurrent requests served by ONE netFilter run "
          f"at the minimum ratio {shared.config.threshold_ratio}")
    print(f"(shared run: {len(shared.frequent)} keywords over the minimum "
          f"threshold, {shared.breakdown.total:.0f} bytes/peer)\n")
    for request in requests:
        keywords = answers[request.requester]
        top = sorted(keywords, key=lambda pair: -pair[1])[:5]
        print(f"Peer {request.requester} (threshold ratio "
              f"{request.threshold_ratio}): {len(keywords)} cacheable keywords")
        for keyword, count in top:
            print(f"    keyword {keyword:>5}: appears in {count} queries")


if __name__ == "__main__":
    main()
