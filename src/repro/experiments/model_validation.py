"""Analytic cost model vs measurement (Section IV-A, Formula 1).

The paper derives ``C_filter = s_a·f·g + s_g·f·w + (s_a+s_i)·(r+fp)``
analytically.  This experiment runs the Figure 5 sweep and prints, per
``g``, each component's prediction next to its measurement:

* filtering and dissemination are *exact* predictions (up to the root's
  missing ``1/N`` share — the root sends nothing upward);
* the aggregation term is an upper bound (it charges every candidate at
  every peer; a peer only forwards candidates present in its subtree), so
  the measured value sits below it — by a factor that shrinks as
  filtering improves and the surviving candidates are the globally-popular
  items held almost everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NetFilterConfig
from repro.core.cost_model import netfilter_cost
from repro.core.netfilter import NetFilter
from repro.experiments.harness import ExperimentScale, build_trial

DEFAULT_G_VALUES: tuple[int, ...] = (50, 100, 200, 400)
NUM_FILTERS = 3


@dataclass(frozen=True)
class ModelRow:
    """Predicted vs measured per-peer cost at one filter size."""

    filter_size: int
    predicted_filtering: float
    measured_filtering: float
    predicted_dissemination: float
    measured_dissemination: float
    aggregation_bound: float
    measured_aggregation: float

    @property
    def filtering_error(self) -> float:
        """Relative prediction error of the filtering term."""
        return abs(self.measured_filtering - self.predicted_filtering) / max(
            self.predicted_filtering, 1e-9
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "g": self.filter_size,
            "filt pred": self.predicted_filtering,
            "filt meas": self.measured_filtering,
            "diss pred": self.predicted_dissemination,
            "diss meas": self.measured_dissemination,
            "aggr bound": self.aggregation_bound,
            "aggr meas": self.measured_aggregation,
        }


def run_model_validation(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    g_values: tuple[int, ...] = DEFAULT_G_VALUES,
) -> list[ModelRow]:
    """Run the sweep and pair Formula 1 with the wire measurements."""
    trial = build_trial(scale or ExperimentScale.paper(), seed=seed)
    population = trial.network.n_peers
    non_root_share = (population - 1) / population
    rows = []
    for filter_size in g_values:
        config = NetFilterConfig(
            filter_size=filter_size,
            num_filters=NUM_FILTERS,
            threshold_ratio=trial.defaults.threshold_ratio,
        )
        result = NetFilter(config).run(trial.engine)
        predicted = netfilter_cost(
            filter_size=filter_size,
            num_filters=NUM_FILTERS,
            heavy_groups_per_filter=result.heavy_groups.total_count / NUM_FILTERS,
            heavy_count=len(result.frequent),
            false_positives=result.false_positive_count,
            size_model=trial.network.size_model,
        )
        rows.append(
            ModelRow(
                filter_size=filter_size,
                predicted_filtering=predicted.filtering * non_root_share,
                measured_filtering=result.breakdown.filtering,
                predicted_dissemination=predicted.dissemination * non_root_share,
                measured_dissemination=result.breakdown.dissemination,
                aggregation_bound=predicted.aggregation,
                measured_aggregation=result.breakdown.aggregation,
            )
        )
    return rows
