"""Ablations of netFilter's design choices (beyond the paper's figures).

Four studies, each isolating one design decision that DESIGN.md calls out:

* :func:`ablation_multi_filter` — are ``f`` independent small filters
  better than one big filter *at the same filtering budget* ``f·g``?
  (Section III-B.2's Strategy 2 vs a bigger Strategy 1.)
* :func:`ablation_gossip` — hierarchical vs push-sum gossip aggregation
  for phase 1: byte cost and accuracy (the paper's future-work direction).
* :func:`ablation_parameter_estimation` — netFilter tuned from the
  Section IV-E sampling estimates vs tuned from the oracle: how much does
  estimation error cost?
* :func:`ablation_topology` — sensitivity of the cost to the overlay
  family the hierarchy is built over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.gossip import GossipAggregation, GossipConfig
from repro.core.config import NetFilterConfig
from repro.core.filters import FilterBank
from repro.core.netfilter import NetFilter
from repro.core.optimizer import ParameterEstimates, derive_optimal_settings
from repro.core.sampling import ParameterEstimator, SamplingConfig
from repro.aggregation.hierarchical import AggregationEngine
from repro.experiments.harness import ExperimentScale, PaperDefaults, build_trial
from repro.experiments.parallel import TrialSpec, run_trials
from repro.hierarchy.builder import Hierarchy
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.net.wire import CostCategory
from repro.sim.engine import Simulation
from repro.workload.workload import Workload


@dataclass(frozen=True)
class AblationRow:
    """One ablation configuration and its measured outcome."""

    label: str
    metrics: dict[str, float]

    def as_dict(self) -> dict[str, float]:
        return {"variant": self.label, **self.metrics}


def ablation_multi_filter(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """Same filtering budget ``f·g = 300``, different splits.

    Multiple independent filters prune heterogeneous false positives
    multiplicatively, while one big filter only thins groups linearly —
    the rows show the candidate count and total cost per split.
    """
    trial = build_trial(scale or ExperimentScale.paper(), seed=seed)
    ratio = trial.defaults.threshold_ratio
    rows = []
    for num_filters, filter_size in ((1, 300), (2, 150), (3, 100), (6, 50)):
        config = NetFilterConfig(
            filter_size=filter_size, num_filters=num_filters, threshold_ratio=ratio
        )
        result = NetFilter(config).run(trial.engine)
        rows.append(
            AblationRow(
                label=f"f={num_filters}, g={filter_size}",
                metrics={
                    "candidates": float(result.candidate_count),
                    "false pos": float(result.false_positive_count),
                    "total B/peer": result.breakdown.total,
                },
            )
        )
    return rows


def ablation_gossip(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    filter_size: int = 100,
    rounds: int = 40,
) -> list[AblationRow]:
    """Phase-1 group aggregates: hierarchical convergecast vs push-sum.

    Hierarchical needs one up-sweep of exact values; push-sum needs tens
    of rounds and stays approximate.  Reported: per-peer bytes and the
    worst relative error of the group-aggregate estimate at the root peer.
    """
    trial = build_trial(scale or ExperimentScale.small(), seed=seed)
    network = trial.network
    bank = FilterBank(num_filters=1, filter_size=filter_size, hash_seed=0)

    before = network.accounting.bytes_by_category()
    config = NetFilterConfig(
        filter_size=filter_size, num_filters=1,
        threshold_ratio=trial.defaults.threshold_ratio,
    )
    net_result = NetFilter(config).run(trial.engine)
    del net_result
    after = network.accounting.bytes_by_category()
    hier_bytes = after.get(CostCategory.FILTERING, 0) - before.get(
        CostCategory.FILTERING, 0
    )

    contributions = {
        peer: bank.local_group_aggregates(network.node(peer).items).astype(np.float64)
        for peer in network.live_peers()
    }
    truth = np.sum(list(contributions.values()), axis=0)
    gossip = GossipAggregation(
        network,
        contributions,
        length=filter_size,
        config=GossipConfig(rounds=rounds),
    )
    before = network.accounting.bytes_by_category()
    gossip.run()
    after = network.accounting.bytes_by_category()
    gossip_bytes = after.get(CostCategory.GOSSIP, 0) - before.get(
        CostCategory.GOSSIP, 0
    )
    estimate = gossip.estimate_at(trial.hierarchy.root)
    nonzero = truth > 0
    rel_error = (
        float(np.max(np.abs(estimate[nonzero] - truth[nonzero]) / truth[nonzero]))
        if nonzero.any()
        else 0.0
    )
    population = network.n_peers
    return [
        AblationRow(
            "hierarchical",
            {"B/peer": hier_bytes / population, "max rel err": 0.0, "rounds": 1.0},
        ),
        AblationRow(
            f"push-sum({rounds}r)",
            {
                "B/peer": gossip_bytes / population,
                "max rel err": rel_error,
                "rounds": float(rounds),
            },
        ),
    ]


def ablation_parameter_estimation(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """Tune (g, f) from sampling estimates vs from the oracle."""
    trial = build_trial(scale or ExperimentScale.paper(), seed=seed)
    ratio = trial.defaults.threshold_ratio
    workload = trial.workload
    threshold = workload.threshold(ratio)

    oracle_estimates = ParameterEstimates(
        n_items=workload.n_items,
        heavy_count=workload.heavy_count(threshold),
        mean_value=workload.mean_value(),
        mean_light_value=workload.mean_light_value(threshold),
        source="oracle",
    )
    estimator = ParameterEstimator(trial.engine, SamplingConfig(n_branches=4))
    before = trial.network.accounting.bytes_by_category()
    sampled_estimates = estimator.run(ratio)
    after = trial.network.accounting.bytes_by_category()
    sampling_bytes = after.get(CostCategory.SAMPLING, 0) - before.get(
        CostCategory.SAMPLING, 0
    )

    rows = []
    for estimates in (oracle_estimates, sampled_estimates):
        settings = derive_optimal_settings(
            estimates, ratio, trial.network.size_model
        )
        config = NetFilterConfig(
            filter_size=settings.filter_size,
            num_filters=settings.num_filters,
            threshold_ratio=ratio,
        )
        result = NetFilter(config).run(trial.engine)
        rows.append(
            AblationRow(
                label=estimates.source.split("(")[0],
                metrics={
                    "g": float(settings.filter_size),
                    "f": float(settings.num_filters),
                    "total B/peer": result.breakdown.total,
                    "sampling B/peer": (
                        sampling_bytes / trial.network.n_peers
                        if estimates.source != "oracle"
                        else 0.0
                    ),
                },
            )
        )
    return rows


def ablation_topology(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """netFilter cost across overlay families at one workload."""
    scale = scale or ExperimentScale.small()
    defaults = PaperDefaults()
    rows = []
    for label in ("random", "regular", "small-world", "scale-free", "tree"):
        sim = Simulation(seed=seed)
        rng = sim.rng.stream("topology")
        n_peers = scale.n_peers
        if label == "random":
            topology = Topology.random_connected(n_peers, 4.0, rng)
        elif label == "regular":
            topology = Topology.random_regular(n_peers, 4, rng)
        elif label == "small-world":
            topology = Topology.small_world(n_peers, 4, 0.2, rng)
        elif label == "scale-free":
            topology = Topology.scale_free(n_peers, 2, rng)
        else:
            topology = Topology.balanced_tree(n_peers, defaults.branching)
        network = Network(sim, topology, size_model=defaults.size_model)
        workload = Workload.zipf(
            n_items=scale.n_items,
            n_peers=n_peers,
            skew=defaults.skew,
            rng=sim.rng.stream("workload"),
        )
        network.assign_items(workload.item_sets)
        hierarchy = Hierarchy.build(network, root=0)
        engine = AggregationEngine(hierarchy)
        config = NetFilterConfig(
            filter_size=100, num_filters=3,
            threshold_ratio=defaults.threshold_ratio,
        )
        result = NetFilter(config).run(engine)
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "height": float(hierarchy.height()),
                    "total B/peer": result.breakdown.total,
                    "frequent": float(len(result.frequent)),
                },
            )
        )
    return rows


def ablation_exact_vs_approximate(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """netFilter's exactness vs the ε-tolerant related-work approach.

    The paper (footnote 5) declines a quantitative comparison because the
    guarantees differ; here both run on the same workload so the trade is
    visible: the sketch protocol's cost scales with 1/ε and its report
    carries false positives and value error, while netFilter is exact.
    """
    from repro.core.approximate import ApproximateConfig, ApproximateIFIProtocol
    from repro.core.oracle import oracle_frequent_items

    trial = build_trial(scale or ExperimentScale.medium(), seed=seed)
    ratio = trial.defaults.threshold_ratio
    rows = []

    exact = NetFilter(
        NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=ratio)
    ).run(trial.engine)
    truth = oracle_frequent_items(trial.network, exact.threshold)
    rows.append(
        AblationRow(
            "netFilter (exact)",
            {
                "B/peer": exact.breakdown.total,
                "reported": float(len(exact.frequent)),
                "false pos": float(len(exact.frequent) - len(truth)),
                "value err": 0.0,
            },
        )
    )
    for epsilon in (0.01, 0.002, 0.0005):
        approx = ApproximateIFIProtocol(
            ApproximateConfig(epsilon=epsilon, threshold_ratio=ratio)
        ).run(trial.engine)
        errors = [
            estimate - truth.value_of(item_id)
            for item_id, estimate in approx.reported
            if item_id in truth
        ]
        rows.append(
            AblationRow(
                f"sketch eps={epsilon}",
                {
                    "B/peer": approx.total_cost,
                    "reported": float(len(approx.reported)),
                    "false pos": float(len(approx.reported) - len(truth)),
                    "value err": float(np.mean(errors)) if errors else 0.0,
                },
            )
        )
    return rows


def ablation_gossip_netfilter(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """Hierarchical netFilter vs the fully-gossip variant (Section VI's
    future work, implemented in :mod:`repro.core.gossip_netfilter`).

    Reports bytes, simulated latency, and answer quality of each.
    """
    from repro.core.gossip_netfilter import GossipNetFilter, GossipNetFilterConfig
    from repro.core.oracle import oracle_frequent_items

    scale = scale or ExperimentScale.small()
    trial = build_trial(scale, seed=seed)
    ratio = trial.defaults.threshold_ratio
    hier_result = NetFilter(
        NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=ratio)
    ).run(trial.engine)

    # A fresh, identical network (no hierarchy, no control traffic).
    gossip_trial_sim = Simulation(seed=seed)
    topology = Topology.random_connected(
        scale.n_peers, 4.0, gossip_trial_sim.rng.stream("topology")
    )
    network = Network(gossip_trial_sim, topology)
    workload = Workload.zipf(
        scale.n_items, scale.n_peers, 1.0, gossip_trial_sim.rng.stream("workload")
    )
    network.assign_items(workload.item_sets)
    started = gossip_trial_sim.now
    gossip_result = GossipNetFilter(
        GossipNetFilterConfig(
            filter_size=100, num_filters=3, threshold_ratio=ratio, rounds=60
        )
    ).run(network, requester=0)
    gossip_elapsed = gossip_trial_sim.now - started
    truth = oracle_frequent_items(network, gossip_result.threshold)
    missed = sum(1 for item in truth.ids if item not in gossip_result.reported)
    return [
        AblationRow(
            "hierarchical",
            {
                "B/peer": hier_result.breakdown.total,
                "latency": hier_result.elapsed_time,
                "missed": 0.0,
                "reported": float(len(hier_result.frequent)),
            },
        ),
        AblationRow(
            "gossip(60r)",
            {
                "B/peer": gossip_result.total_cost,
                "latency": gossip_elapsed,
                "missed": float(missed),
                "reported": float(len(gossip_result.reported)),
            },
        ),
    ]


def ablation_root_selection(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """Random vs central root (Section III-A.1's 'future exploration').

    A central root minimizes the hierarchy height, shortening every
    convergecast path; per-peer byte cost barely moves (it is dominated
    by payload sizes, not path lengths) — which is presumably why the
    paper was content with a random root.
    """
    from repro.hierarchy.root_selection import central_root, random_root

    scale = scale or ExperimentScale.small()
    defaults = PaperDefaults()
    rows = []
    for label in ("random", "central"):
        sim = Simulation(seed=seed)
        topology = Topology.random_connected(
            scale.n_peers, float(defaults.branching + 1), sim.rng.stream("topology")
        )
        network = Network(sim, topology, size_model=defaults.size_model)
        workload = Workload.zipf(
            scale.n_items, scale.n_peers, defaults.skew, sim.rng.stream("workload")
        )
        network.assign_items(workload.item_sets)
        if label == "random":
            root = random_root(network, sim.rng.stream("root"))
        else:
            root = central_root(network)
        hierarchy = Hierarchy.build(network, root=root)
        engine = AggregationEngine(hierarchy)
        result = NetFilter(
            NetFilterConfig(
                filter_size=100, num_filters=3,
                threshold_ratio=defaults.threshold_ratio,
            )
        ).run(engine)
        rows.append(
            AblationRow(
                label,
                {
                    "root": float(root),
                    "height": float(hierarchy.height()),
                    "total B/peer": result.breakdown.total,
                },
            )
        )
    return rows


def ablation_continuous_monitoring(
    scale: ExperimentScale | None = None, seed: int = 0, epochs: int = 5
) -> list[AblationRow]:
    """Delta filtering vs dense phase 1 under a streaming workload.

    A quiet stream (1% of the data arriving per epoch) is monitored for
    several epochs with and without the sparse-delta optimization of
    :mod:`repro.core.continuous`; reported is the mean per-epoch filtering
    cost after warm-up (epoch 0 always pays the full change set).
    """
    from repro.core.continuous import ContinuousNetFilter
    from repro.workload.streams import ZipfStream

    scale = scale or ExperimentScale.small()
    rows = []
    for delta in (False, True):
        trial = build_trial(scale, seed=seed)
        config = NetFilterConfig(
            filter_size=100, num_filters=3,
            threshold_ratio=trial.defaults.threshold_ratio,
        )
        monitor = ContinuousNetFilter(config, trial.engine, delta_filtering=delta)
        stream = ZipfStream(
            n_items=scale.n_items,
            n_peers=scale.n_peers,
            skew=trial.defaults.skew,
            instances_per_epoch=max(scale.n_items // 10, 1),
            rng=trial.sim.rng.stream("stream"),
        )
        filtering_costs = []
        for _ in range(epochs):
            stream.apply_to(trial.network)
            report = monitor.run_epoch()
            filtering_costs.append(report.result.breakdown.filtering)
        steady = filtering_costs[1:] or filtering_costs
        rows.append(
            AblationRow(
                "delta" if delta else "dense",
                {
                    "epoch0 filt B/peer": filtering_costs[0],
                    "steady filt B/peer": float(np.mean(steady)),
                    "total B/peer": float(
                        np.mean(
                            [r.result.breakdown.total for r in monitor.reports[1:]]
                            or [monitor.reports[0].result.breakdown.total]
                        )
                    ),
                },
            )
        )
    return rows


def ablation_header_overhead(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[AblationRow]:
    """Sensitivity to per-message header overhead.

    The paper prices payloads only (headers = 0).  Real packets carry
    headers, and protocols differ enormously in message *count*: netFilter
    and naive send one message per tree edge per phase, while gossip sends
    thousands of small pushes.  Re-pricing the same runs with a 40-byte
    header (IPv4+UDP-ish) shows which designs are chatty.
    """
    from repro.core.naive import NaiveProtocol
    from repro.net.wire import SizeModel

    scale = scale or ExperimentScale.small()
    rows = []
    for header in (0, 40):
        sim = Simulation(seed=seed)
        topology = Topology.random_connected(
            scale.n_peers, 4.0, sim.rng.stream("topology")
        )
        network = Network(sim, topology, size_model=SizeModel(header_bytes=header))
        workload = Workload.zipf(
            scale.n_items, scale.n_peers, 1.0, sim.rng.stream("workload")
        )
        network.assign_items(workload.item_sets)
        hierarchy = Hierarchy.build(network, root=0)
        engine = AggregationEngine(hierarchy)
        config = NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=0.01)
        net_result = NetFilter(config).run(engine)
        naive_result = NaiveProtocol(config).run(engine)
        rows.append(
            AblationRow(
                f"header={header}B",
                {
                    "netFilter B/peer": net_result.breakdown.total,
                    "naive B/peer": naive_result.breakdown.naive,
                    "ratio": net_result.breakdown.total
                    / max(naive_result.breakdown.naive, 1e-9),
                },
            )
        )
    return rows


def run_all_ablations(
    scale: ExperimentScale | None = None, seed: int = 0, jobs: int = 1
) -> dict[str, list[AblationRow]]:
    """All ablation studies; keys are the study names.

    Each study is independent (fresh simulation, fresh RNG registry), so
    ``jobs > 1`` runs them study-per-worker; key order never changes.
    """
    small = scale or ExperimentScale.small()
    paper_or_scaled = scale or ExperimentScale.medium()
    studies: tuple[tuple[str, Any, ExperimentScale], ...] = (
        ("multi-filter split (fixed f*g budget)", ablation_multi_filter, paper_or_scaled),
        ("hierarchical vs gossip aggregation", ablation_gossip, small),
        (
            "sampling-tuned vs oracle-tuned settings",
            ablation_parameter_estimation,
            paper_or_scaled,
        ),
        ("overlay topology sensitivity", ablation_topology, small),
        (
            "exact netFilter vs eps-tolerant sketch",
            ablation_exact_vs_approximate,
            paper_or_scaled,
        ),
        ("root selection (random vs central)", ablation_root_selection, small),
        ("hierarchical vs gossip netFilter (future work)", ablation_gossip_netfilter, small),
        ("continuous monitoring: delta vs dense filtering", ablation_continuous_monitoring, small),
        ("per-message header overhead", ablation_header_overhead, small),
    )
    results = run_trials(
        [
            TrialSpec(fn=fn, kwargs=dict(scale=study_scale, seed=seed), label=name)
            for name, fn, study_scale in studies
        ],
        jobs=jobs,
    )
    return {name: rows for (name, _, _), rows in zip(studies, results)}
