"""Figure 6 — effect of the number of filters ``f``.

The paper sweeps ``f`` from 1 to 10 with ``g = 100`` and reports the same
two panels as Figure 5.

Shape targets (Section V-B): candidates per peer decrease monotonically
with ``f`` (each extra filter can only prune); the heavy-group count grows
roughly linearly (each filter contributes its own heavy groups); the total
cost is minimized at ``f = 3`` (Formula 6) — filtering cost grows linearly
while the aggregation saving saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter
from repro.core.optimizer import optimal_filter_count
from repro.experiments.harness import ExperimentScale, build_trial
from repro.experiments.parallel import TrialSpec, run_trials

DEFAULT_F_VALUES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
DEFAULT_FILTER_SIZE = 100


@dataclass(frozen=True)
class Fig6Row:
    """One point of Figure 6 (both panels)."""

    num_filters: int
    avg_candidates_per_peer: float
    heavy_groups_total: int
    candidate_count: int
    false_positives: int
    filtering_cost: float
    dissemination_cost: float
    aggregation_cost: float

    @property
    def total_cost(self) -> float:
        """Panel (b) total cost."""
        return self.filtering_cost + self.dissemination_cost + self.aggregation_cost

    def as_dict(self) -> dict[str, float]:
        return {
            "f": self.num_filters,
            "candidates/peer": self.avg_candidates_per_peer,
            "heavy groups": self.heavy_groups_total,
            "candidates": self.candidate_count,
            "false pos": self.false_positives,
            "filtering": self.filtering_cost,
            "dissemination": self.dissemination_cost,
            "aggregation": self.aggregation_cost,
            "total": self.total_cost,
        }


def _figure6_cell(
    scale: ExperimentScale, seed: int, num_filters: int, filter_size: int
) -> Fig6Row:
    """One Figure 6 cell from a fresh trial (the parallel worker)."""
    trial = build_trial(scale, seed=seed)
    config = NetFilterConfig(
        filter_size=filter_size,
        num_filters=num_filters,
        threshold_ratio=trial.defaults.threshold_ratio,
    )
    result = NetFilter(config).run(trial.engine)
    return Fig6Row(
        num_filters=num_filters,
        avg_candidates_per_peer=result.avg_candidates_per_peer,
        heavy_groups_total=result.heavy_groups.total_count,
        candidate_count=result.candidate_count,
        false_positives=result.false_positive_count,
        filtering_cost=result.breakdown.filtering,
        dissemination_cost=result.breakdown.dissemination,
        aggregation_cost=result.breakdown.aggregation,
    )


def run_figure6(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    f_values: tuple[int, ...] = DEFAULT_F_VALUES,
    filter_size: int = DEFAULT_FILTER_SIZE,
    jobs: int = 1,
) -> list[Fig6Row]:
    """Reproduce Figure 6: sweep ``f`` at fixed ``g`` over one workload.

    ``jobs > 1`` fans the cells out to a process pool; see
    :mod:`repro.experiments.parallel`.
    """
    scale = scale or ExperimentScale.paper()
    if jobs > 1:
        return run_trials(
            [
                TrialSpec(
                    fn=_figure6_cell,
                    kwargs=dict(
                        scale=scale,
                        seed=seed,
                        num_filters=f,
                        filter_size=filter_size,
                    ),
                    label=f"fig6 f={f}",
                )
                for f in f_values
            ],
            jobs=jobs,
        )
    trial = build_trial(scale, seed=seed)
    ratio = trial.defaults.threshold_ratio
    rows = []
    for num_filters in f_values:
        config = NetFilterConfig(
            filter_size=filter_size,
            num_filters=num_filters,
            threshold_ratio=ratio,
        )
        result = NetFilter(config).run(trial.engine)
        rows.append(
            Fig6Row(
                num_filters=num_filters,
                avg_candidates_per_peer=result.avg_candidates_per_peer,
                heavy_groups_total=result.heavy_groups.total_count,
                candidate_count=result.candidate_count,
                false_positives=result.false_positive_count,
                filtering_cost=result.breakdown.filtering,
                dissemination_cost=result.breakdown.dissemination,
                aggregation_cost=result.breakdown.aggregation,
            )
        )
    return rows


def predicted_optimal_f(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    filter_size: int = DEFAULT_FILTER_SIZE,
) -> int:
    """Formula 6's prediction for the swept workload (the paper's
    ``f_opt = 3``)."""
    trial = build_trial(scale or ExperimentScale.paper(), seed=seed)
    ratio = trial.defaults.threshold_ratio
    threshold = trial.workload.threshold(ratio)
    return optimal_filter_count(
        filter_size,
        heavy_count=trial.workload.heavy_count(threshold),
        n_items=trial.workload.n_items,
        size_model=trial.network.size_model,
    )
