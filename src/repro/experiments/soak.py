"""Churn soak harness: the monitoring service under composed faults.

The ISSUE-8 serving story, end to end: a :class:`MonitorService` runs a
time-faded :class:`~repro.core.continuous.ContinuousNetFilter` for
hundreds of scheduled epochs while the fault DSL pours trouble on it —
Poisson churn (crash + exponential downtime), periodic
:class:`~repro.faults.scenario.BurstLoss` windows, and
:class:`~repro.faults.scenario.SuspendPeer` gray failures on interior
peers — and the item distribution drifts and spikes with flash crowds.

The harness asserts the service's contract *every epoch*:

* **never blocks** — each scheduled epoch yields an answer, fresh or
  degraded, stamped with the wall epoch;
* **honest staleness** — a degraded answer's ``staleness_epochs`` never
  exceeds the configured ceiling;
* **monotone commits** — committed epoch numbers strictly increase;
* **committed exactness** — every committed frequent set matches an
  independent participant-restricted ledger mirror (the paper's
  no-false-negative guarantee carried through decay, deltas and resync)
  to float64 round-off;
* **replayability** — the answer stream is digested so two same-seed
  runs can be compared byte for byte.

Recall against the *time-faded oracle* (the ideal answer over every
arrival that actually landed on a live peer, faded by arrival epoch) is
measured per epoch and reported, not asserted: degraded epochs serve
stale results on purpose, and the recall series is exactly the honest
picture of what that costs.  ``BENCH_continuous.json`` is generated from
these rows by ``benchmarks/bench_continuous.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.aggregation.hierarchical import AggregationEngine
from repro.core.config import NetFilterConfig
from repro.core.continuous import ContinuousNetFilter, EpochReport
from repro.core.decay import DecayConfig
from repro.errors import ConfigurationError, ExperimentError
from repro.faults import BurstLoss, FaultInjector, FaultScenario, SuspendPeer
from repro.faults.scenario import FaultAction
from repro.hierarchy.builder import Hierarchy
from repro.hierarchy.maintenance import enable_maintenance
from repro.items.itemset import FadedItemSet, LocalItemSet
from repro.net.churn import ChurnConfig, ChurnProcess
from repro.net.heartbeat import HeartbeatConfig
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.net.transport import ReliabilityConfig, TransportConfig
from repro.service import MonitorService, ServiceConfig
from repro.sim.engine import Simulation
from repro.workload.streams import ZipfStream
from repro.workload.workload import Workload


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run needs; two presets cover CI and the bench.

    The commit gate stays at full coverage (``min_coverage=1.0``) on
    purpose: a commit then proves every live peer's delta reached the
    root, which is what makes the exactness mirror — and the paper's
    no-false-negative claim — checkable per commit.  Availability under
    partial coverage is the degraded-answer path, not a weaker commit.
    """

    seed: int = 0
    epochs: int = 50
    n_peers: int = 24
    n_items: int = 2000
    skew: float = 1.0
    mean_degree: float = 4.0
    instances_per_epoch: int = 3000
    drift_per_epoch: int = 2
    flash_every: int = 10
    flash_duration: int = 2
    flash_share: float = 0.3
    decay_factor: float = 0.9
    filter_size: int = 400
    num_filters: int = 2
    threshold_ratio: float = 0.005
    epoch_interval: float = 120.0
    deadline: float = 110.0
    max_attempts: int = 3
    retry_backoff: float = 10.0
    max_staleness: int = 12
    rebaseline_after: int = 3
    churn_rate: float = 0.003
    mean_downtime: float = 150.0
    burst_every: int = 7
    burst_duration: float = 40.0
    burst_probability: float = 0.25
    suspend_every: int = 9
    suspend_duration: float = 25.0
    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 16.0
    child_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.churn_rate < 0:
            raise ConfigurationError("churn_rate must be non-negative")
        if self.burst_every < 0 or self.suspend_every < 0:
            raise ConfigurationError("fault cadences must be non-negative")

    @classmethod
    def smoke(cls, seed: int = 0) -> "SoakConfig":
        """The CI cell: ~50 epochs, loss x churn x flash crowds."""
        return cls(seed=seed)

    @classmethod
    def full(cls, seed: int = 0) -> "SoakConfig":
        """The acceptance run: 200 epochs over a 2000-item universe."""
        return cls(seed=seed, epochs=200, n_peers=32, n_items=2000, churn_rate=0.002)


@dataclass
class SoakResult:
    """One soak run's evidence: per-epoch rows, summary, replay digest."""

    config: SoakConfig
    rows: list[dict[str, Any]]
    summary: dict[str, Any]
    digest: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": {
                "seed": self.config.seed,
                "epochs": self.config.epochs,
                "n_peers": self.config.n_peers,
                "n_items": self.config.n_items,
                "decay_factor": self.config.decay_factor,
                "threshold_ratio": self.config.threshold_ratio,
                "max_staleness": self.config.max_staleness,
                "churn_rate": self.config.churn_rate,
                "burst_probability": self.config.burst_probability,
            },
            "digest": self.digest,
            "summary": self.summary,
            "series": self.rows,
        }


def _fault_scenario(config: SoakConfig, base: float, interiors: list[int]) -> FaultScenario:
    """Timed BurstLoss windows and SuspendPeer gray failures, phased
    against the epoch schedule (each window opens shortly after an epoch
    starts, so it hits live convergecasts, not idle time)."""
    actions: list[FaultAction] = []
    if config.burst_every > 0:
        for k in range(config.burst_every, config.epochs, config.burst_every):
            actions.append(
                BurstLoss(
                    start=base + k * config.epoch_interval + 2.0,
                    duration=config.burst_duration,
                    probability=config.burst_probability,
                )
            )
    if config.suspend_every > 0 and interiors:
        for turn, k in enumerate(
            range(config.suspend_every, config.epochs, config.suspend_every)
        ):
            actions.append(
                SuspendPeer(
                    peer=interiors[turn % len(interiors)],
                    start=base + k * config.epoch_interval + 1.0,
                    duration=config.suspend_duration,
                )
            )
    return FaultScenario(name="soak", actions=tuple(actions))


def run_soak(config: SoakConfig, trace_path: str | None = None) -> SoakResult:
    """Run one soak; raises :class:`ExperimentError` on any invariant
    breach.  Deterministic: same config, same result (and same digest).

    ``trace_path`` streams the run's JSONL telemetry trace to a file —
    the CI soak cell points it at the fault-trace artifact directory so a
    failing soak leaves its full event history behind.
    """
    sim = Simulation(seed=config.seed)
    if trace_path is None:
        return _run_soak(sim, config)
    sim.telemetry.attach_jsonl(trace_path)
    try:
        return _run_soak(sim, config)
    finally:
        sim.telemetry.close()


def _run_soak(sim: Simulation, config: SoakConfig) -> SoakResult:
    topology = Topology.random_connected(
        config.n_peers, config.mean_degree, sim.rng.stream("topology")
    )
    network = Network(
        sim,
        topology,
        transport_config=TransportConfig(latency=1.0, latency_jitter=0.3),
        reliability=ReliabilityConfig(),
    )
    workload = Workload.zipf(
        n_items=config.n_items,
        n_peers=config.n_peers,
        skew=config.skew,
        rng=sim.rng.stream("workload"),
    )
    network.assign_items(workload.item_sets)
    hierarchy = Hierarchy.build(network, root=0)
    enable_maintenance(
        hierarchy,
        HeartbeatConfig(
            interval=config.heartbeat_interval,
            timeout=config.heartbeat_timeout,
            jitter=0.5,
        ),
    )
    engine = AggregationEngine(
        hierarchy, child_timeout=config.child_timeout, hardened=True
    )
    decay = DecayConfig(mode="exponential", factor=config.decay_factor)
    monitor = ContinuousNetFilter(
        NetFilterConfig(
            filter_size=config.filter_size,
            num_filters=config.num_filters,
            threshold_ratio=config.threshold_ratio,
        ),
        engine,
        decay=decay,
    )
    service = MonitorService(
        monitor,
        ServiceConfig(
            epoch_interval=config.epoch_interval,
            deadline=config.deadline,
            max_attempts=config.max_attempts,
            retry_backoff=config.retry_backoff,
            min_coverage=1.0,
            max_staleness=config.max_staleness,
            rebaseline_after=config.rebaseline_after,
        ),
    )
    stream = ZipfStream(
        config.n_items,
        config.n_peers,
        config.skew,
        config.instances_per_epoch,
        sim.rng.stream("soak.stream"),
        drift_per_epoch=config.drift_per_epoch,
        flash_every=config.flash_every,
        flash_duration=config.flash_duration,
        flash_share=config.flash_share,
    )

    # Faults: Poisson churn (root protected — failover soaks are the
    # smoke matrix's job) plus the timed loss/suspend script.
    if config.churn_rate > 0:
        ChurnProcess(
            sim,
            network,
            ChurnConfig(
                failure_rate=config.churn_rate,
                mean_downtime=config.mean_downtime,
                protected_peers=frozenset({0}),
            ),
        ).start()
    interiors = [
        peer
        for peer in sorted(hierarchy.services)
        if peer != 0 and hierarchy.children_of(peer)
    ]
    FaultInjector(
        network, _fault_scenario(config, sim.now, interiors)
    ).install()

    # ------------------------------------------------------------------
    # The oracle.  ``pending[p]``: arrivals peer p has not yet shipped in
    # a committed epoch (seeded with its build-time items).  ``mirror``:
    # the committed per-peer faded ledger, maintained by replaying the
    # root's fold recurrence independently.  ``truth``: the global faded
    # item set over every applied arrival, dated by *arrival* epoch — the
    # ideal answer the recall series is measured against.
    # ------------------------------------------------------------------
    pending: dict[int, LocalItemSet] = {
        peer: network.node(peer).items for peer in sorted(network.nodes)
    }
    mirror: dict[int, tuple[int, FadedItemSet]] = {}
    truth = FadedItemSet.empty()
    truth_frequent: dict[int, set[int]] = {}
    commit_log: list[tuple[int, int]] = []

    def before_epoch(epoch: int) -> None:
        nonlocal truth
        increments = stream.next_epoch()
        fresh_sets: list[LocalItemSet] = []
        if epoch == 0:
            # Build-time items are part of epoch 0's base, dated epoch 0
            # exactly as the first dense convergecast ships them.
            fresh_sets.extend(pending[peer] for peer in sorted(pending))
        for peer in sorted(increments):
            node = network.nodes.get(peer)
            if node is None or not node.alive:
                continue  # arrivals aimed at a dead peer are simply lost
            increment = increments[peer]
            node.items = node.items.merge(increment)
            pending[peer] = pending[peer].merge(increment)
            fresh_sets.append(increment)
        fresh = LocalItemSet.merge_many(fresh_sets)
        truth = truth.scaled(config.decay_factor).merge(fresh)
        minimum = max(config.threshold_ratio * float(truth.total_value), 1.0)
        truth_frequent[epoch] = set(truth.filter_values(minimum).ids.tolist())

    def on_commit(report: EpochReport, participants: tuple[int, ...]) -> None:
        epoch = report.epoch
        if commit_log and epoch <= commit_log[-1][0]:
            raise ExperimentError(
                f"non-monotone commit: epoch {epoch} after {commit_log[-1][0]}"
            )
        commit_log.append((epoch, len(participants)))
        for peer in sorted(participants):
            fresh = pending.pop(peer, LocalItemSet.empty())
            entry = mirror.get(peer)
            if entry is None:
                value = FadedItemSet.from_integer(fresh)
            else:
                base, faded = entry
                value = faded.scaled(decay.multiplier(epoch - base)).merge(fresh)
            mirror[peer] = (epoch, value)
            pending[peer] = LocalItemSet.empty()
        expected = FadedItemSet.merge_faded(
            mirror[peer][1] for peer in sorted(participants)
        )
        got = report.result.frequent
        want = expected.restrict_to(np.asarray(got.ids))
        if not (
            np.array_equal(want.ids, got.ids)
            and np.allclose(want.values, got.values, rtol=1e-9, atol=0.0)
        ):
            raise ExperimentError(
                f"committed epoch {epoch} diverges from the ledger mirror: "
                f"served {got.to_dict()!r}, oracle {want.to_dict()!r}"
            )

    monitor.on_commit(on_commit)
    outcomes = service.run(config.epochs, before_epoch=before_epoch)

    # ------------------------------------------------------------------
    # Per-epoch invariants + evidence rows.
    # ------------------------------------------------------------------
    digest = hashlib.sha256()
    rows: list[dict[str, Any]] = []
    for outcome in outcomes:
        answer = outcome.answer
        if answer is None or answer.epoch != outcome.epoch:
            raise ExperimentError(f"epoch {outcome.epoch} produced no answer")
        if answer.staleness_epochs > config.max_staleness:
            raise ExperimentError(
                f"epoch {outcome.epoch}: staleness {answer.staleness_epochs} "
                f"exceeds the configured ceiling {config.max_staleness}"
            )
        served = set(answer.frequent.ids.tolist())
        ideal = truth_frequent[outcome.epoch]
        recall = 1.0 if not ideal else len(served & ideal) / len(ideal)
        pairs = ",".join(
            f"{item}:{value!r}"
            for item, value in zip(
                answer.frequent.ids.tolist(), answer.frequent.values.tolist()
            )
        )
        digest.update(
            (
                f"{answer.epoch}|{answer.committed_epoch}|{int(answer.degraded)}|"
                f"{answer.staleness_epochs}|{answer.threshold!r}|"
                f"{answer.grand_total!r}|{pairs}\n"
            ).encode()
        )
        report = outcome.report
        rows.append(
            {
                "epoch": outcome.epoch,
                "committed": outcome.committed,
                "attempts": outcome.attempts,
                "degraded": answer.degraded,
                "staleness": answer.staleness_epochs,
                "reason": outcome.reason,
                "recall": round(recall, 6),
                "n_frequent": len(answer.frequent),
                "threshold": answer.threshold,
                "mode": report.mode if report is not None else "",
                "resyncs": report.resyncs if report is not None else 0,
                "changed_groups": report.changed_groups if report is not None else 0,
                "filtering_bytes": (
                    report.result.breakdown.filtering if report is not None else 0.0
                ),
                "filtering_savings": (
                    round(report.filtering_savings, 6) if report is not None else 0.0
                ),
                "faded_total": report.faded_total if report is not None else 0.0,
            }
        )

    committed_rows = [row for row in rows if row["committed"]]
    staleness_histogram: dict[str, int] = {}
    for row in rows:
        key = str(row["staleness"])
        staleness_histogram[key] = staleness_histogram.get(key, 0) + 1
    counters = sim.trace.counters
    summary: dict[str, Any] = {
        "epochs": len(rows),
        "committed_epochs": len(committed_rows),
        "degraded_epochs": len(rows) - len(committed_rows),
        "commit_rate": round(len(committed_rows) / max(len(rows), 1), 4),
        "max_staleness_seen": max(row["staleness"] for row in rows),
        "staleness_histogram": staleness_histogram,
        "mean_recall": round(sum(row["recall"] for row in rows) / max(len(rows), 1), 4),
        "mean_recall_committed": round(
            sum(row["recall"] for row in committed_rows) / max(len(committed_rows), 1),
            4,
        ),
        "mean_filtering_bytes_per_epoch": round(
            sum(row["filtering_bytes"] for row in committed_rows)
            / max(len(committed_rows), 1),
            2,
        ),
        "dense_epochs": sum(1 for row in committed_rows if row["mode"] == "dense"),
        "resyncs": int(counters.get("monitor.resync", 0)),
        "abandoned_attempts": int(counters.get("service.abandon", 0)),
        "churn_failures": int(counters.get("churn.failure", 0)),
        "churn_revivals": int(counters.get("churn.revival", 0)),
        "faults_injected": int(counters.get("fault.injected", 0)),
    }
    if not commit_log:
        raise ExperimentError("soak never committed a single epoch")
    return SoakResult(
        config=config, rows=rows, summary=summary, digest=digest.hexdigest()
    )
