"""The experiment harness: one module per figure of the paper.

Every figure of the evaluation (Section V) has a ``run_figureX`` function
that sweeps the paper's parameter, executes measured protocol runs, and
returns structured rows; :mod:`repro.experiments.report` renders them as
the tables recorded in ``EXPERIMENTS.md``.  ``python -m repro.experiments
<fig5|fig6|fig7|fig8|ablations|all>`` runs them from the command line.

Scales
------
The paper's defaults are ``N = 1000`` peers and ``n = 10^5`` items
(``n = 10^6`` for Figures 7(b) and 8).  Because a laptop run of the full
sweep takes minutes, every experiment accepts an
:class:`~repro.experiments.harness.ExperimentScale`; the ``small`` preset
keeps the workload *shape* (``o = 10·n/N`` instances per peer, same ρ and
α defaults) at a fraction of the size and is what the benchmark suite
uses.  EXPERIMENTS.md records paper-scale runs.
"""

from repro.experiments.harness import (
    ExperimentScale,
    PaperDefaults,
    TrialSetup,
    build_trial,
)
from repro.experiments.fig5 import Fig5Row, run_figure5
from repro.experiments.fig6 import Fig6Row, run_figure6
from repro.experiments.fig7 import Fig7Row, run_figure7
from repro.experiments.fig8 import Fig8Row, run_figure8

__all__ = [
    "ExperimentScale",
    "Fig5Row",
    "Fig6Row",
    "Fig7Row",
    "Fig8Row",
    "PaperDefaults",
    "TrialSetup",
    "build_trial",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
]
