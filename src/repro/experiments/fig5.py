"""Figure 5 — effect of the filter size ``g``.

The paper sweeps ``g`` from 25 to 500 with ``f = 3`` under the Table III
defaults and reports (a) the average number of candidates propagated per
peer and the number of heavy item groups, and (b) the communication cost
split into its three components.

Shape targets (Section V-A): below ``g ≈ 50`` nothing is pruned and the
candidates per peer sit near the local-set size ``o``; the heavy-group
count first rises then falls; the total cost dips to its minimum near
``g = 100`` (Formula 3 predicts ``g_opt = c + v̄_light/(ρ·v̄) ≈ c + 80``)
and then grows linearly with the filtering cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter
from repro.core.optimizer import optimal_filter_size
from repro.experiments.harness import ExperimentScale, build_trial
from repro.experiments.parallel import TrialSpec, run_trials

#: The paper's sweep (x-axis of Figure 5).
DEFAULT_G_VALUES: tuple[int, ...] = (25, 50, 75, 100, 150, 200, 250, 300, 400, 500)
DEFAULT_NUM_FILTERS = 3


@dataclass(frozen=True)
class Fig5Row:
    """One point of Figure 5 (both panels)."""

    filter_size: int
    avg_candidates_per_peer: float
    heavy_groups_total: int
    candidate_count: int
    false_positives: int
    filtering_cost: float
    dissemination_cost: float
    aggregation_cost: float

    @property
    def total_cost(self) -> float:
        """Panel (b) total: the sum of the three components."""
        return self.filtering_cost + self.dissemination_cost + self.aggregation_cost

    def as_dict(self) -> dict[str, float]:
        return {
            "g": self.filter_size,
            "candidates/peer": self.avg_candidates_per_peer,
            "heavy groups": self.heavy_groups_total,
            "candidates": self.candidate_count,
            "false pos": self.false_positives,
            "filtering": self.filtering_cost,
            "dissemination": self.dissemination_cost,
            "aggregation": self.aggregation_cost,
            "total": self.total_cost,
        }


def _figure5_cell(
    scale: ExperimentScale, seed: int, filter_size: int, num_filters: int
) -> Fig5Row:
    """One Figure 5 cell from a fresh trial (the parallel worker).

    netFilter runs consume no trial RNG, so a fresh trial per cell yields
    the same row as sweeping all cells over one shared trial — the
    equivalence ``tests/experiments/test_parallel.py`` pins.
    """
    trial = build_trial(scale, seed=seed)
    config = NetFilterConfig(
        filter_size=filter_size,
        num_filters=num_filters,
        threshold_ratio=trial.defaults.threshold_ratio,
    )
    result = NetFilter(config).run(trial.engine)
    return Fig5Row(
        filter_size=filter_size,
        avg_candidates_per_peer=result.avg_candidates_per_peer,
        heavy_groups_total=result.heavy_groups.total_count,
        candidate_count=result.candidate_count,
        false_positives=result.false_positive_count,
        filtering_cost=result.breakdown.filtering,
        dissemination_cost=result.breakdown.dissemination,
        aggregation_cost=result.breakdown.aggregation,
    )


def run_figure5(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    g_values: tuple[int, ...] = DEFAULT_G_VALUES,
    num_filters: int = DEFAULT_NUM_FILTERS,
    jobs: int = 1,
) -> list[Fig5Row]:
    """Reproduce Figure 5: sweep ``g`` at fixed ``f`` over one workload.

    ``jobs > 1`` runs the cells on a process pool (results in sweep
    order); ``jobs = 1`` keeps the historical shared-trial sequential
    path.
    """
    scale = scale or ExperimentScale.paper()
    if jobs > 1:
        return run_trials(
            [
                TrialSpec(
                    fn=_figure5_cell,
                    kwargs=dict(
                        scale=scale,
                        seed=seed,
                        filter_size=g,
                        num_filters=num_filters,
                    ),
                    label=f"fig5 g={g}",
                )
                for g in g_values
            ],
            jobs=jobs,
        )
    trial = build_trial(scale, seed=seed)
    ratio = trial.defaults.threshold_ratio
    rows = []
    for filter_size in g_values:
        config = NetFilterConfig(
            filter_size=filter_size,
            num_filters=num_filters,
            threshold_ratio=ratio,
        )
        result = NetFilter(config).run(trial.engine)
        rows.append(
            Fig5Row(
                filter_size=filter_size,
                avg_candidates_per_peer=result.avg_candidates_per_peer,
                heavy_groups_total=result.heavy_groups.total_count,
                candidate_count=result.candidate_count,
                false_positives=result.false_positive_count,
                filtering_cost=result.breakdown.filtering,
                dissemination_cost=result.breakdown.dissemination,
                aggregation_cost=result.breakdown.aggregation,
            )
        )
    return rows


def predicted_optimal_g(
    scale: ExperimentScale | None = None, seed: int = 0
) -> int:
    """Formula 3's prediction for the swept workload (the paper's
    ``g_opt = c + 80 ≈ 100``)."""
    trial = build_trial(scale or ExperimentScale.paper(), seed=seed)
    ratio = trial.defaults.threshold_ratio
    threshold = trial.workload.threshold(ratio)
    return optimal_filter_size(
        ratio,
        mean_value=trial.workload.mean_value(),
        mean_light_value=trial.workload.mean_light_value(threshold),
    )
