"""The scaling campaign: one protocol, two execution tiers.

Sweeps the population N at a fixed item universe and runs netFilter
under the selected engine — ``scalar`` (the event-driven stack, one
message at a time) or ``vec`` (the columnar tier, optionally space-
sharded over worker processes via :func:`repro.vec.shard.run_sharded`).
Each cell reports the paper's per-peer byte breakdown plus the evidence
that makes a vectorized number trustworthy: the sharded replay digest
and (on request) a sampled-subpopulation audit against the scalar
engine.

Both engines ride :mod:`repro.experiments.parallel`, so results come
back in spec order and are identical for ``jobs=1`` and ``jobs=K`` —
pinned by ``tests/experiments/test_scaling.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter
from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentScale, build_trial
from repro.vec.build import build_table
from repro.vec.escape import SubpopulationAudit, verify_sampled_subpopulation
from repro.vec.shard import ShardPlan, run_sharded

#: The campaign's protocol parameters (the paper's g=100, f=3 figure
#: configuration at rho=1%).
SCALING_CONFIG = NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=0.01)

#: Population multipliers applied to the scale's base N for the sweep.
SWEEP_MULTIPLIERS = (1, 4, 16)


@dataclass(frozen=True)
class ScalingRow:
    """One (N, engine) cell of the scaling campaign."""

    n_peers: int
    n_items: int
    engine: str
    shards: int
    grand_total: int
    threshold: int
    n_frequent: int
    n_candidates: int
    total_cost: float
    filtering: float
    dissemination: float
    aggregation: float
    control: float
    coverage: float
    complete: bool
    digest: str | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "N": self.n_peers,
            "n": self.n_items,
            "engine": self.engine,
            "shards": self.shards,
            "total B/peer": round(self.total_cost, 2),
            "filtering": round(self.filtering, 2),
            "dissemination": round(self.dissemination, 2),
            "aggregation": round(self.aggregation, 2),
            "control": round(self.control, 2),
            "frequent": self.n_frequent,
            "candidates": self.n_candidates,
            "digest": (self.digest or "")[:12],
        }


def scaling_plan(
    n_peers: int,
    n_items: int,
    seed: int,
    shards: int,
    config: NetFilterConfig = SCALING_CONFIG,
) -> ShardPlan:
    """The canonical plan for one vectorized cell: the paper's ``10·n``
    instance budget, split equally over ``shards`` independent shards."""
    return ShardPlan(
        n_peers=n_peers,
        n_items=n_items,
        seed=seed,
        n_shards=shards,
        config=config,
    )


def run_scaling_cell(
    n_peers: int,
    n_items: int,
    seed: int,
    *,
    engine: str = "vec",
    shards: int = 1,
    jobs: int = 1,
    config: NetFilterConfig = SCALING_CONFIG,
) -> ScalingRow:
    """Run one (N, engine) cell and distill it into a :class:`ScalingRow`."""
    if engine == "vec":
        plan = scaling_plan(n_peers, n_items, seed, shards, config)
        sharded = run_sharded(plan, jobs=jobs)
        result, digest = sharded.result, sharded.digest
    elif engine == "scalar":
        if shards != 1:
            raise ConfigurationError("the scalar engine does not shard")
        scale = ExperimentScale("custom", n_peers, n_items)
        trial = build_trial(scale, seed=seed)
        result, digest = NetFilter(config).run(trial.engine), None
    else:
        raise ConfigurationError(f"unknown engine {engine!r} (use 'scalar' or 'vec')")
    return ScalingRow(
        n_peers=n_peers,
        n_items=n_items,
        engine=engine,
        shards=shards,
        grand_total=result.grand_total,
        threshold=result.threshold,
        n_frequent=len(result.frequent),
        n_candidates=len(result.candidates),
        total_cost=result.breakdown.total,
        filtering=result.breakdown.filtering,
        dissemination=result.breakdown.dissemination,
        aggregation=result.breakdown.aggregation,
        control=result.breakdown.control,
        coverage=result.coverage,
        complete=result.complete,
        digest=digest,
    )


def run_scaling(
    scale: ExperimentScale,
    seed: int,
    *,
    engine: str = "vec",
    shards: int = 1,
    jobs: int = 1,
    config: NetFilterConfig = SCALING_CONFIG,
) -> list[ScalingRow]:
    """The campaign: N swept over ``SWEEP_MULTIPLIERS``x the scale's base
    population, fixed item universe, one row per cell in sweep order."""
    return [
        run_scaling_cell(
            multiplier * scale.n_peers,
            scale.n_items,
            seed,
            engine=engine,
            shards=shards,
            jobs=jobs,
            config=config,
        )
        for multiplier in SWEEP_MULTIPLIERS
    ]


def audit_cell(
    n_peers: int,
    n_items: int,
    seed: int,
    *,
    shards: int = 1,
    max_peers: int = 2_000,
    config: NetFilterConfig = SCALING_CONFIG,
) -> SubpopulationAudit:
    """The exactness audit for one vectorized cell: rebuild shard 0
    deterministically and run the scalar engine against the vectorized
    tier on a sampled subtree (at most ``max_peers`` peers, so the audit
    is affordable at any N)."""
    plan = scaling_plan(n_peers, n_items, seed, shards, config)
    table = build_table(
        n_peers=plan.shard_peers(0),
        n_items=plan.n_items,
        seed=plan.seed,
        shard=0,
        n_shards=plan.n_shards,
        total_instances=plan.shard_instances(0),
    ).table
    return verify_sampled_subpopulation(table, config, max_peers=max_peers)
