"""Figure 7 — effect of data skewness ``α``: netFilter vs the naive
approach.

The paper sweeps the Zipf skew with netFilter at its tuned setting
(``g = 100``; ``f = 3`` for ``n = 10^5``, ``f = 5`` for ``n = 10^6``) and
plots netFilter's and the naive approach's total cost on a log axis.

Shape targets (Section V-C): netFilter costs a small fraction of naive
(2–5 % at ``n = 10^6``); both costs fall as skew grows — netFilter because
filtering gets sharper on skewed data, naive because peers hold (and
therefore forward) fewer distinct items.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NetFilterConfig
from repro.core.naive import NaiveProtocol
from repro.core.netfilter import NetFilter
from repro.experiments.harness import ExperimentScale, build_trial
from repro.experiments.parallel import TrialSpec, run_trials

#: The paper's x-axis ticks are not recoverable from the available text
#: (the "0..5" sequence near the axis label is the log-scale *y* axis).
#: The sweep below stays in the regime where the paper's observations hold;
#: EXTENDED_SKEWS adds the very-skewed tail where the item universe
#: collapses to a handful of items and naive becomes trivially cheap.
DEFAULT_SKEWS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5)
EXTENDED_SKEWS: tuple[float, ...] = DEFAULT_SKEWS + (2.0, 3.0)
DEFAULT_FILTER_SIZE = 100
#: The paper's tuned f: 3 at n=1e5, 5 at n=1e6.
DEFAULT_NUM_FILTERS = 3


@dataclass(frozen=True)
class Fig7Row:
    """One point of Figure 7: both protocols at one skew."""

    skew: float
    netfilter_total: float
    naive_total: float
    netfilter_filtering: float
    netfilter_dissemination: float
    netfilter_aggregation: float
    frequent_count: int

    @property
    def cost_ratio(self) -> float:
        """netFilter cost as a fraction of naive."""
        return self.netfilter_total / self.naive_total if self.naive_total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "alpha": self.skew,
            "netFilter": self.netfilter_total,
            "naive": self.naive_total,
            "ratio": self.cost_ratio,
            "frequent": self.frequent_count,
        }


def _figure7_cell(
    scale: ExperimentScale,
    seed: int,
    skew: float,
    filter_size: int,
    num_filters: int,
) -> Fig7Row:
    """One Figure 7 skew point (the parallel worker).

    The sequential sweep already builds one fresh trial per skew, so this
    is the loop body verbatim — ``jobs=1`` and ``jobs=N`` share it.
    """
    trial = build_trial(scale, seed=seed, skew=skew)
    config = NetFilterConfig(
        filter_size=filter_size,
        num_filters=num_filters,
        threshold_ratio=trial.defaults.threshold_ratio,
    )
    net_result = NetFilter(config).run(trial.engine)
    naive_result = NaiveProtocol(config).run(trial.engine)
    return Fig7Row(
        skew=skew,
        netfilter_total=net_result.breakdown.total,
        naive_total=naive_result.breakdown.naive,
        netfilter_filtering=net_result.breakdown.filtering,
        netfilter_dissemination=net_result.breakdown.dissemination,
        netfilter_aggregation=net_result.breakdown.aggregation,
        frequent_count=len(net_result.frequent),
    )


def run_figure7(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    skews: tuple[float, ...] = DEFAULT_SKEWS,
    filter_size: int = DEFAULT_FILTER_SIZE,
    num_filters: int = DEFAULT_NUM_FILTERS,
    jobs: int = 1,
) -> list[Fig7Row]:
    """Reproduce one panel of Figure 7 (the scale chooses the panel:
    ``paper`` ≈ 7(a) with n=1e5, ``large`` ≈ 7(b) with n=1e6)."""
    scale = scale or ExperimentScale.paper()
    return run_trials(
        [
            TrialSpec(
                fn=_figure7_cell,
                kwargs=dict(
                    scale=scale,
                    seed=seed,
                    skew=skew,
                    filter_size=filter_size,
                    num_filters=num_filters,
                ),
                label=f"fig7 alpha={skew}",
            )
            for skew in skews
        ],
        jobs=jobs,
    )
