"""Command-line entry point for the evaluation experiments.

Usage::

    python -m repro.experiments fig5 --scale paper --seed 0
    python -m repro.experiments all --scale small --json results.json

``--scale small`` keeps the workload shape at a fraction of the paper's
size (fast; used by CI); ``--scale paper`` and ``--scale large`` are the
sizes of the paper's Figures 5-7(a) and 7(b)/8 respectively.  ``--json``
additionally writes every generated row to a machine-readable file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.experiments.ablations import run_all_ablations
from repro.experiments.fig5 import predicted_optimal_g, run_figure5
from repro.experiments.fig6 import predicted_optimal_f, run_figure6
from repro.experiments.fig7 import run_figure7
from repro.experiments.fig8 import run_figure8
from repro.experiments.harness import ExperimentScale, flush_traces, set_trace_dir
from repro.experiments.report import render_rows, render_table

RowsByTable = dict[str, list[dict[str, Any]]]


def _fig5(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    rows = run_figure5(scale, seed, jobs=jobs)
    print(render_rows(rows, title=f"Figure 5 — effect of filter size g (f=3, {scale.name})"))
    predicted = predicted_optimal_g(scale, seed)
    print(f"\nFormula 3 predicted g_opt = {predicted}")
    best = min(rows, key=lambda row: row.total_cost)
    print(f"Measured minimum total cost at g = {best.filter_size}")
    return {"fig5": [row.as_dict() for row in rows]}


def _fig6(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    rows = run_figure6(scale, seed, jobs=jobs)
    print(render_rows(rows, title=f"Figure 6 — effect of number of filters f (g=100, {scale.name})"))
    predicted = predicted_optimal_f(scale, seed)
    print(f"\nFormula 6 predicted f_opt = {predicted}")
    best = min(rows, key=lambda row: row.total_cost)
    print(f"Measured minimum total cost at f = {best.num_filters}")
    return {"fig6": [row.as_dict() for row in rows]}


def _fig7(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    num_filters = 5 if scale.n_items >= 1_000_000 else 3
    rows = run_figure7(scale, seed, num_filters=num_filters, jobs=jobs)
    print(
        render_rows(
            rows,
            title=(
                f"Figure 7 — effect of data skewness (g=100, f={num_filters}, "
                f"{scale.name}): netFilter vs naive"
            ),
        )
    )
    return {"fig7": [row.as_dict() for row in rows]}


def _fig8(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    rows = run_figure8(scale, seed, jobs=jobs)
    print(
        render_rows(
            rows,
            title=f"Figure 8 — effect of threshold ratio ({scale.name}): cost vs skew",
        )
    )
    return {"fig8": [row.as_dict() for row in rows]}


def _model(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    # Model validation shares one trial across its sweep, so it stays
    # sequential regardless of --jobs.
    del jobs
    from repro.experiments.model_validation import run_model_validation

    rows = run_model_validation(scale, seed)
    print(
        render_rows(
            rows,
            title=(
                f"Cost model validation — Formula 1 predicted vs measured "
                f"({scale.name})"
            ),
        )
    )
    worst = max(row.filtering_error for row in rows)
    print(f"\nWorst filtering-term prediction error: {100 * worst:.2f}%")
    return {"model_validation": [row.as_dict() for row in rows]}


def _robustness(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    from repro.experiments.robustness import run_robustness

    rows = run_robustness(scale, seed, jobs=jobs)
    print(
        render_table(
            [row.as_dict() for row in rows],
            title=(
                f"Robustness — exactness under loss x churn, hardened vs "
                f"baseline ({scale.name})"
            ),
        )
    )
    return {"robustness": [row.as_dict() for row in rows]}


def _ablations(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    collected: RowsByTable = {}
    for title, rows in run_all_ablations(scale, seed, jobs=jobs).items():
        print(render_table([row.as_dict() for row in rows], title=f"Ablation — {title}"))
        print()
        collected[f"ablation: {title}"] = [row.as_dict() for row in rows]
    return collected


def _soak(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    # One long-lived service run; inherently sequential.
    del jobs
    from repro.experiments.soak import SoakConfig, run_soak

    config = SoakConfig.smoke(seed) if scale.name == "small" else SoakConfig.full(seed)
    result = run_soak(config)
    stride = max(1, len(result.rows) // 25)
    print(
        render_table(
            result.rows[::stride],
            title=(
                f"Soak — {config.epochs} epochs, {config.n_peers} peers, "
                f"churn x burst loss x flash crowds (every {stride}th epoch)"
            ),
        )
    )
    print(f"\nReplay digest: {result.digest}")
    for key in sorted(result.summary):
        print(f"  {key}: {result.summary[key]}")
    return {"soak": result.rows, "soak_summary": [result.summary]}


def _overload(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    # One long-lived front-door run; inherently sequential.
    del jobs
    from repro.experiments.overload import OverloadConfig, run_overload

    config = (
        OverloadConfig.smoke(seed) if scale.name == "small" else OverloadConfig.full(seed)
    )
    result = run_overload(config)
    stride = max(1, len(result.round_rows) // 25)
    print(
        render_table(
            result.round_rows[::stride],
            title=(
                f"Overload — {config.rounds} rounds, {config.n_peers} peers, "
                f"flash crowds x burst loss x root crash (every {stride}th round)"
            ),
        )
    )
    print(f"\nReplay digest: {result.digest}")
    for key in sorted(result.summary):
        print(f"  {key}: {result.summary[key]}")
    return {"overload": result.round_rows, "overload_summary": [result.summary]}


#: Engine/shard selection for the `scaling` command, set by main() from
#: --engine/--shards before dispatch (handlers share one signature).
_SCALING_OPTS = {"engine": "vec", "shards": 1}


def _scaling(scale: ExperimentScale, seed: int, jobs: int = 1) -> RowsByTable:
    from repro.experiments.scaling import run_scaling

    engine = str(_SCALING_OPTS["engine"])
    shards = int(_SCALING_OPTS["shards"])
    rows = run_scaling(scale, seed, engine=engine, shards=shards, jobs=jobs)
    print(
        render_table(
            [row.as_dict() for row in rows],
            title=(
                f"Scaling — population sweep, engine={engine}, "
                f"shards={shards} ({scale.name})"
            ),
        )
    )
    if engine == "vec":
        print("\nReplay digests (pure functions of seed x plan):")
        for row in rows:
            print(f"  N={row.n_peers}: {row.digest}")
    return {"scaling": [row.as_dict() for row in rows]}


COMMANDS = {
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "model": _model,
    "ablations": _ablations,
    "robustness": _robustness,
    "soak": _soak,
    "overload": _overload,
    "scaling": _scaling,
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the selected experiments, print (and
    optionally export) the tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of 'Identifying Frequent Items "
        "in P2P Systems' (ICDCS 2008).",
    )
    parser.add_argument(
        "experiment", choices=[*COMMANDS, "all"], help="which figure to regenerate"
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["small", "medium", "paper", "large"],
        help="experiment size (paper defaults: fig5-7a=paper, fig7b/8=large)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent experiment cells on N worker processes "
        "(results are identical to --jobs 1; see repro.experiments.parallel)",
    )
    parser.add_argument(
        "--engine",
        default="vec",
        choices=["scalar", "vec"],
        help="execution tier for the `scaling` command: the event-driven "
        "scalar engine or the columnar vectorized tier (default: vec)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="split the `scaling` command's vectorized populations into K "
        "independent space shards merged at a super-root (results are a "
        "pure function of seed x K, independent of --jobs)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all generated rows to this JSON file",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="stream one JSONL telemetry trace per trial into this "
        "directory and print a run report for each",
    )
    parser.add_argument(
        "--trace-sample",
        metavar="K",
        type=int,
        default=1,
        help="keep 1 in K high-frequency trace events (msg.*, heartbeat.*)",
    )
    parser.add_argument(
        "--trace-spans",
        action="store_true",
        help="record causal spans in each trace (requires --trace-dir); "
        "enables critical-path and attribution views in the run reports "
        "and `python -m repro.telemetry export-chrome`",
    )
    args = parser.parse_args(argv)

    _SCALING_OPTS["engine"] = args.engine
    _SCALING_OPTS["shards"] = args.shards
    scale = ExperimentScale.by_name(args.scale)
    selected = list(COMMANDS) if args.experiment == "all" else [args.experiment]
    jobs = args.jobs
    if args.trace_dir and jobs > 1:
        # Per-trial traces are collected from in-process globals; pool
        # workers cannot populate them, so tracing forces sequential runs.
        print("--trace-dir requires sequential execution; ignoring --jobs", file=sys.stderr)
        jobs = 1
    if args.trace_spans and not args.trace_dir:
        parser.error("--trace-spans requires --trace-dir")
    if args.trace_dir:
        set_trace_dir(
            args.trace_dir, sample_every=args.trace_sample, spans=args.trace_spans
        )
    exported: dict[str, Any] = {
        "scale": scale.name,
        "n_peers": scale.n_peers,
        "n_items": scale.n_items,
        "seed": args.seed,
        "tables": {},
    }
    try:
        for name in selected:
            # Progress line for humans; wall time never enters results.
            started = time.perf_counter()  # repro-lint: disable=DET001
            exported["tables"].update(COMMANDS[name](scale, args.seed, jobs))
            elapsed = time.perf_counter() - started  # repro-lint: disable=DET001
            print(f"\n[{name} completed in {elapsed:.1f}s]\n")
            if args.trace_dir:
                _report_traces(flush_traces())
    finally:
        if args.trace_dir:
            flush_traces()
            set_trace_dir(None)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(exported, handle, indent=2, default=float)
        print(f"Rows exported to {args.json}")
    return 0


def _report_traces(paths: list[str]) -> None:
    """Print a run report for every freshly closed trace."""
    from repro.telemetry.report import build_report, render_report
    from repro.telemetry.sink import iter_trace

    for path in paths:
        print(render_report(build_report(iter_trace(path), path=path)))
        print()
    if paths:
        print(
            f"{len(paths)} trace(s) written; re-inspect any of them with "
            f"`python -m repro.telemetry report <trace>`"
        )


if __name__ == "__main__":
    sys.exit(main())
