"""Common machinery for the evaluation experiments.

:class:`PaperDefaults` pins the constants of the paper's Table III;
:func:`build_trial` assembles a complete simulated system (topology →
network → workload → hierarchy → aggregation engine) from a scale and a
seed, so every figure module is a parameter sweep over ready-made trials.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field, replace

from repro.aggregation.hierarchical import AggregationEngine
from repro.hierarchy.builder import Hierarchy
from repro.hierarchy.monitor import tree_stats
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.net.wire import SizeModel
from repro.sim.engine import Simulation
from repro.workload.workload import Workload


@dataclass(frozen=True)
class PaperDefaults:
    """Table III of the paper: simulation parameters and default values."""

    #: N — number of peers in the network.
    n_peers: int = 1000
    #: n — number of distinct items in the system.
    n_items: int = 100_000
    #: ρ — threshold ratio (t = ρ·v).
    threshold_ratio: float = 0.01
    #: α — skew of the Zipf distribution.
    skew: float = 1.0
    #: b — target mean number of downstream neighbours per peer.
    branching: int = 3
    #: Instances generated per distinct item (the paper's ``10·n`` total).
    instances_per_item: int = 10
    #: s_a = s_g = s_i = 4 bytes.
    size_model: SizeModel = SizeModel()


#: The scales experiments run at.  ``o = instances_per_item · n / N`` stays
#: at the paper's 1000 for "paper"; "small" keeps the same shape at ~1/20
#: of the size so the test and benchmark suites stay fast.
@dataclass(frozen=True)
class ExperimentScale:
    """A (N, n) scale for an experiment run."""

    name: str
    n_peers: int
    n_items: int

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls(name="small", n_peers=100, n_items=5_000)

    @classmethod
    def medium(cls) -> "ExperimentScale":
        return cls(name="medium", n_peers=300, n_items=30_000)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(name="paper", n_peers=1000, n_items=100_000)

    @classmethod
    def large(cls) -> "ExperimentScale":
        return cls(name="large", n_peers=1000, n_items=1_000_000)

    @classmethod
    def by_name(cls, name: str) -> "ExperimentScale":
        presets = {
            "small": cls.small,
            "medium": cls.medium,
            "paper": cls.paper,
            "large": cls.large,
        }
        if name not in presets:
            raise ValueError(f"unknown scale {name!r}; choose from {sorted(presets)}")
        return presets[name]()


@dataclass
class TrialSetup:
    """A fully-assembled simulated system ready for protocol runs."""

    sim: Simulation
    network: Network
    hierarchy: Hierarchy
    engine: AggregationEngine
    workload: Workload
    defaults: PaperDefaults
    #: JSONL trace file this trial streams to (None when tracing is off).
    trace_path: str | None = field(default=None)

    @property
    def hierarchy_height(self) -> int:
        """Measured hierarchy height ``h``."""
        return self.hierarchy.height()

    @property
    def mean_fanout(self) -> float:
        """Measured mean downstream fan-out ``b``."""
        return tree_stats(self.hierarchy).mean_fanout

    def finish_trace(self) -> str | None:
        """Flush and close this trial's trace sink(s); returns the path."""
        self.sim.telemetry.close()
        return self.trace_path


# ----------------------------------------------------------------------
# Per-run trace export.  ``set_trace_dir`` makes every subsequently built
# trial stream its telemetry to an auto-named JSONL file in that directory
# (the CLI's ``--trace-dir``); sweeps get one trace per run for free.
# ----------------------------------------------------------------------
_trace_dir: str | None = None
_trace_sample_every = 1
_trace_spans = False
_trace_seq = itertools.count()
_open_trials: list[TrialSetup] = []


def set_trace_dir(path: str | None, sample_every: int = 1, spans: bool = False) -> None:
    """Enable (or, with None, disable) automatic per-trial JSONL tracing.

    With ``spans=True`` every traced trial also records causal spans
    (:mod:`repro.telemetry.spans`), so its trace feeds the run report's
    critical-path and attribution views and the Chrome exporter.
    """
    global _trace_dir, _trace_sample_every, _trace_spans
    if path is not None:
        os.makedirs(path, exist_ok=True)
    _trace_dir = path
    _trace_sample_every = sample_every
    _trace_spans = spans


def flush_traces() -> list[str]:
    """Close every trace opened by :func:`build_trial` since the last
    flush; returns the trace paths, in creation order."""
    paths = []
    for trial in _open_trials:
        if trial.finish_trace() is not None:
            paths.append(trial.trace_path)
    _open_trials.clear()
    return paths


def build_trial(
    scale: ExperimentScale,
    seed: int = 0,
    skew: float | None = None,
    defaults: PaperDefaults | None = None,
    trace_path: str | None = None,
    trace_sample_every: int = 1,
    trace_spans: bool = False,
) -> TrialSetup:
    """Assemble a trial: overlay, network, Zipf workload, hierarchy, engine.

    The overlay is a connected random graph with mean degree
    ``branching + 1`` so the BFS hierarchy's mean downstream fan-out lands
    near the paper's ``b`` (each non-root peer consumes one edge for its
    parent).  The root is peer 0 — the paper selects a root at random, and
    under a seeded random topology peer 0 *is* a random peer.

    ``trace_path`` streams the trial's telemetry to that JSONL file (close
    it via :meth:`TrialSetup.finish_trace`); when a trace directory is set
    with :func:`set_trace_dir`, a file is auto-named per trial instead.
    """
    base = defaults or PaperDefaults()
    base = replace(base, n_peers=scale.n_peers, n_items=scale.n_items)
    if skew is not None:
        base = replace(base, skew=skew)

    sim = Simulation(seed=seed)
    if trace_path is None and _trace_dir is not None:
        trace_path = os.path.join(
            _trace_dir,
            f"trial-{scale.name}-seed{seed}-{next(_trace_seq):03d}.jsonl",
        )
        trace_sample_every = max(trace_sample_every, _trace_sample_every)
        trace_spans = trace_spans or _trace_spans
    if trace_path is not None:
        sim.telemetry.attach_jsonl(trace_path, sample_every=trace_sample_every)
        if trace_spans:
            sim.telemetry.enable_spans(sample_every=trace_sample_every)
    topology = Topology.random_connected(
        base.n_peers, float(base.branching + 1), sim.rng.stream("topology")
    )
    network = Network(sim, topology, size_model=base.size_model)
    workload = Workload.zipf(
        n_items=base.n_items,
        n_peers=base.n_peers,
        skew=base.skew,
        rng=sim.rng.stream("workload"),
        instances_per_item=base.instances_per_item,
    )
    network.assign_items(workload.item_sets)
    hierarchy = Hierarchy.build(network, root=0)
    engine = AggregationEngine(hierarchy)
    trial = TrialSetup(
        sim=sim,
        network=network,
        hierarchy=hierarchy,
        engine=engine,
        workload=workload,
        defaults=base,
        trace_path=trace_path,
    )
    if trace_path is not None:
        _open_trials.append(trial)
    return trial
