"""Seed-parallel execution of independent experiment trials.

Every figure sweep decomposes into independent cells — one
``(parameters, seed)`` trial each, with no shared mutable state — so they
parallelise trivially across processes.  This module provides the one
primitive the figure modules share:

* :class:`TrialSpec` — a picklable description of one cell: a top-level
  worker function plus its keyword arguments;
* :func:`run_trials` — run a list of specs either sequentially
  (``jobs=1``, the default: identical to the historical code path) or on
  a :class:`~concurrent.futures.ProcessPoolExecutor` with ``jobs``
  workers.

Determinism contract
--------------------
Results are returned **in spec order**, never in completion order
(`ProcessPoolExecutor.map` preserves input order), and each worker builds
its trial from its own ``(scale, seed, parameters)`` alone — fresh
:class:`~repro.sim.engine.Simulation`, fresh RNG registry — so a cell's
result is a pure function of its spec.  ``jobs=1`` and ``jobs=N``
therefore produce identical rows; ``tests/experiments/test_parallel.py``
pins that equivalence.

Workers must be *module-level* functions (pickled by reference) and every
kwarg must be picklable — frozen dataclasses like
:class:`~repro.experiments.harness.ExperimentScale` are fine.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence


@dataclass(frozen=True)
class TrialSpec:
    """One independent experiment cell.

    Attributes
    ----------
    fn:
        Top-level callable executed for this cell (must be picklable by
        reference, i.e. importable from its module).
    kwargs:
        Keyword arguments for ``fn``; must be picklable.
    label:
        Human-readable cell name, used in error messages.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""


def _call(spec: TrialSpec) -> Any:
    """Top-level trampoline so specs travel to workers by reference."""
    return spec.fn(**spec.kwargs)


def run_trials(specs: Sequence[TrialSpec], jobs: int = 1) -> list[Any]:
    """Run every spec and return their results in spec order.

    Parameters
    ----------
    specs:
        The cells to run.
    jobs:
        Worker process count.  ``jobs <= 1`` runs sequentially in-process
        (no executor, no pickling — the exact historical behaviour); the
        pool is never wider than ``len(specs)``.
    """
    if jobs <= 1 or len(specs) <= 1:
        return [_call(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        # map() yields results in submission order regardless of which
        # worker finishes first — the determinism contract above.
        return list(pool.map(_call, specs))
