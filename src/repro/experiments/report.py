"""Plain-text rendering of experiment results.

The experiments return rows of numbers; this module turns them into the
aligned ASCII tables that the CLI prints and ``EXPERIMENTS.md`` records.
No plotting dependency: the paper's claims are about orderings, ratios and
crossover points, all of which are judged from the tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_value(value: Any) -> str:
    """Compact numeric formatting: ints plain, floats adaptively."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1_000_000:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def render_table(rows: Sequence[dict[str, Any]], title: str | None = None) -> str:
    """Render dict-rows as an aligned ASCII table.

    All rows must share the first row's keys (extra keys are dropped so
    heterogeneous sweeps degrade gracefully).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    # Column order deliberately follows the first row's insertion order,
    # which is itself deterministic (rows are built key-by-key in code).
    headers = list(rows[0].keys())
    # repro-lint: disable-next=DET003
    table = [[format_value(row.get(header, "")) for header in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[col]) for line in table))
        for col, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def render_rows(rows: Sequence[Any], title: str | None = None) -> str:
    """Render experiment row objects (anything with ``as_dict``)."""
    return render_table([row.as_dict() for row in rows], title=title)
