"""Flash-crowd overload harness: the query front door under fire.

The ISSUE-9 serving story, end to end: a :class:`~repro.frontdoor.FrontDoor`
fields a multi-tenant request stream whose arrival rate spikes by an
order of magnitude on flash-crowd rounds, while the fault DSL pours
trouble on the aggregation plane — periodic
:class:`~repro.faults.BurstLoss` windows on the wire and a scripted
**root crash** (with a later revival) that takes the session engine down
entirely for a stretch of rounds.

The harness asserts the front door's contract over *every* submitted
request:

* **universal termination** — each request ends in exactly one of
  ``COMMITTED`` / ``DEGRADED`` / ``REJECTED``, within the client
  timeout, with zero unhandled exceptions;
* **honest staleness** — a degraded answer's ``staleness`` never
  exceeds the requester's declared tolerance;
* **explicit rejection** — every rejection names a reason and (except
  exhausted budgets) a finite ``retry_after``;
* **replayability** — the full verdict stream is digested so two
  same-seed runs can be compared byte for byte.

Batching efficiency is measured against a baseline system (same seed,
same topology, same items) running one dedicated
:class:`~repro.core.netfilter.NetFilter` query: the summary's
``batching_gain`` is baseline bytes-per-query over the front door's
achieved bytes-per-terminal-request.  ``BENCH_frontdoor.json`` is
generated from these runs by ``benchmarks/bench_frontdoor.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.aggregation.hierarchical import AggregationEngine
from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter
from repro.errors import ConfigurationError, ExperimentError
from repro.faults import BurstLoss, CrashPeer, FaultInjector, FaultScenario, RevivePeer
from repro.faults.scenario import FaultAction
from repro.frontdoor import (
    COMMITTED,
    DEGRADED,
    REJECTED,
    FrontDoor,
    FrontDoorConfig,
    TenantPolicy,
)
from repro.hierarchy.builder import Hierarchy
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.net.transport import TransportConfig
from repro.sim.engine import Simulation
from repro.workload.workload import Workload


@dataclass(frozen=True)
class OverloadConfig:
    """Everything one overload run needs; presets cover CI and the bench.

    Tenant zero is deliberately under-provisioned (a tight token bucket)
    and tenant one carries a finite byte budget, so rate-limit and
    budget rejections are exercised by construction, not by luck.
    """

    seed: int = 0
    rounds: int = 40
    n_peers: int = 24
    n_items: int = 1500
    skew: float = 1.0
    mean_degree: float = 4.0
    arrivals_per_round: int = 6
    flash_every: int = 10
    flash_multiplier: int = 12
    tenants: int = 4
    ratio_choices: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05)
    burst_every: int = 8
    burst_duration: float = 25.0
    burst_probability: float = 0.3
    root_crash_round: int = 18
    root_revive_round: int = 24
    round_interval: float = 60.0
    session_deadline: float = 50.0
    client_timeout: float = 360.0
    max_queue_depth: int = 512
    max_batch: int = 256
    breaker_threshold: int = 2
    breaker_reset: float = 150.0
    tight_rate: float = 0.02
    tight_burst: float = 4.0
    byte_budget: float = 200_000.0
    default_rate: float = 0.5
    default_burst: float = 32.0
    max_staleness: int = 6
    filter_size: int = 300
    num_filters: int = 2

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if self.tenants < 1:
            raise ConfigurationError("at least one tenant is required")
        if not self.ratio_choices:
            raise ConfigurationError("ratio_choices must not be empty")
        if 0 <= self.root_crash_round <= self.root_revive_round >= self.rounds:
            raise ConfigurationError(
                "root_revive_round must fall inside the run so the recovery "
                "arc is observed"
            )

    @classmethod
    def smoke(cls, seed: int = 0) -> "OverloadConfig":
        """The CI cell: flash crowds x burst loss x a root crash arc."""
        return cls(seed=seed)

    @classmethod
    def full(cls, seed: int = 0) -> "OverloadConfig":
        """The acceptance run: longer, larger, heavier flash crowds."""
        return cls(
            seed=seed,
            rounds=80,
            n_peers=32,
            arrivals_per_round=10,
            flash_multiplier=20,
            root_crash_round=36,
            root_revive_round=46,
        )


@dataclass
class OverloadResult:
    """One overload run's evidence: verdicts, round rows, replay digest."""

    config: OverloadConfig
    request_rows: list[dict[str, Any]]
    round_rows: list[dict[str, Any]]
    summary: dict[str, Any]
    digest: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": {
                "seed": self.config.seed,
                "rounds": self.config.rounds,
                "n_peers": self.config.n_peers,
                "arrivals_per_round": self.config.arrivals_per_round,
                "flash_multiplier": self.config.flash_multiplier,
                "tenants": self.config.tenants,
                "root_crash_round": self.config.root_crash_round,
                "burst_probability": self.config.burst_probability,
            },
            "digest": self.digest,
            "summary": self.summary,
            "rounds": self.round_rows,
        }


def _policies(config: OverloadConfig) -> dict[str, TenantPolicy]:
    policies = {
        "t0": TenantPolicy(
            rate=config.tight_rate,
            burst=config.tight_burst,
            max_staleness=config.max_staleness,
        ),
    }
    if config.tenants > 1:
        policies["t1"] = TenantPolicy(
            rate=config.default_rate,
            burst=config.default_burst,
            byte_budget=config.byte_budget,
            max_staleness=config.max_staleness,
        )
    return policies


def _fault_scenario(config: OverloadConfig, base: float) -> FaultScenario:
    """BurstLoss windows phased to hit live sessions, plus the scripted
    root crash/revive arc (no hierarchy maintenance here — the crash
    takes the service down until the revival, which is the point)."""
    actions: list[FaultAction] = []
    if config.burst_every > 0:
        for k in range(config.burst_every, config.rounds, config.burst_every):
            actions.append(
                BurstLoss(
                    start=base + k * config.round_interval + 1.0,
                    duration=config.burst_duration,
                    probability=config.burst_probability,
                )
            )
    if config.root_crash_round >= 0:
        actions.append(
            CrashPeer(peer=0, at=base + config.root_crash_round * config.round_interval + 0.5)
        )
        actions.append(
            RevivePeer(peer=0, at=base + config.root_revive_round * config.round_interval + 0.5)
        )
    return FaultScenario(name="overload", actions=tuple(actions))


def _baseline_bytes_per_query(config: OverloadConfig) -> float:
    """What one request costs without the front door: a dedicated
    netFilter run on an identical fresh system, at the *smallest* ratio
    any tenant asks for (the cheapest-possible dedicated answer is the
    conservative comparison)."""
    sim = Simulation(seed=config.seed)
    network, hierarchy = _build_system(sim, config)
    engine = AggregationEngine(hierarchy, child_timeout=30.0, hardened=True)
    NetFilter(
        NetFilterConfig(
            filter_size=config.filter_size,
            num_filters=config.num_filters,
            threshold_ratio=min(config.ratio_choices),
        )
    ).run(engine)
    return float(network.accounting.total_bytes())


def _build_system(
    sim: Simulation, config: OverloadConfig
) -> tuple[Network, Hierarchy]:
    topology = Topology.random_connected(
        config.n_peers, config.mean_degree, sim.rng.stream("topology")
    )
    network = Network(
        sim,
        topology,
        transport_config=TransportConfig(latency=1.0, latency_jitter=0.3),
    )
    workload = Workload.zipf(
        n_items=config.n_items,
        n_peers=config.n_peers,
        skew=config.skew,
        rng=sim.rng.stream("workload"),
    )
    network.assign_items(workload.item_sets)
    return network, Hierarchy.build(network, root=0)


def _collect_verdicts(
    door: FrontDoor,
    expected_tolerance: dict[int, int],
    client_timeout: float,
    round_interval: float,
) -> tuple[list[dict[str, Any]], list[float], dict[str, int], str]:
    """Walk every submitted request, enforce the front-door contract
    (termination, honest staleness, named rejections, bounded latency),
    and fold the verdict stream into a replay digest."""
    digest = hashlib.sha256()
    request_rows: list[dict[str, Any]] = []
    latencies: list[float] = []
    reasons: dict[str, int] = {}
    for request_id in sorted(door.records):
        record = door.records[request_id]
        if not record.terminal:
            raise ExperimentError(
                f"request {request_id} never terminated (tenant "
                f"{record.tenant}, submitted at {record.submitted_at})"
            )
        if record.status not in (COMMITTED, DEGRADED, REJECTED):
            raise ExperimentError(
                f"request {request_id} ended in unknown status "
                f"{record.status!r}"
            )
        if record.status == REJECTED and not record.reason:
            raise ExperimentError(f"request {request_id} rejected without a reason")
        if record.status == DEGRADED:
            tolerance = expected_tolerance[request_id]
            if record.staleness > tolerance or record.staleness <= 0:
                raise ExperimentError(
                    f"request {request_id}: degraded staleness "
                    f"{record.staleness} outside (0, {tolerance}]"
                )
        if record.status in (COMMITTED, DEGRADED) and record.items is None:
            raise ExperimentError(f"request {request_id} answered without items")
        if record.latency > client_timeout + 2 * round_interval:
            raise ExperimentError(
                f"request {request_id} took {record.latency} — past the "
                f"client timeout plus a round of slack"
            )
        row = record.as_row()
        request_rows.append(row)
        latencies.append(record.latency)
        if record.status == REJECTED:
            reasons[record.reason] = reasons.get(record.reason, 0) + 1
        items = record.items
        pairs = (
            ""
            if items is None
            else ",".join(
                f"{item}:{value}"
                for item, value in zip(items.ids.tolist(), items.values.tolist())
            )
        )
        digest.update(
            (
                f"{row['request_id']}|{row['tenant']}|{row['status']}|"
                f"{row['reason']}|{row['staleness']}|{row['threshold']}|"
                f"{record.latency!r}|{pairs}\n"
            ).encode()
        )
    return request_rows, latencies, reasons, digest.hexdigest()


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    index = min(int(q * len(latencies)), len(latencies) - 1)
    return round(latencies[index], 3)


def run_overload(
    config: OverloadConfig, trace_path: str | None = None
) -> OverloadResult:
    """Run one overload experiment; raises :class:`ExperimentError` on
    any contract breach.  Deterministic: same config, same digest.

    ``trace_path`` streams the run's JSONL telemetry trace to a file —
    the CI overload cell points it at the fault-trace artifact directory
    so a failing run leaves its full event history behind.
    """
    sim = Simulation(seed=config.seed)
    if trace_path is None:
        return _run_overload(sim, config)
    sim.telemetry.attach_jsonl(trace_path)
    try:
        return _run_overload(sim, config)
    finally:
        sim.telemetry.close()


def _run_overload(sim: Simulation, config: OverloadConfig) -> OverloadResult:
    network, hierarchy = _build_system(sim, config)
    engine = AggregationEngine(hierarchy, child_timeout=30.0, hardened=True)
    door = FrontDoor(
        engine,
        NetFilterConfig(
            filter_size=config.filter_size,
            num_filters=config.num_filters,
            threshold_ratio=min(config.ratio_choices),
        ),
        FrontDoorConfig(
            round_interval=config.round_interval,
            session_deadline=config.session_deadline,
            client_timeout=config.client_timeout,
            max_queue_depth=config.max_queue_depth,
            max_batch=config.max_batch,
            breaker_threshold=config.breaker_threshold,
            breaker_reset=config.breaker_reset,
            default_policy=TenantPolicy(
                rate=config.default_rate,
                burst=config.default_burst,
                max_staleness=config.max_staleness,
            ),
        ),
        policies=_policies(config),
    )
    base = sim.now
    FaultInjector(network, _fault_scenario(config, base)).install()

    # ------------------------------------------------------------------
    # The arrival stream: every round draws (tenant, requester, ratio)
    # tuples from a dedicated RNG stream; flash-crowd rounds multiply the
    # draw count.  Tolerances vary so both fresh-only and staleness-
    # tolerant requests exist at every point of the run.
    # ------------------------------------------------------------------
    arrivals = sim.rng.stream("overload.arrivals")
    tenant_names = [f"t{k}" for k in range(config.tenants)]
    requesters = [peer for peer in sorted(network.nodes) if peer != 0]
    tolerances = (0, config.max_staleness // 2, config.max_staleness)
    expected_tolerance: dict[int, int] = {}

    for k in range(config.rounds):
        count = config.arrivals_per_round
        if config.flash_every > 0 and k > 0 and k % config.flash_every == 0:
            count *= config.flash_multiplier
        for _ in range(count):
            tenant = tenant_names[int(arrivals.integers(len(tenant_names)))]
            requester = requesters[int(arrivals.integers(len(requesters)))]
            ratio = config.ratio_choices[
                int(arrivals.integers(len(config.ratio_choices)))
            ]
            tolerance = tolerances[int(arrivals.integers(len(tolerances)))]
            request_id = door.submit(tenant, requester, ratio, tolerance)
            expected_tolerance[request_id] = tolerance
        door.run(base + (k + 1) * config.round_interval)
    door.drain()

    request_rows, latencies, reasons, digest = _collect_verdicts(
        door, expected_tolerance, config.client_timeout, config.round_interval
    )
    counts = door.status_counts()
    total = len(request_rows)
    answered = counts[COMMITTED] + counts[DEGRADED]
    total_bytes = float(network.accounting.total_bytes())
    bytes_per_query = total_bytes / max(total, 1)
    baseline = _baseline_bytes_per_query(config)
    latencies.sort()
    counters = sim.trace.counters
    summary: dict[str, Any] = {
        "requests": total,
        "committed": counts[COMMITTED],
        "degraded": counts[DEGRADED],
        "rejected": counts[REJECTED],
        "answer_rate": round(answered / max(total, 1), 4),
        "shed_rate": round(counts[REJECTED] / max(total, 1), 4),
        "reject_reasons": {name: reasons[name] for name in sorted(reasons)},
        "cache_hits": door.cache.hits,
        "sessions": sum(1 for row in door.round_rows if row["batched"]),
        "session_failures": sum(
            1 for row in door.round_rows if row["batched"] and not row["committed"]
        ),
        "p50_latency": _percentile(latencies, 0.50),
        "p99_latency": _percentile(latencies, 0.99),
        "total_bytes": total_bytes,
        "bytes_per_query": round(bytes_per_query, 2),
        "baseline_bytes_per_query": round(baseline, 2),
        "batching_gain": round(baseline / max(bytes_per_query, 1e-9), 2),
        "breaker_trips": int(counters.get("frontdoor.breaker", 0)),
        "faults_injected": int(counters.get("fault.injected", 0)),
    }
    if answered == 0:
        raise ExperimentError("overload run answered no request at all")
    return OverloadResult(
        config=config,
        request_rows=request_rows,
        round_rows=door.round_rows,
        summary=summary,
        digest=digest,
    )


# ----------------------------------------------------------------------
# The flood harness: N requests open at once (the bench's load axis).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FloodConfig:
    """One flood cell: ``open_requests`` queries submitted in a single
    instant against a calm network — the pure load-axis measurement the
    benchmark sweeps from 1k to 100k.

    Tenants here are provisioned so the *rate* limiter never fires (the
    burst allowance covers each tenant's whole share): every rejection
    is queue-depth shedding, which is the overload story being measured.
    """

    seed: int = 0
    open_requests: int = 1000
    tenants: int = 8
    n_peers: int = 24
    n_items: int = 1500
    skew: float = 1.0
    mean_degree: float = 4.0
    ratio_choices: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05)
    round_interval: float = 60.0
    session_deadline: float = 50.0
    client_timeout: float = 360.0
    max_queue_depth: int = 1024
    max_batch: int = 256
    max_staleness: int = 8
    filter_size: int = 300
    num_filters: int = 2

    def __post_init__(self) -> None:
        if self.open_requests <= 0:
            raise ConfigurationError("open_requests must be positive")
        if self.tenants < 1:
            raise ConfigurationError("at least one tenant is required")


@dataclass
class FloodResult:
    """One flood cell's evidence and throughput numbers."""

    config: FloodConfig
    summary: dict[str, Any]
    digest: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": {
                "seed": self.config.seed,
                "open_requests": self.config.open_requests,
                "tenants": self.config.tenants,
                "n_peers": self.config.n_peers,
                "max_queue_depth": self.config.max_queue_depth,
                "max_batch": self.config.max_batch,
            },
            "digest": self.digest,
            "summary": self.summary,
        }


def run_flood(config: FloodConfig) -> FloodResult:
    """Submit ``open_requests`` queries at one instant and drain them.

    Raises :class:`ExperimentError` on any front-door contract breach.
    Deterministic: same config, same digest.
    """
    sim = Simulation(seed=config.seed)
    network, hierarchy = _build_system(
        sim,
        OverloadConfig(
            seed=config.seed,
            n_peers=config.n_peers,
            n_items=config.n_items,
            skew=config.skew,
            mean_degree=config.mean_degree,
        ),
    )
    engine = AggregationEngine(hierarchy, child_timeout=30.0, hardened=True)
    share = -(-config.open_requests // config.tenants)
    door = FrontDoor(
        engine,
        NetFilterConfig(
            filter_size=config.filter_size,
            num_filters=config.num_filters,
            threshold_ratio=min(config.ratio_choices),
        ),
        FrontDoorConfig(
            round_interval=config.round_interval,
            session_deadline=config.session_deadline,
            client_timeout=config.client_timeout,
            max_queue_depth=config.max_queue_depth,
            max_batch=config.max_batch,
            default_policy=TenantPolicy(
                rate=1.0, burst=float(share), max_staleness=config.max_staleness
            ),
        ),
    )
    arrivals = sim.rng.stream("flood.arrivals")
    requesters = [peer for peer in sorted(network.nodes) if peer != 0]
    tolerances = (0, config.max_staleness // 2, config.max_staleness)
    expected_tolerance: dict[int, int] = {}
    started = sim.now
    for k in range(config.open_requests):
        tenant = f"t{k % config.tenants}"
        requester = requesters[int(arrivals.integers(len(requesters)))]
        ratio = config.ratio_choices[int(arrivals.integers(len(config.ratio_choices)))]
        tolerance = tolerances[int(arrivals.integers(len(tolerances)))]
        request_id = door.submit(tenant, requester, ratio, tolerance)
        expected_tolerance[request_id] = tolerance
    door.run(started + config.round_interval)
    door.drain()
    elapsed = sim.now - started

    _, latencies, reasons, digest = _collect_verdicts(
        door, expected_tolerance, config.client_timeout, config.round_interval
    )
    counts = door.status_counts()
    total = config.open_requests
    answered = counts[COMMITTED] + counts[DEGRADED]
    total_bytes = float(network.accounting.total_bytes())
    bytes_per_query = total_bytes / total
    baseline = _baseline_bytes_per_query(
        OverloadConfig(
            seed=config.seed,
            n_peers=config.n_peers,
            n_items=config.n_items,
            skew=config.skew,
            mean_degree=config.mean_degree,
            ratio_choices=config.ratio_choices,
            filter_size=config.filter_size,
            num_filters=config.num_filters,
        )
    )
    latencies.sort()
    if answered == 0:
        raise ExperimentError("flood run answered no request at all")
    summary: dict[str, Any] = {
        "open_requests": total,
        "committed": counts[COMMITTED],
        "degraded": counts[DEGRADED],
        "rejected": counts[REJECTED],
        "answer_rate": round(answered / total, 4),
        "shed_rate": round(counts[REJECTED] / total, 4),
        "reject_reasons": {name: reasons[name] for name in sorted(reasons)},
        "cache_hits": door.cache.hits,
        "sessions": sum(1 for row in door.round_rows if row["batched"]),
        "p50_latency": _percentile(latencies, 0.50),
        "p99_latency": _percentile(latencies, 0.99),
        "sim_elapsed": round(elapsed, 3),
        "queries_per_sim_sec": round(total / max(elapsed, 1e-9), 3),
        "total_bytes": total_bytes,
        "bytes_per_query": round(bytes_per_query, 2),
        "baseline_bytes_per_query": round(baseline, 2),
        "batching_gain": round(baseline / max(bytes_per_query, 1e-9), 2),
    }
    return FloodResult(config=config, summary=summary, digest=digest)
