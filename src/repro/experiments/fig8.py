"""Figure 8 — effect of the threshold ratio ``ρ`` (at ``n = 10^6``).

The paper plots, against skew, netFilter's total cost for
``ρ ∈ {0.001, 0.01, 0.1}`` — each at its tuned setting,
``(g, f) = (1000, 2)``, ``(100, 5)`` and ``(10, 6)`` respectively — plus
the naive baseline.

Shape targets (Section V-D): a larger threshold ratio means fewer frequent
items and coarser filters suffice, so cost falls as ``ρ`` rises; every
netFilter curve sits far below naive.  Note how the tuned ``g`` tracks
Formula 3's ``g_opt ∝ 1/ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NetFilterConfig
from repro.core.naive import NaiveProtocol
from repro.core.netfilter import NetFilter
from repro.experiments.harness import ExperimentScale, build_trial
from repro.experiments.parallel import TrialSpec, run_trials

#: The paper's tuned (ρ → (g, f)) settings for Figure 8.
PAPER_SETTINGS: tuple[tuple[float, int, int], ...] = (
    (0.001, 1000, 2),
    (0.01, 100, 5),
    (0.1, 10, 6),
)
#: Same skew range as Figure 7 (see the note there on the paper's axis).
DEFAULT_SKEWS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5)


@dataclass(frozen=True)
class Fig8Row:
    """One point of Figure 8: all three ρ curves plus naive at one skew."""

    skew: float
    cost_by_ratio: dict[float, float]
    naive_total: float

    def as_dict(self) -> dict[str, float]:
        row: dict[str, float] = {"alpha": self.skew}
        for ratio, cost in sorted(self.cost_by_ratio.items()):
            row[f"rho={ratio}"] = cost
        row["naive"] = self.naive_total
        return row


def _figure8_cell(
    scale: ExperimentScale,
    seed: int,
    skew: float,
    settings: tuple[tuple[float, int, int], ...],
) -> Fig8Row:
    """One Figure 8 skew point: all three ρ curves plus naive (the
    parallel worker; identical to the sequential loop body)."""
    trial = build_trial(scale, seed=seed, skew=skew)
    cost_by_ratio: dict[float, float] = {}
    for ratio, filter_size, num_filters in settings:
        config = NetFilterConfig(
            filter_size=filter_size,
            num_filters=num_filters,
            threshold_ratio=ratio,
        )
        result = NetFilter(config).run(trial.engine)
        cost_by_ratio[ratio] = result.breakdown.total
    naive_config = NetFilterConfig(filter_size=1, threshold_ratio=settings[0][0])
    naive_result = NaiveProtocol(naive_config).run(trial.engine)
    return Fig8Row(
        skew=skew,
        cost_by_ratio=cost_by_ratio,
        naive_total=naive_result.breakdown.naive,
    )


def run_figure8(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    skews: tuple[float, ...] = DEFAULT_SKEWS,
    settings: tuple[tuple[float, int, int], ...] = PAPER_SETTINGS,
    jobs: int = 1,
) -> list[Fig8Row]:
    """Reproduce Figure 8 (the paper uses the ``large`` scale, n=1e6)."""
    scale = scale or ExperimentScale.large()
    return run_trials(
        [
            TrialSpec(
                fn=_figure8_cell,
                kwargs=dict(scale=scale, seed=seed, skew=skew, settings=settings),
                label=f"fig8 alpha={skew}",
            )
            for skew in skews
        ],
        jobs=jobs,
    )
