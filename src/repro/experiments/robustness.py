"""Robustness ablation: exactness under loss and churn, hardened vs not.

The paper's evaluation assumes a quiet network; its Section III-A.2 fault
handling (merge whatever arrived at timeout) silently undercounts under
real loss or churn, and a silently undercounted phase-1 aggregate prunes
frequent items — the one failure mode an *exact* protocol must not have.

This sweep crosses message-loss probability × churn rate and runs each
cell twice:

* **unhardened** — fire-and-forget transport, plain engine, no recovery
  (the paper's setup).  Coverage accounting still reports how much of the
  population the run actually covered — detection is free.
* **hardened** — ACK/retransmit on convergecast traffic
  (:class:`~repro.net.transport.ReliabilityConfig`), one bounded re-probe
  of silent children, and requester-side re-issue on low coverage
  (:class:`~repro.core.recovery.RecoveryPolicy`).

Reported per cell: recall against the live-population oracle (the
no-false-negative guarantee, measured), the worst phase coverage, the
``complete`` flag, re-issues spent, and total per-peer bytes — the price
of the guarantee.
"""

from __future__ import annotations

from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter, NetFilterResult
from repro.core.oracle import oracle_frequent_items
from repro.core.recovery import RecoveryPolicy
from repro.aggregation.hierarchical import AggregationEngine
from repro.experiments.ablations import AblationRow
from repro.experiments.harness import ExperimentScale, PaperDefaults
from repro.experiments.parallel import TrialSpec, run_trials
from repro.hierarchy.builder import Hierarchy
from repro.hierarchy.maintenance import enable_maintenance
from repro.items.itemset import LocalItemSet
from repro.net.churn import ChurnConfig, ChurnProcess
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.net.transport import ReliabilityConfig, TransportConfig
from repro.sim.engine import Simulation
from repro.workload.workload import Workload


def _run_cell(
    scale: ExperimentScale,
    seed: int,
    loss: float,
    churn_rate: float,
    hardened: bool,
) -> tuple[NetFilterResult | None, Network]:
    """One sweep cell: build a fresh faulty system, run netFilter once.

    Returns the result (``None`` when the run could not finish at all —
    e.g. churn disconnected the hierarchy mid-phase and the event queue
    drained; itself a robustness datum) and the network it ran on, so the
    caller can compute the oracle over the same live population.
    """
    defaults = PaperDefaults()
    sim = Simulation(seed=seed)
    topology = Topology.random_connected(
        scale.n_peers, float(defaults.branching + 1), sim.rng.stream("topology")
    )
    network = Network(
        sim,
        topology,
        size_model=defaults.size_model,
        reliability=ReliabilityConfig() if hardened else None,
    )
    workload = Workload.zipf(
        n_items=scale.n_items,
        n_peers=scale.n_peers,
        skew=defaults.skew,
        rng=sim.rng.stream("workload"),
        instances_per_item=defaults.instances_per_item,
    )
    network.assign_items(workload.item_sets)
    # Build during a quiet period (both arms start from the same healthy
    # hierarchy), then turn the faulty link model on for the query.
    hierarchy = Hierarchy.build(network, root=0)
    network.transport.config = TransportConfig(latency=1.0, loss_probability=loss)
    engine = AggregationEngine(hierarchy, child_timeout=120.0, hardened=hardened)
    if churn_rate > 0.0:
        enable_maintenance(hierarchy)
        churn = ChurnProcess(
            sim,
            network,
            ChurnConfig(
                failure_rate=churn_rate,
                mean_downtime=80.0,
                protected_peers=frozenset({hierarchy.root}),
            ),
        )
        churn.start()
    netfilter = NetFilter(
        NetFilterConfig(
            filter_size=100,
            num_filters=3,
            threshold_ratio=defaults.threshold_ratio,
        ),
        recovery=RecoveryPolicy(min_coverage=0.999, reissue_delay=150.0)
        if hardened
        else None,
    )
    try:
        return netfilter.run(engine), network
    except Exception:
        return None, network


def _robustness_cell(
    scale: ExperimentScale,
    seed: int,
    loss: float,
    churn_rate: float,
    hardened: bool,
) -> AblationRow:
    """One sweep cell as a finished row (the parallel worker).

    Both the sequential and the process-pool path run exactly this
    function, so ``--jobs`` can never change a row.
    """
    result, network = _run_cell(scale, seed, loss, churn_rate, hardened)
    label = (
        f"loss={loss:.0%} churn={churn_rate:g} "
        f"{'hardened' if hardened else 'baseline'}"
    )
    if result is None:
        return AblationRow(
            label,
            {
                "recall": 0.0,
                "coverage": 0.0,
                "complete": 0.0,
                "reissues": 0.0,
                "B/peer": 0.0,
            },
        )
    # Recall against the oracle over the population the answer claims to
    # describe: every currently-live peer's data.
    truth = oracle_frequent_items(network, result.threshold)
    return AblationRow(
        label,
        {
            "recall": _recall(result, truth),
            "coverage": result.coverage,
            "complete": 1.0 if result.complete else 0.0,
            "reissues": float(result.reissues),
            "B/peer": result.breakdown.total,
        },
    )


def run_robustness(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    loss_probabilities: tuple[float, ...] = (0.0, 0.02, 0.05),
    churn_rates: tuple[float, ...] = (0.0, 0.005),
    jobs: int = 1,
) -> list[AblationRow]:
    """The loss × churn × hardening sweep.

    ``churn_rates`` includes ``0.0`` — the control arm a zero-rate
    :class:`~repro.net.churn.ChurnConfig` exists for.
    """
    scale = scale or ExperimentScale.small()
    return run_trials(
        [
            TrialSpec(
                fn=_robustness_cell,
                kwargs=dict(
                    scale=scale,
                    seed=seed,
                    loss=loss,
                    churn_rate=churn_rate,
                    hardened=hardened,
                ),
                label=f"robustness loss={loss} churn={churn_rate} hardened={hardened}",
            )
            for loss in loss_probabilities
            for churn_rate in churn_rates
            for hardened in (False, True)
        ],
        jobs=jobs,
    )


def _recall(result: NetFilterResult, truth: LocalItemSet) -> float:
    ids = [int(item) for item in truth.ids]
    if not ids:
        return 1.0
    reported = set(int(item) for item in result.frequent.ids)
    return sum(1 for item in ids if item in reported) / len(ids)
