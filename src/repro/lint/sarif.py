"""SARIF 2.1.0 output for ``repro-lint --format=sarif``.

The minimum useful subset: one run, the registered rules as
``tool.driver.rules`` (so viewers can show summaries), one ``result``
per finding with a physical location.  GitHub code scanning ingests
this via ``github/codeql-action/upload-sarif`` and annotates PR diffs
with the findings.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import Rule

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> dict[str, Any]:
    """Findings as a SARIF ``log`` dict (caller json.dumps it)."""
    driver_rules = [
        {
            "id": rule_obj.id,
            "shortDescription": {"text": rule_obj.summary},
        }
        for rule_obj in rules
    ]
    # PARSE findings (unreadable/unparsable files) have no Rule class.
    if any(finding.rule == "PARSE" for finding in findings):
        driver_rules.append(
            {
                "id": "PARSE",
                "shortDescription": {"text": "file could not be read or parsed"},
            }
        )
    results = [
        {
            "ruleId": finding.rule,
            "level": "error" if finding.rule == "PARSE" else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; AST cols are 0-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": driver_rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
