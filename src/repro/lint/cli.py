"""Command-line interface: ``python -m repro.lint src tests``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism and protocol-invariant static analysis for the "
            "netFilter reproduction.  Exits 1 when findings remain."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_obj in all_rules():
            print(f"{rule_obj.id}  {rule_obj.summary}")
        return 0

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
