"""Command-line interface: ``python -m repro.lint src tests``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, known_rule_ids
from repro.lint.sarif import render_sarif


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism and protocol-invariant static analysis for the "
            "netFilter reproduction.  Exits 1 when findings remain."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse every file fresh instead of using the on-disk cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule_obj in rules:
            print(f"{rule_obj.id}  {rule_obj.summary}")
        return 0

    disabled = {
        rule_id.strip()
        for chunk in args.disable
        for rule_id in chunk.split(",")
        if rule_id.strip()
    }
    unknown = disabled - set(known_rule_ids())
    if unknown:
        print(
            f"repro-lint: unknown rule id(s) in --disable: {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2
    if disabled:
        rules = [rule_obj for rule_obj in rules if rule_obj.id not in disabled]

    cache = None if args.no_cache else LintCache(args.cache_dir)
    findings = lint_paths(args.paths, rules=rules, cache=cache)
    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    elif args.format == "sarif":
        print(json.dumps(render_sarif(findings, rules), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
