"""Cross-file facts gathered before rules run.

Some determinism properties are not visible inside a single module: the
hierarchy's ``downstream`` set is *annotated* in ``repro.hierarchy.roles``
but *iterated* in ``repro.hierarchy.maintenance``.  The engine therefore
makes a first pass over every linted file and records

* attribute names declared with a ``set``/``frozenset`` annotation
  (class bodies and ``self.x: set[...]`` assignments), and
* function/method names whose return annotation is a set,

so the DET003 rule can recognise ``for child in state.downstream`` or
``for c in hierarchy.children_of(p)`` as unordered iteration wherever
they occur.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


@dataclass
class ProjectFacts:
    """What the first pass learned about the linted tree."""

    #: Attribute names annotated as set/frozenset anywhere in the tree.
    set_attributes: set[str] = field(default_factory=set)
    #: Function/method names annotated to return a set/frozenset.
    set_returning_functions: set[str] = field(default_factory=set)

    def merge_from(self, tree: ast.Module) -> None:
        """Fold one parsed module into the fact tables."""
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if annotation_is_set(node.annotation) or _value_is_set(node.value):
                    self._record_target(node.target, node)
            elif isinstance(node, ast.Assign):
                # Unannotated stores still declare a set when the value
                # is one: `self.x = set()`, a set literal/comprehension,
                # or a dataclass `field(default_factory=set)`.
                if _value_is_set(node.value):
                    for target in node.targets:
                        self._record_target(target, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and annotation_is_set(node.returns):
                    self.set_returning_functions.add(node.name)

    def _record_target(
        self, target: ast.expr, node: ast.Assign | ast.AnnAssign
    ) -> None:
        if isinstance(target, ast.Attribute):
            # self.x: set[...] = ... / self.x = set()
            self.set_attributes.add(target.attr)
        elif isinstance(target, ast.Name) and isinstance(
            getattr(node, "parent", None), (ast.ClassDef, type(None))
        ):
            # Class-body (incl. dataclass field) declarations only;
            # function locals are tracked per-scope by DET003.
            self.set_attributes.add(target.id)


def attach_parents(tree: ast.Module) -> None:
    """Annotate every node with a ``parent`` backlink (used by facts
    gathering and by rules that need the consuming context)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def _value_is_set(value: ast.expr | None) -> bool:
    """Whether an assigned value is unmistakably a set: a set literal or
    comprehension, a ``set()``/``frozenset()`` call, or a dataclass
    ``field(default_factory=set)``."""
    if value is None:
        return False
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name in ("set", "frozenset"):
        return True
    if name == "field":
        for keyword in value.keywords:
            if keyword.arg != "default_factory":
                continue
            factory = keyword.value
            factory_name = (
                factory.id
                if isinstance(factory, ast.Name)
                else factory.attr if isinstance(factory, ast.Attribute) else None
            )
            if factory_name in ("set", "frozenset"):
                return True
    return False


def annotation_is_set(annotation: ast.expr) -> bool:
    """Whether an annotation expression denotes a set type.

    Handles ``set``, ``set[int]``, ``frozenset[...]``, ``typing.Set[...]``
    and string annotations containing the same.
    """
    if isinstance(annotation, ast.Subscript):
        return annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_TYPE_NAMES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_TYPE_NAMES
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] in _SET_TYPE_NAMES
    return False
