"""The message-flow graph: send sites ↔ payload classes ↔ handlers.

Built from :class:`~repro.lint.model.FileSummary` records, the graph
links every payload-construction/send site to the payload class names it
can denote and every ``register_handler(PayloadType, ...)`` site to the
types it registers.  PROTO003 reads dead letters (sent, handled nowhere)
and dead handlers (registered, never sent) straight off it; PROTO004
joins send sites against payload declarations through it.

Matching is *name-lenient*: ``tagged(Base, tag)`` subclasses collapse
onto their base name during resolution, so a payload counts as handled
when a handler is registered for the name itself or a payload relative
(ancestor/descendant).  Sites whose payload expression resolution failed
are kept in ``unresolved_sends``/``unresolved_handlers``; the rules use
those to withdraw the completeness claims that would otherwise become
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.model import SiteRefs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.model import ProtocolModel


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts


@dataclass
class MessageFlowGraph:
    """Payload-name-keyed send and handler site tables."""

    sends: dict[str, list[SiteRefs]] = field(default_factory=dict)
    handlers: dict[str, list[SiteRefs]] = field(default_factory=dict)
    unresolved_sends: list[SiteRefs] = field(default_factory=list)
    unresolved_handlers: list[SiteRefs] = field(default_factory=list)

    @classmethod
    def build(cls, model: "ProtocolModel") -> "MessageFlowGraph":
        graph = cls()
        for summary in model.summaries.values():
            for site in summary.send_sites:
                cls._file_site(model, site, graph.sends, graph.unresolved_sends)
            for site in summary.handler_sites:
                cls._file_site(model, site, graph.handlers, graph.unresolved_handlers)
        return graph

    @staticmethod
    def _file_site(
        model: "ProtocolModel",
        site: SiteRefs,
        table: dict[str, list[SiteRefs]],
        unresolved: list[SiteRefs],
    ) -> None:
        """Resolve one site's refs against the global payload tables."""
        names: set[str] = set()
        unknown = not site.resolved
        for kind, value in site.refs:
            if kind == "class":
                if value in model.payload_classes:
                    names.add(value)
                elif value == "Payload" or value not in model.classes:
                    # The root class (generic forwarding — anything can
                    # flow through) or a class the linted tree never
                    # declares (could be a payload defined outside it):
                    # either way, don't guess.
                    unknown = True
                # else: a known non-payload class; not a protocol send.
            else:  # attr
                resolved = model.payload_attrs.get(value)
                if resolved:
                    names.update(resolved)
                else:
                    unknown = True
        for name in sorted(names):
            table.setdefault(name, []).append(site)
        if unknown and not names:
            unresolved.append(site)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sent_names(self) -> frozenset[str]:
        return frozenset(self.sends)

    def handled_names(self) -> frozenset[str]:
        return frozenset(self.handlers)

    def has_unresolved_sends(self, include_tests: bool = False) -> bool:
        return any(
            include_tests or not _is_test_path(site.path)
            for site in self.unresolved_sends
        )

    def has_unresolved_handlers(self, include_tests: bool = True) -> bool:
        return any(
            include_tests or not _is_test_path(site.path)
            for site in self.unresolved_handlers
        )

    def dead_letters(self, model: "ProtocolModel") -> dict[str, list[SiteRefs]]:
        """Payloads that are sent but that no handler (for the name or a
        payload relative) could ever receive."""
        dead: dict[str, list[SiteRefs]] = {}
        for name, sites in self.sends.items():
            if name not in model.payload_classes:
                continue
            related = model.related_payloads(name)
            if related & self.handled_names():
                continue
            dead[name] = list(sites)
        return dead

    def dead_handlers(self, model: "ProtocolModel") -> dict[str, list[SiteRefs]]:
        """Registered payload types that no send site ever constructs."""
        dead: dict[str, list[SiteRefs]] = {}
        for name, sites in self.handlers.items():
            if name not in model.payload_classes:
                continue
            related = model.related_payloads(name)
            if related & self.sent_names():
                continue
            dead[name] = list(sites)
        return dead
