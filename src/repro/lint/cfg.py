"""Per-function control-flow graphs for typestate rules.

The CFG is deliberately small: one statement per basic block, explicit
edges for branches, loops, ``try``/``except``/``finally`` and the abrupt
exits (``return``/``raise``/``break``/``continue``), and a single
virtual exit block that every way out of the function reaches.  That is
enough for the may-analyses the lint rules run (OBS002's span
typestate), and one-statement blocks keep exception edges honest: an
exception can leave a ``try`` body from *any* statement in it, so each
statement needs its own edge to the handlers.

Two modelling choices worth knowing about:

* **Finally clones.**  A ``finally`` suite runs on the normal path, on
  every ``return``/``break``/``continue`` that unwinds through it, and
  on the uncaught-exception path — and the *continuation* differs each
  time.  Sharing one copy of the suite would merge those continuations
  and invent paths that cannot happen (a ``return`` flowing back into
  the loop, say).  The builder therefore instantiates the ``finally``
  body once per continuation.
* **Branch refinements.**  Edges out of ``if``/``while`` tests carry the
  test expression and the branch taken, so a dataflow client can refine
  its state (the false edge of ``if sid:`` proves ``sid`` is falsy).

Exceptions are only modelled *inside* ``try`` statements; adding an
exceptional edge from every statement to the function exit would drown
the analyses in impossible paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Edge:
    """One control-flow edge, optionally labelled with the branch that
    was taken (``test``/``branch``) so analyses can refine state."""

    target: int
    test: ast.expr | None = None
    branch: bool | None = None


@dataclass
class Block:
    """One basic block: a single statement (or a pseudo-statement such
    as the ``ast.If`` node standing in for its test) plus out-edges."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[Edge] = field(default_factory=list)


#: A frontier entry: a block id plus the refinement the edge *leaving*
#: it towards the next block should carry.
_Frontier = list[tuple[int, "tuple[ast.expr, bool] | None"]]


@dataclass
class _LoopFrame:
    head: int
    breaks: _Frontier = field(default_factory=list)


@dataclass
class _TryFrame:
    finalbody: list[ast.stmt] | None
    protects: bool  # whether raisers should register (handlers or finally exist)
    raisers: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.exit: int = self._new_block().id  # id 0: virtual exit
        self.entry: int = self._new_block().id  # id 1: virtual entry

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_body(cls, body: Sequence[ast.stmt]) -> "CFG":
        """Build the CFG of a statement list (a function body or a
        module's top level)."""
        cfg = cls()
        builder = _Builder(cfg)
        frontier = builder.stmts(list(body), [(cfg.entry, None)], [])
        builder.join(frontier, cfg.exit)  # falling off the end returns
        return cfg

    @classmethod
    def from_function(cls, func: ast.FunctionDef | ast.AsyncFunctionDef) -> "CFG":
        return cls.from_body(func.body)

    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def preds(self, block_id: int) -> list[int]:
        return [
            b.id for b in self.blocks.values() if any(e.target == block_id for e in b.succs)
        ]


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def join(self, frontier: _Frontier, target: int) -> None:
        for block_id, refinement in frontier:
            test, branch = refinement if refinement is not None else (None, None)
            self.cfg.blocks[block_id].succs.append(
                Edge(target=target, test=test, branch=branch)
            )

    def _leaf(
        self, stmt: ast.stmt, frontier: _Frontier, frames: list[object]
    ) -> Block:
        """A block holding one statement, wired from the frontier and
        registered as a potential raiser with the innermost try."""
        block = self.cfg._new_block()
        block.stmts.append(stmt)
        self.join(frontier, block.id)
        for frame in reversed(frames):
            if isinstance(frame, _TryFrame) and frame.protects:
                frame.raisers.append(block.id)
                break
        return block

    def _route_exit(self, frontier: _Frontier, frames: list[object]) -> None:
        """Wire an abrupt exit (return/uncaught raise) to the function
        exit, running every enclosing ``finally`` suite on the way out."""
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if isinstance(frame, _TryFrame) and frame.finalbody:
                frontier = self.stmts(frame.finalbody, frontier, frames[:index])
        self.join(frontier, self.cfg.exit)

    def _unwind_to_loop(
        self, frontier: _Frontier, frames: list[object]
    ) -> tuple[_Frontier, _LoopFrame | None]:
        """Run finallys between a break/continue and its loop."""
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if isinstance(frame, _LoopFrame):
                return frontier, frame
            if isinstance(frame, _TryFrame) and frame.finalbody:
                frontier = self.stmts(frame.finalbody, frontier, frames[:index])
        return frontier, None

    def stmts(
        self, body: list[ast.stmt], frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        for stmt in body:
            frontier = self._stmt(stmt, frontier, frames)
        return frontier

    def _stmt(
        self, stmt: ast.stmt, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        if isinstance(stmt, ast.Return):
            block = self._leaf(stmt, frontier, frames)
            self._route_exit([(block.id, None)], frames)
            return []
        if isinstance(stmt, ast.Raise):
            # The leaf registration already wires this block to any
            # enclosing handlers; the uncaught continuation unwinds out.
            block = self._leaf(stmt, frontier, frames)
            self._route_exit([(block.id, None)], frames)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            block = self._leaf(stmt, frontier, frames)
            unwound, loop = self._unwind_to_loop([(block.id, None)], frames)
            if loop is not None:
                if isinstance(stmt, ast.Break):
                    loop.breaks.extend(unwound)
                else:
                    self.join(unwound, loop.head)
            else:  # break/continue outside a loop: syntactically invalid
                self.join(unwound, self.cfg.exit)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, frames)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier, frames)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            block = self._leaf(stmt, frontier, frames)
            return self.stmts(stmt.body, [(block.id, None)], frames)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, frames)
        # Simple statements — and nested function/class definitions,
        # which typestate analyses treat as opaque (each function body
        # gets its own CFG).
        block = self._leaf(stmt, frontier, frames)
        return [(block.id, None)]

    @staticmethod
    def _const_truth(test: ast.expr) -> bool | None:
        """The truth value of a constant test, or None if dynamic."""
        if isinstance(test, ast.Constant):
            return bool(test.value)
        return None

    def _if(
        self, stmt: ast.If, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        head = self._leaf(stmt, frontier, frames)
        truth = self._const_truth(stmt.test)
        out: _Frontier = []
        if truth is not False:
            out.extend(
                self.stmts(stmt.body, [(head.id, (stmt.test, True))], frames)
            )
        if truth is not True:
            false_edge: _Frontier = [(head.id, (stmt.test, False))]
            if stmt.orelse:
                out.extend(self.stmts(stmt.orelse, false_edge, frames))
            else:
                out.extend(false_edge)
        return out

    def _while(
        self, stmt: ast.While, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        head = self._leaf(stmt, frontier, frames)
        truth = self._const_truth(stmt.test)
        loop = _LoopFrame(head=head.id)
        if truth is not False:
            body_out = self.stmts(
                stmt.body, [(head.id, (stmt.test, True))], frames + [loop]
            )
            self.join(body_out, head.id)  # back edge
        out: _Frontier = []
        if truth is not True:
            false_edge: _Frontier = [(head.id, (stmt.test, False))]
            if stmt.orelse:
                out.extend(self.stmts(stmt.orelse, false_edge, frames))
            else:
                out.extend(false_edge)
        out.extend(loop.breaks)
        return out

    def _for(
        self, stmt: ast.For | ast.AsyncFor, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        head = self._leaf(stmt, frontier, frames)
        loop = _LoopFrame(head=head.id)
        body_out = self.stmts(stmt.body, [(head.id, None)], frames + [loop])
        self.join(body_out, head.id)
        out: _Frontier = []
        exhausted: _Frontier = [(head.id, None)]
        if stmt.orelse:
            out.extend(self.stmts(stmt.orelse, exhausted, frames))
        else:
            out.extend(exhausted)
        out.extend(loop.breaks)
        return out

    def _try(
        self, stmt: ast.Try, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        frame = _TryFrame(
            finalbody=stmt.finalbody or None,
            protects=bool(stmt.handlers or stmt.finalbody),
        )
        body_out = self.stmts(stmt.body, frontier, frames + [frame])
        if stmt.orelse:  # runs unprotected by this try's handlers
            body_out = self.stmts(stmt.orelse, body_out, frames)
        handler_out: _Frontier = []
        for handler in stmt.handlers:
            entry = self.cfg._new_block()
            entry.stmts.append(handler)  # pseudo-statement for anchoring
            for raiser in frame.raisers:
                self.join([(raiser, None)], entry.id)
            # Exceptions escaping the handler body belong to outer frames.
            for outer in reversed(frames):
                if isinstance(outer, _TryFrame) and outer.protects:
                    outer.raisers.append(entry.id)
                    break
            handler_out.extend(self.stmts(handler.body, [(entry.id, None)], frames))
        if stmt.finalbody:
            normal = self.stmts(
                stmt.finalbody, body_out + handler_out, frames
            )
            if frame.raisers:
                # Uncaught-exception continuation: its own finally clone,
                # then unwind out of the function.
                abrupt = self.stmts(
                    stmt.finalbody,
                    [(raiser, None) for raiser in frame.raisers],
                    frames,
                )
                self._route_exit(abrupt, frames)
            return normal
        return body_out + handler_out

    def _match(
        self, stmt: ast.Match, frontier: _Frontier, frames: list[object]
    ) -> _Frontier:
        head = self._leaf(stmt, frontier, frames)
        out: _Frontier = [(head.id, None)]  # no case matched
        for case in stmt.cases:
            out.extend(self.stmts(case.body, [(head.id, None)], frames))
        return out
