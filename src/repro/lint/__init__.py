"""Determinism & protocol-invariant static analysis.

Run as ``python -m repro.lint src tests`` (or the ``repro-lint``
console script).  Rules are documented in ``docs/LINT_RULES.md``;
suppress a single finding with ``# repro-lint: disable=RULEID``.

Per-file rules subclass :class:`Rule`; whole-program rules subclass
:class:`ProjectRule` and run once over the :class:`ProtocolModel` the
engine assembles from every linted file (see ``DESIGN.md``).
"""

from repro.lint.cache import LintCache
from repro.lint.cfg import CFG
from repro.lint.engine import gather_paths, lint_paths, lint_source
from repro.lint.facts import ProjectFacts, attach_parents
from repro.lint.findings import Finding
from repro.lint.graph import MessageFlowGraph
from repro.lint.model import FileSummary, ProtocolModel, extract_summary
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_rules,
    known_rule_ids,
    rule,
)
from repro.lint.sarif import render_sarif
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "CFG",
    "FileSummary",
    "Finding",
    "LintCache",
    "MessageFlowGraph",
    "ProjectFacts",
    "ProjectRule",
    "ProtocolModel",
    "Rule",
    "Suppressions",
    "all_rules",
    "attach_parents",
    "extract_summary",
    "gather_paths",
    "known_rule_ids",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "render_sarif",
    "rule",
]
