"""Determinism & protocol-invariant static analysis.

Run as ``python -m repro.lint src tests`` (or the ``repro-lint``
console script).  Rules are documented in ``docs/LINT_RULES.md``;
suppress a single finding with ``# repro-lint: disable=RULEID``.
"""

from repro.lint.engine import gather_paths, lint_paths, lint_source
from repro.lint.facts import ProjectFacts, attach_parents
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, known_rule_ids, rule
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "Finding",
    "ProjectFacts",
    "Rule",
    "Suppressions",
    "all_rules",
    "attach_parents",
    "gather_paths",
    "known_rule_ids",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "rule",
]
