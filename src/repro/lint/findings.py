"""The linter's result type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        """Machine-readable form for ``--format=json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
