"""The rule registry.

A rule is a class with an ``id``, a one-line ``summary``, an optional
path predicate, and a ``check`` generator over one module's AST.  Rules
self-register via the :func:`rule` decorator, so adding a rule in a
future PR is: write the class in one module under ``repro.lint.rules``
(or any module imported from there), decorate it, done — the engine,
CLI, ``--list-rules`` output and suppression machinery pick it up
automatically.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, TypeVar

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.model import ProtocolModel


class Rule:
    """Base class for lint rules.

    Attributes
    ----------
    id:
        Stable identifier (``DET001``, ...) used in output and in
        ``# repro-lint: disable=...`` suppressions.
    summary:
        One-line description shown by ``--list-rules``.
    """

    id: str = ""
    summary: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the given file at all.

        The default is everywhere.  Rules override this to scope
        themselves — e.g. the wall-clock rule exempts ``telemetry``
        (wall time *is* its subject) and the trace-kind rule exempts
        tests (tests emit ad-hoc kinds on purpose).
        """
        return True

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A whole-program rule: runs once over the protocol-flow model
    instead of per file.

    The engine builds one :class:`~repro.lint.model.ProtocolModel` from
    every linted file (tests included — a handler registered in a test
    still counts as a handler) and calls :meth:`check_project` once.
    Each finding is then filtered through :meth:`Rule.applies_to` and
    the suppression directives of the file it points at, exactly like a
    per-file finding.
    """

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        """Project rules do not run per file."""
        return iter(())

    def check_project(self, model: "ProtocolModel") -> Iterator[Finding]:
        """Yield findings over the whole-program model."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding from summary-record coordinates (project
        rules work from picklable summaries, not live AST nodes)."""
        return Finding(path=path, line=line, col=col, rule=self.id, message=message)


_RULES: dict[str, type[Rule]] = {}

R = TypeVar("R", bound=type[Rule])


def rule(cls: R) -> R:
    """Class decorator: register a rule under its ``id``."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    existing = _RULES.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule id {cls.id!r} is already registered")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    # Import for the side effect of registering the built-in rule set.
    import repro.lint.rules  # noqa: F401

    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def known_rule_ids() -> frozenset[str]:
    """Ids of every registered rule (for suppression validation)."""
    import repro.lint.rules  # noqa: F401

    return frozenset(_RULES)
