"""Observability rules: OBS001 (span opened without a guaranteed close).

A causal span (:mod:`repro.telemetry.spans`) that is opened but never
closed survives to the shutdown sweep as status ``unclosed`` — the trace
stays well-formed, but the span's duration and causal links are lost and
the leak points at a protocol path that forgot its bookkeeping.  The
rule enforces the two patterns that guarantee closure:

* **deferred close** — the span id is stored on an object
  (``state.span = spans.open(...)``) whose lifecycle closes it later
  (a reply path, the owner-peer crash sweep);
* **scoped close** — the opening function contains a ``finally`` block
  that calls ``spans.close(...)`` (the ``Telemetry.span`` context
  manager shape).

Anything else — a discarded open, a local variable with no ``finally``
close in sight — is flagged.  Call sites that genuinely hand the id
through a side channel (the transport carries it in batch entries)
suppress with ``# repro-lint: disable=OBS001`` and a comment saying
where the close happens.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule
from repro.lint.rules.perf import _dotted_name


def _is_spans_call(node: ast.Call, method: str) -> bool:
    """``<owner>.{method}(...)`` where the owner path names a span
    tracker (a segment containing ``spans``, e.g. ``spans``, ``_spans``,
    ``telemetry.spans``)."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if len(parts) < 2 or parts[-1] != method:
        return False
    return any("spans" in part for part in parts[:-1])


def _assigns_to_attribute(node: ast.Call) -> bool:
    """``obj.attr = spans.open(...)`` — the deferred-close pattern."""
    parent = getattr(node, "parent", None)
    if isinstance(parent, ast.Assign):
        return all(isinstance(target, ast.Attribute) for target in parent.targets)
    if isinstance(parent, ast.AnnAssign):
        return isinstance(parent.target, ast.Attribute)
    return False


def _enclosing_function(node: ast.AST) -> ast.AST | None:
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "parent", None)
    return None


def _has_finally_close(scope: ast.AST) -> bool:
    """Whether any ``finally`` block in ``scope`` closes a span."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for final_stmt in node.finalbody:
            for sub in ast.walk(final_stmt):
                if isinstance(sub, ast.Call) and _is_spans_call(sub, "close"):
                    return True
    return False


@rule
class UnclosedSpanRule(Rule):
    """OBS001: a span opened without a guaranteed close on all paths.

    ``spans.open(...)`` must either store its id on an object attribute
    (closed later by the owner's lifecycle or the crash sweep) or sit in
    a function that closes a span in a ``finally`` block.  A discarded
    or loosely-held span id leaks to the shutdown sweep as ``unclosed``.
    """

    id = "OBS001"
    summary = "spans.open() without an attribute store or a finally-block close"

    def applies_to(self, path: str) -> bool:
        # Library discipline; tests open ad-hoc spans to assert on sweeps.
        parts = path.replace("\\", "/").split("/")
        return "tests" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not _is_spans_call(node, "open"):
                continue
            if _assigns_to_attribute(node):
                continue
            scope = _enclosing_function(node) or tree
            if _has_finally_close(scope):
                continue
            yield self.finding(
                path,
                node,
                "span opened without a guaranteed close: store the id on an "
                "object attribute (deferred close) or close it in a `finally` "
                "block, or it leaks to the shutdown sweep as `unclosed`",
            )
