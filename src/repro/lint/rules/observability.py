"""Observability rules: OBS002 (CFG-based span typestate).

A causal span (:mod:`repro.telemetry.spans`) that is opened but never
closed survives to the shutdown sweep as status ``unclosed`` — the trace
stays well-formed, but the span's duration and causal links are lost and
the leak points at a protocol path that forgot its bookkeeping.

OBS002 supersedes the old syntactic OBS001 check ("is there *a*
``finally`` with *a* close somewhere in this function?") with a path
analysis over the function's control-flow graph
(:mod:`repro.lint.cfg`).  For every ``spans.open(...)`` bound to a
local, the rule tracks the open obligation along every path — through
branches, loops, ``try``/``except``/``finally`` (including the abrupt
return/raise continuations) — and reports when some path reaches the
function exit with the span still open.  The analysis understands:

* **kill by close** — ``spans.close(sid)`` discharges ``sid``;
* **deferred close** — ``state.span = spans.open(...)`` stores the id
  on an attribute; a later lifecycle event owns the close;
* **escape** — the id passed to any call, stored into a container, or
  returned is handed off; whoever received it owns the close (the
  transport's wire span rides in a batch entry this way);
* **branch refinement** — on the false edge of ``if sid:`` the id is
  provably falsy (no span was opened), so the obligation dies with it.

A ``spans.open(...)`` whose result is discarded outright is reported
immediately: nothing can ever close it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.cfg import CFG, Block, Edge
from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule
from repro.lint.rules.perf import _dotted_name

_State = frozenset[tuple[str, int]]


def _is_spans_call(node: ast.Call, method: str) -> bool:
    """``<owner>.{method}(...)`` where the owner path names a span
    tracker (a segment containing ``spans``, e.g. ``spans``, ``_spans``,
    ``telemetry.spans``)."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if len(parts) < 2 or parts[-1] != method:
        return False
    return any("spans" in part for part in parts[:-1])


def _names_in(expr: ast.expr, skip: set[int]) -> set[str]:
    """Name loads in an expression, minus close-call arguments."""
    names: set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in skip
        ):
            names.add(node.id)
    return names


def _names_used_in_test(test: ast.expr, skip: set[int]) -> set[str]:
    """Names a branch test *consumes* (escapes), excluding the bare-name
    shapes the edge refinement understands (``if sid:``, ``if not sid:``,
    the left side of ``sid == 0``)."""
    if isinstance(test, ast.Name):
        return set()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _names_used_in_test(test.operand, skip)
    if isinstance(test, ast.Compare) and isinstance(test.left, ast.Name):
        names: set[str] = set()
        for comparator in test.comparators:
            names |= _names_in(comparator, skip)
        return names
    if isinstance(test, ast.BoolOp):
        names = set()
        for value in test.values:
            names |= _names_used_in_test(value, skip)
        return names
    return _names_in(test, skip)


def _falsy_names(test: ast.expr, branch: bool) -> set[str]:
    """Variables proven falsy when ``test`` evaluated to ``branch``."""
    if isinstance(test, ast.Name):
        return set() if branch else {test.id}
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _falsy_names(test.operand, not branch)
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and not test.comparators[0].value  # None, 0, False, ""
    ):
        op = test.ops[0]
        if isinstance(op, (ast.Is, ast.Eq)) and branch:
            return {test.left.id}
        if isinstance(op, (ast.IsNot, ast.NotEq)) and not branch:
            return {test.left.id}
        return set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or) and not branch:
        names: set[str] = set()
        for value in test.values:
            names |= _falsy_names(value, False)
        return names
    return set()


def _bound_names(stmt: ast.stmt) -> set[str]:
    """Names (re)bound by a statement — rebinding kills an obligation."""
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        ]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _relevant_exprs(stmt: ast.stmt) -> tuple[list[ast.expr], bool]:
    """The expressions a block's statement actually evaluates, and
    whether they are a branch test (test-mode name handling)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test], True
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter], False
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items], False
    if isinstance(stmt, ast.Match):
        return [stmt.subject], False
    if isinstance(stmt, ast.ExceptHandler):
        return [], False
    exprs = [
        child for child in ast.iter_child_nodes(stmt) if isinstance(child, ast.expr)
    ]
    return exprs, False


@rule
class SpanTypestateRule(Rule):
    """OBS002: a path can exit the function with a span still open.

    Tracks every locally-bound ``spans.open(...)`` id through the
    function's CFG; reports opens that some path carries to the exit
    unclosed, and opens whose id is discarded on the spot.
    """

    id = "OBS002"
    summary = "CFG typestate: a span can reach function exit still open"

    def applies_to(self, path: str) -> bool:
        # Library discipline; tests open ad-hoc spans to assert on sweeps.
        parts = path.replace("\\", "/").split("/")
        return "tests" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        yield from self._check_body(tree.body, path)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_body(node.body, path)

    # ------------------------------------------------------------------
    def _check_body(
        self, body: list[ast.stmt], path: str
    ) -> Iterator[Finding]:
        cfg = CFG.from_body(body)
        opens: dict[int, ast.Call] = {}
        discarded: dict[int, ast.Call] = {}
        in_states: dict[int, _State] = {cfg.entry: frozenset()}
        worklist: list[int] = [cfg.entry]
        while worklist:
            block_id = worklist.pop()
            block = cfg.blocks[block_id]
            out_state = self._transfer_block(block, in_states[block_id], opens, discarded)
            for edge in block.succs:
                refined = self._refine(out_state, edge)
                previous = in_states.get(edge.target)
                merged = refined if previous is None else previous | refined
                if previous is None or merged != previous:
                    in_states[edge.target] = merged
                    worklist.append(edge.target)
        leaked: dict[int, ast.Call] = {}
        for _var, site in in_states.get(cfg.exit, frozenset()):
            leaked[site] = opens[site]
        for site in sorted(discarded):
            yield self.finding(
                path,
                discarded[site],
                "span id discarded: the result of spans.open(...) is never "
                "bound, so no code can ever close this span; it leaks to "
                "the shutdown sweep as `unclosed`",
            )
        for site in sorted(leaked):
            if site in discarded:
                continue
            yield self.finding(
                path,
                leaked[site],
                "span can leak: a path from this spans.open(...) reaches "
                "the function exit without a spans.close(...) — close it "
                "on every path (e.g. in a `finally`), store the id on an "
                "object attribute for a deferred close, or hand it off "
                "explicitly",
            )

    def _transfer_block(
        self,
        block: Block,
        state: _State,
        opens: dict[int, ast.Call],
        discarded: dict[int, ast.Call],
    ) -> _State:
        for stmt in block.stmts:
            state = self._transfer(stmt, state, opens, discarded)
        return state

    def _transfer(
        self,
        stmt: ast.stmt,
        state: _State,
        opens: dict[int, ast.Call],
        discarded: dict[int, ast.Call],
    ) -> _State:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested scopes are analysed separately
        # Binding forms first: `sid = spans.open(...)` opens an
        # obligation, `obj.attr = spans.open(...)` is a deferred close.
        value = getattr(stmt, "value", None)
        if (
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(value, ast.Call)
            and _is_spans_call(value, "open")
        ):
            opens[id(value)] = value
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                state = frozenset(pair for pair in state if pair[0] != name)
                return state | {(name, id(value))}
            return state  # attribute (deferred close) or tuple (escape)
        exprs, test_mode = _relevant_exprs(stmt)
        # Opens appearing anywhere else: discarded if they *are* the
        # statement, otherwise escaping into a call/container/return.
        close_arg_ids: set[int] = set()
        closed_names: set[str] = set()
        for expr in exprs:
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                if _is_spans_call(node, "open"):
                    opens[id(node)] = node
                    if isinstance(stmt, ast.Expr) and stmt.value is node:
                        discarded[id(node)] = node
                elif _is_spans_call(node, "close") and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name):
                        closed_names.add(first.id)
                        close_arg_ids.add(id(first))
        used: set[str] = set()
        for expr in exprs:
            if test_mode:
                used |= _names_used_in_test(expr, close_arg_ids)
            else:
                used |= _names_in(expr, close_arg_ids)
        killed = closed_names | used | _bound_names(stmt)
        if not killed:
            return state
        return frozenset(pair for pair in state if pair[0] not in killed)

    @staticmethod
    def _refine(state: _State, edge: Edge) -> _State:
        if edge.test is None or edge.branch is None:
            return state
        falsy = _falsy_names(edge.test, edge.branch)
        if not falsy:
            return state
        return frozenset(pair for pair in state if pair[0] not in falsy)
