"""API-hygiene rules: API001 (mutable defaults, float time equality)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

#: Names whose values are simulated-time floats; comparing them with
#: ``==`` breaks as soon as latency models produce accumulated sums.
_TIME_NAMES = frozenset(
    {
        "now",
        "sent_at",
        "delivered_at",
        "sim_elapsed",
        "wall_elapsed",
        "elapsed_time",
        "started_at",
        "deadline",
    }
)


def _in_tests(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts and "fixtures" not in parts


def _names_time(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _TIME_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_NAMES
    return False


@rule
class ApiHygieneRule(Rule):
    """API001: mutable default arguments; float equality on simulated time.

    A mutable default (``def f(x=[])``) is shared across every call — in
    a simulator that state leaks across *trials*, which is exactly the
    cross-run contamination the replay gate exists to rule out.  Exact
    ``==`` on simulated-time floats works until a latency model returns
    an accumulated sum; comparisons on time should be ordering
    (``<=``/``>=``) or explicit tolerance.
    """

    id = "API001"
    summary = "mutable default argument / float equality on simulated time"

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(path, node)
            elif isinstance(node, ast.Compare) and not _in_tests(path):
                yield from self._check_time_equality(path, node)

    def _check_defaults(
        self, path: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if self._is_mutable_literal(default):
                yield self.finding(
                    path,
                    default,
                    f"mutable default argument in {node.name}(); defaults are "
                    "shared across calls — use None and construct inside",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set")
            and not node.args
            and not node.keywords
        )

    def _check_time_equality(
        self, path: str, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # `x.now == 0` style sentinel checks against int literals are
            # fine; flag comparisons where a time name meets a non-literal.
            time_side = _names_time(left) or _names_time(right)
            both_literal = isinstance(left, ast.Constant) or isinstance(
                right, ast.Constant
            )
            if time_side and not both_literal:
                yield self.finding(
                    path,
                    node,
                    "exact float equality on simulated time; use ordering "
                    "comparisons or an explicit tolerance",
                )
