"""Built-in rule set.

Importing this package registers every built-in rule with the registry.
New rules go in a module here (or anywhere, as long as it is imported
from this ``__init__``) and register themselves with ``@rule``.
"""

from repro.lint.rules import api as api  # noqa: F401
from repro.lint.rules import determinism as determinism  # noqa: F401
from repro.lint.rules import flow as flow  # noqa: F401
from repro.lint.rules import observability as observability  # noqa: F401
from repro.lint.rules import perf as perf  # noqa: F401
from repro.lint.rules import protocol as protocol  # noqa: F401
