"""Whole-program protocol-flow rules: PROTO003, PROTO004, DET004.

These run once over the :class:`~repro.lint.model.ProtocolModel` the
engine assembles from every linted file, instead of per file — the
invariants they check (every sent payload has a handler, every byte is
priced by its declared category, every protocol module draws from its
own named RNG stream) span modules by construction.

All three degrade gracefully rather than guess: a payload expression the
resolver could not pin down withdraws the completeness claim it would
have fed (PROTO003 stops reporting dead letters while an unresolved
handler registration exists anywhere, and dead handlers while an
unresolved send does), because a finding built on "I could not see it,
therefore it does not exist" is how whole-program linters train people
to suppress them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.model import ProtocolModel

try:  # Runtime protocol metadata; absent in a bare checkout of lint only.
    from repro.net.codec import TRANSPORT_CONSUMED_PAYLOADS
except ImportError:  # pragma: no cover - degrade to no exemptions
    TRANSPORT_CONSUMED_PAYLOADS = frozenset()

#: Packages whose modules make protocol decisions; DET004's stream and
#: taint findings are scoped to these (experiments deliberately share
#: the "topology"/"workload" streams across trials, and sim plumbing is
#: not a protocol).
PROTOCOL_PACKAGES = frozenset({"net", "hierarchy", "aggregation", "core", "faults"})


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts and "fixtures" not in parts


def _is_protocol_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" not in parts and bool(PROTOCOL_PACKAGES.intersection(parts))


class _NonTestProjectRule(ProjectRule):
    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)


@rule
class DeadLetterRule(_NonTestProjectRule):
    """PROTO003: dead-letter payloads and dead handlers.

    A payload that is sent but registered with no handler anywhere in
    the linted tree is a dead letter — the transport prices and carries
    it, delivery silently drops it.  A handler registered for a payload
    no send site ever constructs is dead code wearing a protocol
    surface.  Transport-internal payloads (consumed by the transport
    itself, never dispatched) are declared in
    ``repro.net.codec.TRANSPORT_CONSUMED_PAYLOADS`` and exempt.
    """

    id = "PROTO003"
    summary = "message-flow graph: payload sent but handled nowhere (or registered but never sent)"

    def check_project(self, model: "ProtocolModel") -> Iterator[Finding]:
        flow = model.flow
        if not flow.has_unresolved_handlers():
            for name, sites in sorted(flow.dead_letters(model).items()):
                if name in TRANSPORT_CONSUMED_PAYLOADS:
                    continue
                for site in sites:
                    yield self.finding_at(
                        site.path,
                        site.line,
                        site.col,
                        f"dead-letter payload: {name} is sent here but no "
                        f"register_handler({name}, ...) exists anywhere in "
                        "the linted tree — delivery prices the bytes, then "
                        "silently drops the message unhandled",
                    )
        if not flow.has_unresolved_sends(include_tests=True):
            for name, sites in sorted(flow.dead_handlers(model).items()):
                if name in TRANSPORT_CONSUMED_PAYLOADS:
                    continue
                for site in sites:
                    yield self.finding_at(
                        site.path,
                        site.line,
                        site.col,
                        f"dead handler: {name} is registered here but no "
                        "send site in the linted tree constructs it — the "
                        "handler can never fire (stale protocol surface, "
                        "or the send path was lost)",
                    )


@rule
class ByteAccountingRule(_NonTestProjectRule):
    """PROTO004: byte-accounting completeness.

    Two ways a payload's bytes drift off the paper's cost curves:
    a ``body_bytes`` that never reads its ``SizeModel`` parameter
    (hard-coded sizes do not follow size-model sweeps), and an explicit
    accounting call whose literal ``CostCategory`` disagrees with the
    category declared by every payload the same function sends.
    """

    id = "PROTO004"
    summary = "body_bytes ignores the SizeModel, or send-site accounting contradicts the declared CostCategory"

    def check_project(self, model: "ProtocolModel") -> Iterator[Finding]:
        for name in sorted(model.payload_classes):
            decl = model.payload_classes[name]
            if decl.has_body_bytes and not decl.body_bytes_uses_model:
                yield self.finding_at(
                    decl.path,
                    decl.body_bytes_line,
                    0,
                    f"body_bytes() of {name} never reads its SizeModel "
                    "parameter: the wire size is hard-coded and will not "
                    "follow size-model changes, skewing the byte-cost "
                    "curves (Section IV)",
                )
        # Send-site category agreement: the categories declared by the
        # payloads each function sends, keyed by (path, function scope).
        scope_categories: dict[tuple[str, str], set[str]] = {}
        for name, sites in model.flow.sends.items():
            decl = model.payload_classes.get(name)
            category = decl.category if decl is not None else None
            for site in sites:
                bucket = scope_categories.setdefault((site.path, site.scope), set())
                if category is not None:
                    bucket.add(category)
        for summary in model.summaries.values():
            for call in summary.accounting_calls:
                declared = scope_categories.get((call.path, call.scope))
                if declared and call.category not in declared:
                    expected = ", ".join(sorted(declared))
                    yield self.finding_at(
                        call.path,
                        call.line,
                        call.col,
                        f"accounting records CostCategory.{call.category} "
                        "here, but the payload(s) sent by this function "
                        f"declare CostCategory.{expected} — declaration "
                        "and send-site accounting disagree, so the same "
                        "bytes land in different buckets depending on who "
                        "counts them",
                    )


@rule
class RngStreamDisciplineRule(_NonTestProjectRule):
    """DET004: RNG-stream discipline across protocol modules.

    Two findings, both dataflow rather than regex: the same named
    ``rng.stream(...)`` consumed from two different protocol modules
    (their draw sequences interleave, so neither component is
    independently reproducible), and an unseeded ``random.Random()`` /
    ``default_rng()`` whose value flows — through locals, attributes or
    one call level — into a draw inside a protocol module.
    """

    id = "DET004"
    summary = "RNG-stream shared across protocol modules, or an unseeded RNG flowing into protocol decisions"

    def check_project(self, model: "ProtocolModel") -> Iterator[Finding]:
        # (1) one named stream, several protocol modules.
        for name in sorted(model.rng_streams):
            acquisitions = [
                acq
                for acq in model.rng_streams[name]
                if _is_protocol_path(acq.path)
            ]
            modules = sorted({acq.path for acq in acquisitions})
            if len(modules) < 2:
                continue
            others = ", ".join(modules)
            for acq in acquisitions:
                yield self.finding_at(
                    acq.path,
                    acq.line,
                    acq.col,
                    f"RNG stream '{name}' is consumed from "
                    f"{len(modules)} protocol modules ({others}): their "
                    "draw sequences interleave, so neither component "
                    "replays independently — derive a per-component "
                    "stream name",
                )
        # (2) unseeded RNG reaching protocol draws (taint walk).
        for summary in model.summaries.values():
            for draw in summary.taint_draws:
                if not _is_protocol_path(draw.path):
                    continue
                yield self.finding_at(
                    draw.path,
                    draw.line,
                    draw.col,
                    f".{draw.method}() draws from an unseeded RNG "
                    f"constructed at line {draw.origin_line}: protocol "
                    "decisions must come from a named, seeded "
                    "sim.rng.stream(...) or replays diverge",
                )
            for call in summary.tainted_arg_calls:
                yield from self._interprocedural(model, call)

    def _interprocedural(self, model: "ProtocolModel", call) -> Iterator[Finding]:
        for fn in model.functions_by_name.get(call.callee, ()):
            if not _is_protocol_path(fn.path):
                continue
            if call.keyword is not None:
                hit = call.keyword in fn.drawn_params
            else:
                offset = (
                    1
                    if call.method_call and fn.params and fn.params[0] in ("self", "cls")
                    else 0
                )
                index = call.position + offset
                hit = index < len(fn.params) and fn.params[index] in fn.drawn_params
            if hit:
                yield self.finding_at(
                    call.path,
                    call.line,
                    call.col,
                    f"an unseeded RNG constructed at line {call.origin_line} "
                    f"is passed to {call.callee}(), which draws from it in "
                    f"{fn.path}: protocol decisions must come from a named, "
                    "seeded sim.rng.stream(...)",
                )
                return  # one finding per call site is enough
