"""Performance rules: PERF001 (unguarded telemetry payload construction)
and PERF002 (per-element python loops in the vectorized tier).

The telemetry fast path (docs/PERFORMANCE.md) makes a disabled
``trace.emit(...)`` cost one predicate — but only if the *arguments* are
also free.  A dict literal, list literal, or f-string built at the call
site is paid before ``emit`` can decline it, so hot-path emits must hide
payload construction behind ``if trace.active:``.

The vectorized tier (``src/repro/vec``) exists to replace per-peer python
work with array programs; one ``for`` statement over a million-element
array silently reintroduces the scalar ceiling.  PERF002 keeps that tier
honest.  Bounded control loops (multi-argument ``range`` over tree
levels) pass; the dense↔sparse escape hatch iterates legitimately and
says so with an explicit ``# repro-lint: disable=PERF002``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule


def _dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_trace_emit(node: ast.Call) -> bool:
    """``trace.emit(...)`` / ``sim.trace.emit(...)`` / ``self._sim.trace.emit(...)``."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return len(parts) >= 2 and parts[-1] == "emit" and "trace" in parts[:-1]


def _expensive_kind(node: ast.expr) -> str | None:
    """A constant-cost description if building ``node`` allocates."""
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list literal"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.JoinedStr) and any(
        isinstance(part, ast.FormattedValue) for part in node.values
    ):
        return "f-string"
    return None


def _guard_tests_active(test: ast.expr) -> bool:
    """Whether an ``if`` test reads ``<...>trace.active`` (or ``.active``
    on any name ending in ``trace``/``tracer``)."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "active":
            owner = _dotted_name(node.value)
            if owner is not None and owner.split(".")[-1] in ("trace", "tracer"):
                return True
    return False


def _is_guarded(node: ast.Call) -> bool:
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, ast.If) and _guard_tests_active(current.test):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # a guard outside the enclosing function never helps
        current = getattr(current, "parent", None)
    return False


@rule
class UnguardedTracePayloadRule(Rule):
    """PERF001: allocating payloads for a possibly-disabled trace emit.

    ``trace.emit(...)`` with telemetry off costs one predicate — unless a
    dict/list literal, comprehension, or f-string argument is built
    first, which Python evaluates *before* the call can bail out.  Either
    pass scalars (``emit`` only formats when a sink is attached) or wrap
    the whole emit in ``if trace.active:``.
    """

    id = "PERF001"
    summary = "dict/list/f-string built for trace.emit() without an `if trace.active` guard"

    def applies_to(self, path: str) -> bool:
        # Hot-path discipline is for library code; tests and fixtures
        # trade a few allocations for readable assertions.
        parts = path.replace("\\", "/").split("/")
        return "tests" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not _is_trace_emit(node):
                continue
            if _is_guarded(node):
                continue
            values = list(node.args) + [keyword.value for keyword in node.keywords]
            for value in values:
                kind = _expensive_kind(value)
                if kind is not None:
                    yield self.finding(
                        path,
                        value,
                        f"{kind} built unconditionally for trace.emit(); guard "
                        "the emit with `if trace.active:` so disabled telemetry "
                        "costs one predicate (docs/PERFORMANCE.md)",
                    )


def _is_numpy_call(node: ast.expr) -> bool:
    """``np.anything(...)`` / ``numpy.lib.anything(...)``."""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted_name(node.func)
    return dotted is not None and dotted.split(".")[0] in ("np", "numpy")


def _is_ndarray_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    dotted = _dotted_name(annotation)
    return dotted in ("np.ndarray", "numpy.ndarray", "ndarray")


def _array_names(tree: ast.Module) -> set[str]:
    """Names bound to numpy arrays: assigned from an ``np.*`` call, or
    annotated ``np.ndarray`` (assignments and function parameters)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_numpy_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and (
                _is_ndarray_annotation(node.annotation)
                or (node.value is not None and _is_numpy_call(node.value))
            ):
                names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in node.args.args + node.args.kwonlyargs + node.args.posonlyargs:
                if _is_ndarray_annotation(arg.annotation):
                    names.add(arg.arg)
    return names


def _elementwise_range(node: ast.Call, arrays: set[str]) -> bool:
    """``range(len(a))`` / ``range(a.size)`` / ``range(a.shape[0])`` for a
    known array ``a`` — single-argument only; bounded multi-argument
    ranges (level sweeps over tree depth) are legitimate control loops."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "range"):
        return False
    if len(node.args) != 1:
        return False
    arg = node.args[0]
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Name)
        and arg.func.id == "len"
        and len(arg.args) == 1
        and isinstance(arg.args[0], ast.Name)
    ):
        return arg.args[0].id in arrays
    if isinstance(arg, ast.Attribute) and arg.attr == "size":
        owner = arg.value
        return isinstance(owner, ast.Name) and owner.id in arrays
    if (
        isinstance(arg, ast.Subscript)
        and isinstance(arg.value, ast.Attribute)
        and arg.value.attr == "shape"
        and isinstance(arg.value.value, ast.Name)
    ):
        return arg.value.value.id in arrays
    return False


@rule
class ScalarLoopInVectorTierRule(Rule):
    """PERF002: a per-element python ``for`` loop over a numpy array
    inside the vectorized tier.

    ``src/repro/vec`` holds the code whose whole contract is batch array
    execution; a statement loop that touches each element from python
    undoes that contract for the full population size.  Replace it with
    the equivalent array program (``np.add.at``, ``np.repeat``-based flat
    gathers, boolean masks), or — at the dense↔sparse escape boundary,
    where per-peer object construction is the point — acknowledge the
    iteration with ``# repro-lint: disable=PERF002``.
    """

    id = "PERF002"
    summary = "per-element python loop over a numpy array in src/repro/vec"

    def applies_to(self, path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "vec" in parts and "tests" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        arrays = _array_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.For):
                continue
            iterator = node.iter
            if isinstance(iterator, ast.Name) and iterator.id in arrays:
                yield self.finding(
                    path,
                    node,
                    f"python for-loop over numpy array `{iterator.id}`; "
                    "replace per-element iteration with a batch array op "
                    "(this tier's contract) or disable at an escape boundary",
                )
            elif isinstance(iterator, ast.Call) and _elementwise_range(
                iterator, arrays
            ):
                yield self.finding(
                    path,
                    node,
                    "python for-loop over every index of a numpy array; "
                    "replace per-element iteration with a batch array op "
                    "(this tier's contract) or disable at an escape boundary",
                )
            elif _is_numpy_call(iterator):
                yield self.finding(
                    path,
                    node,
                    "python for-loop directly over a numpy call result; "
                    "replace per-element iteration with a batch array op "
                    "(this tier's contract) or disable at an escape boundary",
                )
