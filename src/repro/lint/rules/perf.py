"""Performance rules: PERF001 (unguarded telemetry payload construction).

The telemetry fast path (docs/PERFORMANCE.md) makes a disabled
``trace.emit(...)`` cost one predicate — but only if the *arguments* are
also free.  A dict literal, list literal, or f-string built at the call
site is paid before ``emit`` can decline it, so hot-path emits must hide
payload construction behind ``if trace.active:``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule


def _dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_trace_emit(node: ast.Call) -> bool:
    """``trace.emit(...)`` / ``sim.trace.emit(...)`` / ``self._sim.trace.emit(...)``."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return len(parts) >= 2 and parts[-1] == "emit" and "trace" in parts[:-1]


def _expensive_kind(node: ast.expr) -> str | None:
    """A constant-cost description if building ``node`` allocates."""
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list literal"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.JoinedStr) and any(
        isinstance(part, ast.FormattedValue) for part in node.values
    ):
        return "f-string"
    return None


def _guard_tests_active(test: ast.expr) -> bool:
    """Whether an ``if`` test reads ``<...>trace.active`` (or ``.active``
    on any name ending in ``trace``/``tracer``)."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "active":
            owner = _dotted_name(node.value)
            if owner is not None and owner.split(".")[-1] in ("trace", "tracer"):
                return True
    return False


def _is_guarded(node: ast.Call) -> bool:
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, ast.If) and _guard_tests_active(current.test):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # a guard outside the enclosing function never helps
        current = getattr(current, "parent", None)
    return False


@rule
class UnguardedTracePayloadRule(Rule):
    """PERF001: allocating payloads for a possibly-disabled trace emit.

    ``trace.emit(...)`` with telemetry off costs one predicate — unless a
    dict/list literal, comprehension, or f-string argument is built
    first, which Python evaluates *before* the call can bail out.  Either
    pass scalars (``emit`` only formats when a sink is attached) or wrap
    the whole emit in ``if trace.active:``.
    """

    id = "PERF001"
    summary = "dict/list/f-string built for trace.emit() without an `if trace.active` guard"

    def applies_to(self, path: str) -> bool:
        # Hot-path discipline is for library code; tests and fixtures
        # trade a few allocations for readable assertions.
        parts = path.replace("\\", "/").split("/")
        return "tests" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not _is_trace_emit(node):
                continue
            if _is_guarded(node):
                continue
            values = list(node.args) + [keyword.value for keyword in node.keywords]
            for value in values:
                kind = _expensive_kind(value)
                if kind is not None:
                    yield self.finding(
                        path,
                        value,
                        f"{kind} built unconditionally for trace.emit(); guard "
                        "the emit with `if trace.active:` so disabled telemetry "
                        "costs one predicate (docs/PERFORMANCE.md)",
                    )
