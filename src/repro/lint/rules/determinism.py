"""Determinism rules: DET001 (wall clock), DET002 (unseeded randomness),
DET003 (unordered iteration).

The simulation's claims — exact IFI results, reproducible cost curves,
replayable JSONL traces — hold only if every run is a pure function of
its seed.  These rules flag the three ways Python code silently breaks
that: reading the wall clock, drawing from a global RNG, and iterating
an unordered collection where the order reaches a message, a schedule,
or a trace.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts and "fixtures" not in parts


#: Call targets that read the wall clock, by dotted name.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Bare names that, when imported from ``time``, read the wall clock.
_WALL_CLOCK_TIME_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    }
)


@rule
class WallClockRule(Rule):
    """DET001: wall-clock reads in simulation/protocol code.

    Simulated components must take time from ``sim.now``; a wall-clock
    read anywhere in a sim or protocol path makes traces non-replayable.
    The ``telemetry`` package is exempt — measuring wall time is its job
    (spans report ``wall_elapsed`` alongside the simulated duration).
    """

    id = "DET001"
    summary = "wall-clock call (time.time / datetime.now / perf_counter) in sim code"

    def applies_to(self, path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "telemetry" not in parts

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        time_imports: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_TIME_NAMES:
                        time_imports.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS or (
                isinstance(node.func, ast.Name) and node.func.id in time_imports
            ):
                yield self.finding(
                    path,
                    node,
                    f"wall-clock call {dotted or _dotted_name(node.func)}() in "
                    "simulation code; use sim.now (simulated time) or move the "
                    "measurement into telemetry",
                )


#: ``np.random.<name>`` targets that construct seeded machinery rather
#: than drawing from the global stream.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "SeedSequence",
    }
)


@rule
class UnseededRandomnessRule(Rule):
    """DET002: module-level randomness instead of a passed Generator.

    Every random draw must flow through a named stream of the
    simulation's :class:`~repro.sim.rng.RngRegistry` (or an explicitly
    seeded ``np.random.Generator``).  ``random.*`` and ``np.random.*``
    module-level calls share hidden global state: importing a new module
    that also draws from it reshuffles every experiment.
    """

    id = "DET002"
    summary = "global RNG call (random.* / np.random.*) instead of a passed Generator"

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        # Track how the random modules are actually bound in this module,
        # so `rng.random()` on a *passed Generator* is never confused with
        # `np.random.random()` on the *module*.
        stdlib_random_names: set[str] = set()  # from random import choice
        np_random_names: set[str] = set()  # from numpy.random import shuffle
        stdlib_module_aliases: set[str] = set()  # import random [as r]
        np_module_aliases: set[str] = set()  # import numpy [as np]
        np_random_module_aliases: set[str] = set()  # import numpy.random as nr
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        stdlib_random_names.add(alias.asname or alias.name)
                elif node.module == "numpy.random":
                    for alias in node.names:
                        np_random_names.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_module_aliases.add(alias.asname or alias.name)
                    elif alias.name == "numpy":
                        np_module_aliases.add(alias.asname or alias.name)
                    elif alias.name == "numpy.random":
                        np_random_module_aliases.add(alias.asname or "numpy")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            parts = dotted.split(".") if dotted else []
            finding = None
            if len(parts) == 2 and parts[0] in stdlib_module_aliases:
                tail = parts[1]
                if tail == "Random" and node.args:
                    continue  # random.Random(seed): explicitly seeded
                finding = f"{dotted}() draws from the global stdlib RNG"
            elif (
                len(parts) == 3
                and parts[0] in np_module_aliases
                and parts[1] == "random"
            ) or (len(parts) == 2 and parts[0] in np_random_module_aliases):
                tail = parts[-1]
                if tail in _NP_RANDOM_ALLOWED:
                    continue
                if tail == "default_rng":
                    if node.args or node.keywords:
                        continue  # default_rng(seed): explicitly seeded
                    finding = "np.random.default_rng() without a seed"
                else:
                    finding = f"{dotted}() draws from numpy's global RNG"
            elif isinstance(node.func, ast.Name):
                name = node.func.id
                if name in stdlib_random_names or name in np_random_names:
                    if name == "default_rng" and (node.args or node.keywords):
                        continue
                    if name == "Random" and node.args:
                        continue
                    finding = f"{name}() draws from a global RNG"
            if finding is not None:
                yield self.finding(
                    path,
                    node,
                    f"{finding}; take an np.random.Generator parameter or use a "
                    "named stream from sim.rng",
                )


#: Builtins whose result does not depend on argument iteration order —
#: a generator expression fed straight into one of these is exempt.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sum", "len", "max", "min", "any", "all", "set", "frozenset", "sorted", "Counter"}
)


@rule
class UnorderedIterationRule(Rule):
    """DET003: iterating a set (or set-typed state) without sorted().

    Set iteration order depends on element hashes — stable for one run,
    but not across Python versions, platforms, or hash randomization for
    str keys.  When the order feeds messages, schedules, or trace output,
    replays diverge.  Wrap the iterable in ``sorted(...)``; note that
    ``list(a_set)`` merely freezes the unordered order and is still
    flagged.
    """

    id = "DET003"
    summary = "iteration over a set/unordered collection without sorted(...)"

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for scope in ast.walk(tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_sets = self._local_set_names(scope, facts)
            for node in ast.walk(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not scope:
                        continue  # inner functions get their own scope pass
                if isinstance(node, ast.For):
                    if self._is_unordered(node.iter, local_sets, facts):
                        yield self._finding_at(path, node.iter)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    if isinstance(node, ast.GeneratorExp) and self._feeds_reducer(node):
                        continue
                    for generator in node.generators:
                        if self._is_unordered(generator.iter, local_sets, facts):
                            yield self._finding_at(path, generator.iter)

    # -- helpers -------------------------------------------------------
    def _finding_at(self, path: str, node: ast.expr) -> Finding:
        return self.finding(
            path,
            node,
            "iterating an unordered set; wrap in sorted(...) so message, "
            "schedule, and trace order is reproducible",
        )

    def _feeds_reducer(self, node: ast.GeneratorExp) -> bool:
        parent = getattr(node, "parent", None)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS
        )

    def _local_set_names(
        self, scope: ast.FunctionDef | ast.AsyncFunctionDef, facts: ProjectFacts
    ) -> set[str]:
        """Names bound to set-ish values anywhere in this function."""
        from repro.lint.facts import annotation_is_set

        names: set[str] = set()
        for arg in [
            *scope.args.posonlyargs,
            *scope.args.args,
            *scope.args.kwonlyargs,
        ]:
            if arg.annotation is not None and annotation_is_set(arg.annotation):
                names.add(arg.arg)
        # Fixed-point over assignments: `a = {...}; b = a` needs two passes.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(scope):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if annotation_is_set(node.annotation):
                        if node.target.id not in names:
                            names.add(node.target.id)
                            changed = True
                        continue
                    targets, value = [node.target], node.value
                if value is None or not self._is_unordered(value, names, facts):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        changed = True
        return names

    def _is_unordered(
        self, node: ast.expr, local_sets: set[str], facts: ProjectFacts
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute):
            return node.attr in facts.set_attributes
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_unordered(node.left, local_sets, facts) or self._is_unordered(
                node.right, local_sets, facts
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id in ("sorted",):
                    return False
                if func.id in ("list", "tuple", "reversed", "iter"):
                    # Order-preserving wrappers keep the unordered order.
                    return bool(node.args) and self._is_unordered(
                        node.args[0], local_sets, facts
                    )
                return func.id in facts.set_returning_functions
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    # dict.keys() is insertion-ordered, but it is a *view
                    # with set semantics* and reads as one; iteration that
                    # cares about order should say sorted(d) explicitly.
                    return True
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference"):
                    return self._is_unordered(func.value, local_sets, facts)
                return func.attr in facts.set_returning_functions
        return False
