"""Protocol-invariant rules: PROTO001 (payload registration) and
PROTO002 (trace-kind declaration).

These are the static halves of two runtime registries: the wire codec
(:mod:`repro.net.codec`) and the trace-kind table
(:mod:`repro.telemetry.kinds`).  The registries catch violations at
runtime *if the offending path executes*; these rules catch them at
review time whether or not any test exercises the path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.facts import ProjectFacts
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule


def _in_tests(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts and "fixtures" not in parts


def _decorator_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


@rule
class PayloadRegistrationRule(Rule):
    """PROTO001: Payload subclasses must be complete and wire-registered.

    A ``Payload`` subclass that is missing ``@register_payload`` never
    reaches the codec's duplicate/size validation; one missing
    ``body_bytes`` silently inherits a parent's size model and skews the
    paper's byte-cost curves.  Each missing aspect is reported
    separately so the fix list is explicit.
    """

    id = "PROTO001"
    summary = "Payload subclass missing codec registration, body_bytes, or category"

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name == "Payload":
                continue
            base_names = set()
            for base in node.bases:
                if isinstance(base, ast.Name):
                    base_names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    base_names.add(base.attr)
            if "Payload" not in base_names:
                continue
            has_body_bytes = False
            has_category = False
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name == "body_bytes":
                        has_body_bytes = True
                    elif item.name == "category":
                        has_category = True
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    if item.target.id == "category":
                        has_category = True
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id == "category":
                            has_category = True
            if "register_payload" not in _decorator_names(node):
                yield self.finding(
                    path,
                    node,
                    f"Payload subclass {node.name} is not decorated with "
                    "@register_payload; the wire codec cannot account for it",
                )
            if not has_body_bytes:
                yield self.finding(
                    path,
                    node,
                    f"Payload subclass {node.name} does not define body_bytes(); "
                    "its wire size would silently fall back to the parent's",
                )
            if not has_category:
                yield self.finding(
                    path,
                    node,
                    f"Payload subclass {node.name} does not declare a category; "
                    "cost accounting cannot attribute its traffic",
                )


@rule
class TraceKindRule(Rule):
    """PROTO002: every telemetry emit/span kind is declared in the registry.

    Trace consumers (the run-report CLI, the replay gate) key on the
    ``kind`` field.  An undeclared kind is either a typo or a new event
    type that dashboards and docs do not know about yet — both should be
    caught before the trace ships.  Tests are exempt: they emit ad-hoc
    kinds on purpose.
    """

    id = "PROTO002"
    summary = "telemetry emit()/span() kind not declared in repro.telemetry.kinds"

    def applies_to(self, path: str) -> bool:
        return not _in_tests(path)

    def check(
        self, tree: ast.Module, source: str, path: str, facts: ProjectFacts
    ) -> Iterator[Finding]:
        try:
            from repro.telemetry.kinds import TRACE_KINDS
        except ImportError:  # pragma: no cover - linting outside the repo
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in (
                "emit",
                "span",
            ):
                continue
            kind = self._literal_kind(node)
            if kind is None:
                continue
            if kind not in TRACE_KINDS:
                yield self.finding(
                    path,
                    node,
                    f"trace kind {kind!r} is not declared in "
                    "repro.telemetry.kinds.TRACE_KINDS; declare it (with a "
                    "description) or fix the typo",
                )

    @staticmethod
    def _literal_kind(node: ast.Call) -> str | None:
        """The kind argument, when it is a string literal.

        ``Telemetry.emit(kind, ...)`` and ``Telemetry.span(kind)`` take the
        kind first; the lower-level ``Tracer.emit(time, kind, ...)`` takes
        it second.  Non-literal kinds are out of static reach and skipped.
        """
        for arg in node.args[:2]:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        return None
