"""Lint engine: path gathering, the facts pass, and rule execution.

Two-pass design.  Pass one parses every target and folds it into
:class:`~repro.lint.facts.ProjectFacts`, so rules can recognise
set-typed attributes declared in *other* files.  Pass two runs each
applicable rule per file and filters findings through that file's
suppression directives.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Sequence

from repro.lint.facts import ProjectFacts, attach_parents
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppressions import parse_suppressions


@dataclass
class _Target:
    path: str
    source: str
    tree: ast.Module


def gather_paths(paths: Sequence[str]) -> list[str]:
    """Expand the CLI's path arguments into a sorted list of files.

    Directories are walked for ``*.py`` (skipping ``__pycache__`` and
    hidden directories); explicitly named files are linted regardless of
    extension, which is how the test suite lints ``.pytxt`` fixtures
    without the fixtures tripping a directory-level run.
    """
    files: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(os.path.join(dirpath, filename))
        else:
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint files/directories; returns sorted findings (empty == clean)."""
    chosen = list(rules) if rules is not None else all_rules()
    targets: list[_Target] = []
    findings: list[Finding] = []
    facts = ProjectFacts()
    for path in gather_paths(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(path=path, line=1, col=0, rule="PARSE", message=str(exc))
            )
            continue
        attach_parents(tree)
        facts.merge_from(tree)
        targets.append(_Target(path=path, source=source, tree=tree))
    for target in targets:
        findings.extend(
            _lint_tree(target.tree, target.source, target.path, facts, chosen)
        )
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "<string>",
    facts: ProjectFacts | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one in-memory module (the unit-test entry point).

    ``path`` matters: rules scope themselves by path (DET001 skips
    ``telemetry``, PROTO002 skips ``tests``), so fixture tests pass a
    src-like fake path when exercising scoped rules.
    """
    chosen = list(rules) if rules is not None else all_rules()
    tree = ast.parse(source, filename=path)
    attach_parents(tree)
    if facts is None:
        facts = ProjectFacts()
        facts.merge_from(tree)
    return sorted(_lint_tree(tree, source, path, facts, chosen))


def _lint_tree(
    tree: ast.Module,
    source: str,
    path: str,
    facts: ProjectFacts,
    rules: Sequence[Rule],
) -> list[Finding]:
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for rule_obj in rules:
        if not rule_obj.applies_to(path):
            continue
        for finding in rule_obj.check(tree, source, path, facts):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    return findings
