"""Lint engine: path gathering, the facts/model pass, and rule execution.

Three-pass design.  Pass one loads every target — from the cache when
``(path, mtime, size)`` still matches, else by parsing — and extracts a
:class:`~repro.lint.model.FileSummary` (which carries the cross-file
facts).  Pass two runs the per-file rules on each file, reusing cached
findings when the file *and* the shared facts it was linted against are
both unchanged.  Pass three assembles the summaries into one
:class:`~repro.lint.model.ProtocolModel` and runs the whole-program
:class:`~repro.lint.registry.ProjectRule` set over it, filtering each
finding through the suppressions of the file it points at.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass
from typing import Sequence

from repro.lint.cache import LintCache
from repro.lint.facts import ProjectFacts, attach_parents
from repro.lint.findings import Finding
from repro.lint.model import FileSummary, ProtocolModel, extract_summary
from repro.lint.registry import ProjectRule, Rule, all_rules
from repro.lint.suppressions import Suppressions, parse_suppressions


@dataclass
class _Target:
    path: str
    summary: FileSummary
    suppressions: Suppressions
    #: Findings reused from the cache; None means "must lint fresh".
    cached_findings: list[Finding] | None
    #: Fingerprint the cached findings were computed against.
    cached_fingerprint: str | None = None
    #: Parsed tree, available when the file was read this run.
    tree: ast.Module | None = None
    source: str | None = None


def gather_paths(paths: Sequence[str]) -> list[str]:
    """Expand the CLI's path arguments into a sorted list of files.

    Directories are walked for ``*.py`` (skipping ``__pycache__`` and
    hidden directories); explicitly named files are linted regardless of
    extension, which is how the test suite lints ``.pytxt`` fixtures
    without the fixtures tripping a directory-level run.
    """
    files: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(os.path.join(dirpath, filename))
        else:
            files.add(path)
    return sorted(files)


def _facts_fingerprint(facts: ProjectFacts, file_rules: Sequence[Rule]) -> str:
    """Everything a per-file rule reads from *outside* its file, hashed.

    Covers the merged cross-file fact tables, the active per-file rule
    set, and the declared trace kinds (PROTO002 imports them at lint
    time).  A cached finding is only reused while this matches.
    """
    hasher = hashlib.sha1()
    for attr in sorted(facts.set_attributes):
        hasher.update(b"a:" + attr.encode("utf-8"))
    for fn in sorted(facts.set_returning_functions):
        hasher.update(b"f:" + fn.encode("utf-8"))
    for rule_obj in sorted((r.id for r in file_rules)):
        hasher.update(b"r:" + rule_obj.encode("utf-8"))
    try:
        from repro.telemetry.kinds import TRACE_KINDS

        for kind in sorted(TRACE_KINDS):
            hasher.update(b"k:" + kind.encode("utf-8"))
    except ImportError:  # pragma: no cover - lint package used standalone
        pass
    return hasher.hexdigest()


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] | None = None,
    cache: LintCache | None = None,
    stats: dict[str, int] | None = None,
) -> list[Finding]:
    """Lint files/directories; returns sorted findings (empty == clean).

    ``cache`` enables the on-disk parse/facts cache (the CLI passes one
    by default; library callers opt in).  ``stats``, when given, is
    filled with ``files``/``parsed``/``from_cache`` counters so tests
    and tooling can assert cache behaviour.
    """
    chosen = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    findings: list[Finding] = []
    targets: list[_Target] = []
    facts = ProjectFacts()
    parsed = 0

    for path in gather_paths(paths):
        entry = cache.load(path) if cache is not None else None
        if entry is not None:
            # Findings reuse is decided later, once the fingerprint of
            # the *merged* facts is known; stash the stored one.
            target = _Target(
                path=path,
                summary=entry.summary,
                suppressions=entry.suppressions,
                cached_findings=list(entry.findings),
                cached_fingerprint=entry.facts_fingerprint,
            )
        else:
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError, ValueError) as exc:
                findings.append(
                    Finding(path=path, line=1, col=0, rule="PARSE", message=str(exc))
                )
                continue
            parsed += 1
            attach_parents(tree)
            target = _Target(
                path=path,
                summary=extract_summary(path, tree),
                suppressions=parse_suppressions(source),
                cached_findings=None,
                tree=tree,
                source=source,
            )
        facts.set_attributes |= target.summary.set_attributes
        facts.set_returning_functions |= target.summary.set_returning_functions
        targets.append(target)

    fingerprint = _facts_fingerprint(facts, file_rules)
    from_cache = 0
    for target in targets:
        if (
            target.cached_findings is not None
            and target.cached_fingerprint == fingerprint
        ):
            findings.extend(target.cached_findings)
            from_cache += 1
            continue
        if target.tree is None:
            # Summary came from the cache but the shared facts moved
            # under the stored findings: re-parse just for the rules.
            try:
                with open(target.path, encoding="utf-8") as handle:
                    target.source = handle.read()
                target.tree = ast.parse(target.source, filename=target.path)
            except (OSError, SyntaxError, ValueError) as exc:
                findings.append(
                    Finding(
                        path=target.path, line=1, col=0, rule="PARSE", message=str(exc)
                    )
                )
                continue
            parsed += 1
            attach_parents(target.tree)
        file_findings = _lint_tree(
            target.tree, target.source or "", target.path, facts, file_rules,
            target.suppressions,
        )
        findings.extend(file_findings)
        if cache is not None:
            cache.store(
                target.path,
                target.summary,
                target.suppressions,
                fingerprint,
                file_findings,
            )

    if project_rules:
        by_path = {target.path: target for target in targets}
        model = ProtocolModel.build([target.summary for target in targets])
        for rule_obj in project_rules:
            for finding in rule_obj.check_project(model):
                if not rule_obj.applies_to(finding.path):
                    continue
                target = by_path.get(finding.path)
                if target is not None and target.suppressions.is_suppressed(finding):
                    continue
                findings.append(finding)

    if stats is not None:
        stats["files"] = len(targets)
        stats["parsed"] = parsed
        stats["from_cache"] = from_cache
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "<string>",
    facts: ProjectFacts | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one in-memory module (the unit-test entry point).

    ``path`` matters: rules scope themselves by path (DET001 skips
    ``telemetry``, PROTO002 skips ``tests``), so fixture tests pass a
    src-like fake path when exercising scoped rules.  Whole-program
    rules run over a model built from just this module.
    """
    chosen = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    tree = ast.parse(source, filename=path)
    attach_parents(tree)
    if facts is None:
        facts = ProjectFacts()
        facts.merge_from(tree)
    suppressions = parse_suppressions(source)
    findings = _lint_tree(tree, source, path, facts, file_rules, suppressions)
    if project_rules:
        model = ProtocolModel.build([extract_summary(path, tree)])
        for rule_obj in project_rules:
            for finding in rule_obj.check_project(model):
                if not rule_obj.applies_to(finding.path):
                    continue
                if suppressions.is_suppressed(finding):
                    continue
                findings.append(finding)
    return sorted(findings)


def _lint_tree(
    tree: ast.Module,
    source: str,
    path: str,
    facts: ProjectFacts,
    rules: Sequence[Rule],
    suppressions: Suppressions | None = None,
) -> list[Finding]:
    if suppressions is None:
        suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for rule_obj in rules:
        if not rule_obj.applies_to(path):
            continue
        for finding in rule_obj.check(tree, source, path, facts):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    return findings
