"""On-disk cache of the parse+facts pass.

Building CFGs, a call graph and the message-flow model made the lint
pass do real work per file, and most files do not change between runs.
The cache stores, per source file, the picklable
:class:`~repro.lint.model.FileSummary` plus that file's parsed
suppression directives and its per-file-rule findings, keyed by
``(path, mtime_ns, size)``.

Validity has two layers:

* the **entry** (summary + suppressions) is valid whenever the file's
  ``(mtime_ns, size)`` stat matches — it depends on nothing else;
* the stored **findings** are additionally keyed by a *facts
  fingerprint* covering everything a per-file rule can read from
  outside the file: the merged cross-file fact tables, the active rule
  ids, the declared trace kinds, and the cache schema version.  Edit
  one module and every *other* module's findings stay reusable unless
  the edit changed the shared facts they were computed against.

Whole-program rules are never cached: they re-run from the (cached)
summaries every time, which is the cheap part.

A cache entry that fails to load for any reason — corrupt pickle, a
schema from another version, a moved repo — is treated as a miss; the
cache can always be deleted wholesale (`rm -rf .repro-lint-cache`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.model import FileSummary
from repro.lint.suppressions import Suppressions

#: Bump when FileSummary / Suppressions / Finding shapes change.
SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-lint-cache"


@dataclass
class CacheEntry:
    """One file's cached analysis products."""

    path: str
    mtime_ns: int
    size: int
    summary: FileSummary
    suppressions: Suppressions
    facts_fingerprint: str
    findings: list[Finding]
    schema: int = SCHEMA_VERSION


class LintCache:
    """Pickle-per-file cache under ``.repro-lint-cache/``."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self._made_root = False

    def _entry_path(self, path: str) -> str:
        digest = hashlib.sha1(os.path.abspath(path).encode("utf-8")).hexdigest()
        return os.path.join(self.root, f"{digest}.pkl")

    def load(self, path: str) -> CacheEntry | None:
        """The cached entry for ``path`` if its stat still matches."""
        try:
            stat = os.stat(path)
            with open(self._entry_path(path), "rb") as handle:
                entry = pickle.load(handle)
        except Exception:  # any failure to load is simply a miss
            return None
        if (
            not isinstance(entry, CacheEntry)
            or entry.schema != SCHEMA_VERSION
            or entry.path != path
            or entry.mtime_ns != stat.st_mtime_ns
            or entry.size != stat.st_size
        ):
            return None
        return entry

    def store(
        self,
        path: str,
        summary: FileSummary,
        suppressions: Suppressions,
        facts_fingerprint: str,
        findings: list[Finding],
    ) -> None:
        """Write one file's entry (atomically; failures are ignored —
        a cache must never turn a lint run into an error)."""
        try:
            stat = os.stat(path)
            if not self._made_root:
                os.makedirs(self.root, exist_ok=True)
                self._made_root = True
            entry = CacheEntry(
                path=path,
                mtime_ns=stat.st_mtime_ns,
                size=stat.st_size,
                summary=summary,
                suppressions=suppressions,
                facts_fingerprint=facts_fingerprint,
                findings=list(findings),
            )
            fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, self._entry_path(path))
            except BaseException:
                os.unlink(tmp_path)
                raise
        except Exception:
            pass
