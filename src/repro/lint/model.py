"""The whole-program protocol-flow model.

Per-file rules see one module; the protocol invariants they guard span
modules — payloads are declared in ``repro.net``, sent from
``repro.core``/``repro.hierarchy``, and handled by services registered
somewhere else entirely.  This module extracts a picklable
:class:`FileSummary` from each parsed file (so the result can live in
the lint cache) and folds the summaries into one :class:`ProtocolModel`:
a symbol index, a lightweight name-based call graph, the message-flow
graph (:mod:`repro.lint.graph`), an RNG-stream table, and the taint
seeds for the DET004 dataflow walk.

Everything here is *name-based* static analysis: a payload expression is
resolved to the set of class names it can denote (through local
assignments, ``tagged(Base, tag)`` calls, attribute tables built from
``self.x = SomePayload`` stores, ``A if c else B`` branches, parameter
annotations and ``assert isinstance(v, C)`` narrowing).  When an
expression resolves to nothing the site is recorded as *unresolved* and
the rules that would otherwise claim completeness (PROTO003's dead
letters/handlers) degrade gracefully instead of guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

#: Method names that consume randomness from a Generator/Random object.
DRAW_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "exponential",
        "gauss",
        "integers",
        "normal",
        "permutation",
        "poisson",
        "randint",
        "random",
        "sample",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Unseeded RNG constructors (taint sources when called with no seed).
_RNG_CONSTRUCTORS = frozenset({"Random", "RandomState", "default_rng"})

#: Dotted-attribute senders whose payload is the *third* argument
#: (``self._transmit(recipient, sender, payload)``); ``send`` itself
#: takes the payload second.
_TRANSPORT_SENDERS = frozenset({"_transmit", "_send_reliable", "_transport_send"})


def _walk_shallow(root: ast.AST) -> Iterable[ast.AST]:
    """Walk a subtree without descending into nested function/class
    definitions (they are scanned in their own scope)."""
    todo: list[ast.AST] = [root]
    while todo:
        node = todo.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            todo.append(child)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Summary records (all picklable: plain strings and ints only)
# ----------------------------------------------------------------------

#: A payload-expression reference: ``("class", "BuildPayload")`` or
#: ``("attr", "_build_cls")`` — resolved against the global model later.
Ref = tuple[str, str]


@dataclass(frozen=True)
class SiteRefs:
    """One send or register_handler site and what its payload
    expression may denote."""

    path: str
    line: int
    col: int
    scope: str  # qualname of the enclosing function ('' = module level)
    refs: tuple[Ref, ...]
    resolved: bool  # False when the expression defeated resolution


@dataclass(frozen=True)
class ClassInfo:
    """One class declaration (payload-ness decided globally)."""

    name: str
    path: str
    line: int
    col: int
    bases: tuple[str, ...]
    registered: bool  # carries @register_payload
    category: str | None  # literal CostCategory member name, if declared
    has_body_bytes: bool
    body_bytes_line: int
    body_bytes_uses_model: bool


@dataclass(frozen=True)
class RngAcquisition:
    """One ``<something>.rng.stream(name)`` call."""

    path: str
    line: int
    col: int
    scope: str
    name: str | None  # None when the stream name is dynamic


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method: parameters, calls, and which parameters it
    draws randomness from (for the DET004 interprocedural step)."""

    name: str  # bare name (call-graph key)
    qualname: str
    path: str
    line: int
    params: tuple[str, ...]
    drawn_params: tuple[str, ...]
    calls: tuple[str, ...]  # bare callee names, sorted


@dataclass(frozen=True)
class TaintDraw:
    """A draw-method call on a value tainted by an unseeded RNG
    constructed in the same file."""

    path: str
    line: int
    col: int
    method: str
    origin_line: int  # where the unseeded RNG was constructed


@dataclass(frozen=True)
class TaintedArgCall:
    """A call that passes a tainted value onward as an argument."""

    path: str
    line: int
    col: int
    callee: str  # bare function name
    position: int  # positional index, -1 when keyword
    keyword: str | None
    method_call: bool  # obj.f(...) — positional params offset by self
    origin_line: int


@dataclass(frozen=True)
class AccountingCall:
    """An explicit byte-accounting call with a literal CostCategory."""

    path: str
    line: int
    col: int
    scope: str
    category: str  # the literal CostCategory member name


@dataclass
class FileSummary:
    """Everything the whole-program model needs from one file.

    Deliberately free of AST nodes so it pickles into the lint cache.
    """

    path: str
    set_attributes: set[str] = field(default_factory=set)
    set_returning_functions: set[str] = field(default_factory=set)
    classes: list[ClassInfo] = field(default_factory=list)
    #: attribute name -> class names it may hold (``self.x = Payload``/
    #: ``self.x = tagged(Payload, t)`` stores, merged globally later).
    attr_classes: dict[str, set[str]] = field(default_factory=dict)
    send_sites: list[SiteRefs] = field(default_factory=list)
    handler_sites: list[SiteRefs] = field(default_factory=list)
    rng_streams: list[RngAcquisition] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    taint_draws: list[TaintDraw] = field(default_factory=list)
    tainted_arg_calls: list[TaintedArgCall] = field(default_factory=list)
    accounting_calls: list[AccountingCall] = field(default_factory=list)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def extract_summary(path: str, tree: ast.Module) -> FileSummary:
    """Summarise one parsed module for the whole-program model."""
    from repro.lint.facts import ProjectFacts

    summary = FileSummary(path=path)
    facts = ProjectFacts()
    facts.merge_from(tree)
    summary.set_attributes = set(facts.set_attributes)
    summary.set_returning_functions = set(facts.set_returning_functions)
    _Extractor(summary).visit_module(tree)
    _extract_attr_taint(summary, tree)
    return summary


def _extract_attr_taint(summary: FileSummary, tree: ast.Module) -> None:
    """File-wide attribute taint: an unseeded RNG stored on an attribute
    (``self.rng = random.Random()``) taints every ``<x>.rng.<draw>()``
    in the file."""
    tainted_attrs: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            origin = _unseeded_rng_line(node.value)
            if origin is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    tainted_attrs[target.attr] = origin
    if not tainted_attrs:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in DRAW_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in tainted_attrs
        ):
            summary.taint_draws.append(
                TaintDraw(
                    path=summary.path,
                    line=node.lineno,
                    col=node.col_offset,
                    method=func.attr,
                    origin_line=tainted_attrs[func.value.attr],
                )
            )


class _Scope:
    """One function scope: local single-assignments, isinstance asserts,
    annotated parameters — the material payload resolution works with."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef | None) -> None:
        self.assignments: dict[str, list[ast.expr]] = {}
        self.asserted: dict[str, set[str]] = {}
        self.annotated: dict[str, str] = {}
        if node is not None:
            args = node.args
            all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in all_args:
                if arg.annotation is not None:
                    name = _annotation_class(arg.annotation)
                    if name is not None:
                        self.annotated[arg.arg] = name

    def index(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            for node in _walk_shallow(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        self.assignments.setdefault(target.id, []).append(node.value)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name):
                        self.assignments.setdefault(node.target.id, []).append(
                            node.value
                        )
                elif isinstance(node, ast.Assert):
                    self._index_assert(node.test)

    def _index_assert(self, test: ast.expr) -> None:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                self._index_assert(value)
            return
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
            and isinstance(test.args[0], ast.Name)
        ):
            classes = self.asserted.setdefault(test.args[0].id, set())
            second = test.args[1]
            candidates = (
                list(second.elts) if isinstance(second, ast.Tuple) else [second]
            )
            for candidate in candidates:
                name = _annotation_class(candidate)
                if name is not None:
                    classes.add(name)


def _annotation_class(annotation: ast.expr) -> str | None:
    """The class name an annotation/classref expression names."""
    if isinstance(annotation, ast.Subscript):
        return _annotation_class(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] or None
    return None


class _Extractor:
    def __init__(self, summary: FileSummary) -> None:
        self.summary = summary
        self.qual: list[str] = []
        self._visited: set[ast.AST] = set()

    # -- traversal ------------------------------------------------------
    def visit_module(self, tree: ast.Module) -> None:
        module_scope = _Scope(None)
        module_scope.index(tree.body)
        self._visit_body(tree.body, module_scope)

    def _visit_body(self, body: list[ast.stmt], scope: _Scope) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._visit_class(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(stmt)
            else:
                self._scan_statement(stmt, scope)
                self._visit_nested_defs(stmt)

    def _visit_nested_defs(self, root: ast.AST) -> None:
        """Defs hiding inside compound statements (``if TYPE_CHECKING:``
        blocks, loop bodies).  The visited set keeps a def from being
        entered twice when walks overlap."""
        for child in ast.walk(root):
            if child is root:
                continue
            if isinstance(child, ast.ClassDef):
                self._visit_class(child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(child)

    def _visit_class(self, node: ast.ClassDef) -> None:
        if node in self._visited:
            return
        self._visited.add(node)
        self._record_class(node)
        self.qual.append(node.name)
        class_scope = _Scope(None)
        class_scope.index(
            [
                s
                for s in node.body
                if not isinstance(
                    s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        )
        self._visit_body(node.body, class_scope)
        self.qual.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node in self._visited:
            return
        self._visited.add(node)
        self.qual.append(node.name)
        qualname = ".".join(self.qual)
        scope = _Scope(node)
        scope.index(node.body)
        self._record_function(node, qualname, scope)
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._scan_statement(stmt, scope, scope_name=qualname)
        self._visit_nested_defs(node)
        self.qual.pop()

    # -- class declarations --------------------------------------------
    def _record_class(self, node: ast.ClassDef) -> None:
        bases = tuple(
            name
            for name in (_annotation_class(base) for base in node.bases)
            if name is not None
        )
        registered = any(
            _annotation_class(dec) == "register_payload" for dec in node.decorator_list
        )
        category: str | None = None
        has_body_bytes = False
        body_bytes_line = node.lineno
        uses_model = True
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                value = stmt.value
                if (
                    value is not None
                    and any(
                        isinstance(t, ast.Name) and t.id == "category" for t in targets
                    )
                    and isinstance(value, ast.Attribute)
                ):
                    dotted = _dotted(value)
                    if dotted is not None and "CostCategory" in dotted.split("."):
                        category = value.attr
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "category":
                    # a @property category: declared, value not static
                    category = category or None
                if stmt.name == "body_bytes":
                    has_body_bytes = True
                    body_bytes_line = stmt.lineno
                    uses_model = _body_bytes_uses_model(stmt)
        self.summary.classes.append(
            ClassInfo(
                name=node.name,
                path=self.summary.path,
                line=node.lineno,
                col=node.col_offset,
                bases=bases,
                registered=registered,
                category=category,
                has_body_bytes=has_body_bytes,
                body_bytes_line=body_bytes_line,
                body_bytes_uses_model=uses_model,
            )
        )

    # -- functions, call graph, taint ----------------------------------
    def _record_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        scope: _Scope,
    ) -> None:
        args = node.args
        params = tuple(
            a.arg for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        drawn: set[str] = set()
        calls: set[str] = set()
        tainted_locals: dict[str, int] = {}  # name -> construction line
        for stmt in node.body:
            for sub in _walk_shallow(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if isinstance(func, ast.Name):
                    calls.add(func.id)
                elif isinstance(func, ast.Attribute):
                    calls.add(func.attr)
                    if func.attr in DRAW_METHODS and isinstance(func.value, ast.Name):
                        if func.value.id in params:
                            drawn.add(func.value.id)
        # Taint pass: unseeded constructions propagated to locals, then
        # draws on and onward argument passing of the tainted values.
        # (Attribute stores are handled file-wide by _extract_attr_taint.)
        for stmt in _walk_shallow(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                origin = _unseeded_rng_line(stmt.value)
                if origin is None:
                    continue
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    tainted_locals[target.id] = origin
        if tainted_locals:
            for stmt in _walk_shallow(node):
                if not isinstance(stmt, ast.Call):
                    continue
                func = stmt.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in DRAW_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in tainted_locals
                ):
                    self.summary.taint_draws.append(
                        TaintDraw(
                            path=self.summary.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            method=func.attr,
                            origin_line=tainted_locals[func.value.id],
                        )
                    )
                else:
                    self._record_tainted_args(stmt, tainted_locals)
        self.summary.functions.append(
            FunctionInfo(
                name=node.name,
                qualname=qualname,
                path=self.summary.path,
                line=node.lineno,
                params=params,
                drawn_params=tuple(sorted(drawn)),
                calls=tuple(sorted(calls)),
            )
        )

    def _record_tainted_args(
        self, call: ast.Call, tainted: dict[str, int]
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            callee, method_call = func.id, False
        elif isinstance(func, ast.Attribute):
            callee, method_call = func.attr, True
        else:
            return
        if callee in _RNG_CONSTRUCTORS or callee == "isinstance":
            return
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id in tainted:
                self.summary.tainted_arg_calls.append(
                    TaintedArgCall(
                        path=self.summary.path,
                        line=call.lineno,
                        col=call.col_offset,
                        callee=callee,
                        position=position,
                        keyword=None,
                        method_call=method_call,
                        origin_line=tainted[arg.id],
                    )
                )
        for kw in call.keywords:
            if (
                kw.arg is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id in tainted
            ):
                self.summary.tainted_arg_calls.append(
                    TaintedArgCall(
                        path=self.summary.path,
                        line=call.lineno,
                        col=call.col_offset,
                        callee=callee,
                        position=-1,
                        keyword=kw.arg,
                        method_call=method_call,
                        origin_line=tainted[kw.value.id],
                    )
                )

    # -- statement scan: sends, handlers, attrs, streams, accounting ---
    def _scan_statement(
        self, stmt: ast.stmt, scope: _Scope, scope_name: str = ""
    ) -> None:
        for node in _walk_shallow(stmt):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._record_attr_store(node, scope)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "send" and len(node.args) >= 2:
                self._record_site(
                    node, node.args[1], scope, scope_name, self.summary.send_sites
                )
            elif func.attr in _TRANSPORT_SENDERS and len(node.args) >= 3:
                self._record_site(
                    node, node.args[2], scope, scope_name, self.summary.send_sites
                )
            elif func.attr == "register_handler" and node.args:
                # The first argument is a *class reference*, not an
                # instance — a bare name there denotes the class.
                self._record_site(
                    node,
                    node.args[0],
                    scope,
                    scope_name,
                    self.summary.handler_sites,
                    class_position=True,
                )
            elif func.attr == "stream" and node.args:
                owner = _dotted(func.value)
                if owner is not None and any(
                    "rng" in part for part in owner.split(".")
                ):
                    arg = node.args[0]
                    name = (
                        arg.value
                        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                        else None
                    )
                    self.summary.rng_streams.append(
                        RngAcquisition(
                            path=self.summary.path,
                            line=node.lineno,
                            col=node.col_offset,
                            scope=scope_name,
                            name=name,
                        )
                    )
            elif func.attr in ("record", "bucket", "charge") and node.args:
                owner = _dotted(func.value)
                if owner is not None and any(
                    "accounting" in part for part in owner.split(".")
                ):
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if isinstance(arg, ast.Attribute):
                            dotted = _dotted(arg)
                            if dotted is not None and "CostCategory" in dotted.split(
                                "."
                            ):
                                self.summary.accounting_calls.append(
                                    AccountingCall(
                                        path=self.summary.path,
                                        line=node.lineno,
                                        col=node.col_offset,
                                        scope=scope_name,
                                        category=arg.attr,
                                    )
                                )
                                break

    def _record_attr_store(
        self, node: ast.Assign | ast.AnnAssign, scope: _Scope
    ) -> None:
        """``self.x = <class-denoting expr>`` feeds the attr table."""
        value = node.value
        if value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        attr_targets = [t.attr for t in targets if isinstance(t, ast.Attribute)]
        if not attr_targets:
            return
        refs, _ = _resolve_payload_expr(value, scope, allow_bare_name=True)
        class_names = {value for kind, value in refs if kind == "class"}
        if not class_names:
            return
        for attr in attr_targets:
            self.summary.attr_classes.setdefault(attr, set()).update(class_names)

    def _record_site(
        self,
        call: ast.Call,
        payload_expr: ast.expr,
        scope: _Scope,
        scope_name: str,
        sink: list[SiteRefs],
        class_position: bool = False,
    ) -> None:
        refs, resolved = _resolve_payload_expr(
            payload_expr, scope, allow_bare_name=class_position
        )
        sink.append(
            SiteRefs(
                path=self.summary.path,
                line=call.lineno,
                col=call.col_offset,
                scope=scope_name,
                refs=tuple(sorted(set(refs))),
                resolved=resolved,
            )
        )


def _body_bytes_uses_model(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``body_bytes`` reads its SizeModel parameter (or is an
    abstract raise, which is exempt)."""
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if len(positional) < 2:
        return True  # unconventional signature; out of scope
    model_name = positional[1].arg
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id == model_name and isinstance(
            node.ctx, ast.Load
        ):
            return True
    return False


def _unseeded_rng_line(value: ast.expr) -> int | None:
    """The line of an unseeded RNG construction, else None."""
    if not isinstance(value, ast.Call):
        return None
    name = None
    if isinstance(value.func, ast.Name):
        name = value.func.id
    elif isinstance(value.func, ast.Attribute):
        name = value.func.attr
    if name not in _RNG_CONSTRUCTORS:
        return None
    if value.args or value.keywords:
        return None  # seeded (or otherwise parameterised) — DET002's beat
    return value.lineno


_MAX_RESOLVE_DEPTH = 6


def _resolve_payload_expr(
    expr: ast.expr,
    scope: _Scope,
    allow_bare_name: bool = False,
    _depth: int = 0,
    _seen: frozenset[str] = frozenset(),
) -> tuple[list[Ref], bool]:
    """Resolve a payload expression to class/attr references.

    Returns ``(refs, resolved)``; ``resolved`` is False when the
    expression (or a branch of it) defeated the resolver, which the
    whole-program rules treat as "anything could flow here".
    """
    if _depth > _MAX_RESOLVE_DEPTH:
        return [], False
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id == "tagged" and expr.args:
                # tagged(Base, tag) constructs/denotes a Base subclass
                return _resolve_payload_expr(
                    expr.args[0], scope, True, _depth + 1, _seen
                )
            if func.id in scope.assignments and func.id not in _seen:
                return _resolve_local(func.id, scope, _depth, _seen)
            return [("class", func.id)], True
        if isinstance(func, ast.Attribute):
            if func.attr == "tagged" and expr.args:
                return _resolve_payload_expr(
                    expr.args[0], scope, True, _depth + 1, _seen
                )
            return [("attr", func.attr)], True
        return [], False
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in scope.asserted:
            return [("class", cls) for cls in sorted(scope.asserted[name])], True
        if name in scope.assignments and name not in _seen:
            return _resolve_local(name, scope, _depth, _seen)
        if name in scope.annotated:
            return [("class", scope.annotated[name])], True
        if allow_bare_name:
            # A bare name in class-denoting position (self.cls = Payload)
            return [("class", name)], True
        return [], False
    if isinstance(expr, ast.Attribute):
        return [("attr", expr.attr)], True
    if isinstance(expr, ast.IfExp):
        body_refs, body_ok = _resolve_payload_expr(
            expr.body, scope, allow_bare_name, _depth + 1, _seen
        )
        else_refs, else_ok = _resolve_payload_expr(
            expr.orelse, scope, allow_bare_name, _depth + 1, _seen
        )
        return body_refs + else_refs, body_ok and else_ok
    return [], False


def _resolve_local(
    name: str, scope: _Scope, depth: int, seen: frozenset[str]
) -> tuple[list[Ref], bool]:
    refs: list[Ref] = []
    resolved = True
    for value in scope.assignments[name]:
        sub_refs, sub_ok = _resolve_payload_expr(
            value, scope, True, depth + 1, seen | {name}
        )
        refs.extend(sub_refs)
        resolved = resolved and sub_ok
    return refs, resolved and bool(refs)


# ----------------------------------------------------------------------
# The assembled model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Symbol:
    """One entry of the symbol index."""

    name: str
    qualname: str
    kind: str  # 'class' | 'function'
    path: str
    line: int


class ProtocolModel:
    """Project-wide view assembled from per-file summaries."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        from repro.lint.graph import MessageFlowGraph

        self.summaries: dict[str, FileSummary] = {s.path: s for s in summaries}
        self.classes: dict[str, ClassInfo] = {}
        self.symbols: dict[str, list[Symbol]] = {}
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        self.call_graph: dict[str, tuple[str, ...]] = {}
        for summary in summaries:
            for cls in summary.classes:
                self.classes.setdefault(cls.name, cls)
                self.symbols.setdefault(cls.name, []).append(
                    Symbol(cls.name, cls.name, "class", cls.path, cls.line)
                )
            for fn in summary.functions:
                self.functions_by_name.setdefault(fn.name, []).append(fn)
                self.call_graph[f"{fn.path}::{fn.qualname}"] = fn.calls
                self.symbols.setdefault(fn.name, []).append(
                    Symbol(fn.name, fn.qualname, "function", fn.path, fn.line)
                )
        self.payload_classes = self._payload_closure()
        self.payload_attrs = self._payload_attr_table()
        self.flow = MessageFlowGraph.build(self)
        self.rng_streams: dict[str, list[RngAcquisition]] = {}
        for summary in summaries:
            for acq in summary.rng_streams:
                if acq.name is not None:
                    self.rng_streams.setdefault(acq.name, []).append(acq)

    @classmethod
    def build(cls, summaries: list[FileSummary]) -> "ProtocolModel":
        return cls(summaries)

    def _payload_closure(self) -> dict[str, ClassInfo]:
        """Transitive subclasses of ``Payload`` (by base-name chains)."""
        payload_names = {"Payload"}
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls.name in payload_names:
                    continue
                if any(base in payload_names for base in cls.bases):
                    payload_names.add(cls.name)
                    changed = True
        return {
            name: cls
            for name, cls in self.classes.items()
            if name in payload_names and name != "Payload"
        }

    def _payload_attr_table(self) -> dict[str, frozenset[str]]:
        merged: dict[str, set[str]] = {}
        for summary in self.summaries.values():
            for attr, names in summary.attr_classes.items():
                payloads = {n for n in names if n in self.payload_classes}
                if payloads:
                    merged.setdefault(attr, set()).update(payloads)
        return {attr: frozenset(names) for attr, names in merged.items()}

    # -- hierarchy helpers ---------------------------------------------
    def related_payloads(self, name: str) -> frozenset[str]:
        """``name`` plus its payload ancestors and descendants — the
        leniency window PROTO003 matches within (tagged() subclasses and
        resolution approximations collapse onto base names)."""
        related = {name}
        # ancestors
        frontier = [name]
        while frontier:
            current = frontier.pop()
            info = self.payload_classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                if base in self.payload_classes and base not in related:
                    related.add(base)
                    frontier.append(base)
        # descendants
        changed = True
        while changed:
            changed = False
            for cls in self.payload_classes.values():
                if cls.name in related:
                    continue
                if any(base in related for base in cls.bases):
                    related.add(cls.name)
                    changed = True
        return frozenset(related)
