"""Per-rule suppression comments.

Three forms, mirroring the linters people already know:

* ``# repro-lint: disable=DET001`` — suppress on this physical line;
* ``# repro-lint: disable-next=DET001,DET003`` — suppress on the next
  physical line (for lines too long to carry a trailing comment);
* ``# repro-lint: disable-file=PROTO002`` — suppress in the whole file.

Every suppression names its rules explicitly — there is no blanket
``disable=all``, because a suppression that outlives its reason should
start failing, loudly, when the rule it silenced is joined by a new one.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<rules>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)"
)


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether this file's directives silence the given finding."""
        if finding.rule in self.file_level:
            return True
        return finding.rule in self.by_line.get(finding.line, ())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``repro-lint`` directive from a module's comments.

    Tokenizes rather than regexing raw lines so that directive-looking
    text inside string literals is never misread as a directive.  A file
    that fails to tokenize yields no suppressions (the engine will report
    the syntax error separately).
    """
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            verb = match.group("verb")
            if verb == "disable-file":
                suppressions.file_level |= rules
            elif verb == "disable-next":
                line = token.start[0] + 1
                suppressions.by_line.setdefault(line, set()).update(rules)
            else:
                line = token.start[0]
                suppressions.by_line.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions
