"""Exception hierarchy for the netfilter-p2p library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling an
    event in the past, or running a simulation that was already stopped)."""


class NetworkError(ReproError):
    """A network-substrate invariant was violated (unknown peer, message to
    a departed node, malformed payload, ...)."""


class TopologyError(NetworkError):
    """An overlay topology could not be constructed as requested (e.g. a
    disconnected graph where a connected one is required)."""


class HierarchyError(ReproError):
    """The aggregation hierarchy is in an unexpected state (no root, a peer
    without an upstream neighbour outside of repair, ...)."""


class AggregationError(ReproError):
    """An aggregate computation failed or was configured inconsistently."""


class ProtocolError(ReproError):
    """A netFilter (or naive baseline) protocol run violated its own state
    machine — this always indicates a bug, never a legitimate runtime
    condition, and is therefore an exception rather than a result code."""


class RequestTimeoutError(ProtocolError):
    """A request/answer exchange missed its deadline.  The message names
    the peers whose traffic never arrived, so callers (and test
    assertions) can tell a lost request from a lost result."""


class ConfigurationError(ReproError):
    """User-supplied configuration is invalid (non-positive filter size,
    threshold ratio outside ``(0, 1]``, ...)."""


class WorkloadError(ReproError):
    """A workload generator was parameterized inconsistently."""


class ExperimentError(ReproError):
    """An experiment-harness invariant failed (soak oracle mismatch,
    staleness ceiling breached, non-monotone commits, ...)."""
