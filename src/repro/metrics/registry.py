"""In-process metric primitives: counters, gauges, timers, histograms.

The registry complements the event-level :class:`~repro.sim.trace.Tracer`:
where the tracer answers "what happened, when", the registry answers "how
much, how often, how long" without keeping one record per occurrence.  All
primitives are pure stdlib and O(1) per update (a histogram observation is
one ``bisect`` over a short bucket list), so protocols can update them on
hot paths even when no trace sink is attached.

Bucket convention follows Prometheus: a bucket is an inclusive upper bound
(``value <= bound``), the last bucket is always ``+inf``, and
``cumulative_counts`` are monotone.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from time import perf_counter
from typing import Any, Iterator, Sequence, TypeVar

_M = TypeVar("_M", "CounterMetric", "GaugeMetric", "HistogramMetric", "TimerMetric")

#: Default histogram buckets, in simulated time units (link latency is 1.0
#: by default, so these resolve one-hop through deep-tree round trips).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Default buckets for size-like quantities (bytes, counts).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)


class CounterMetric:
    """A monotonically increasing count.

    Examples
    --------
    >>> c = CounterMetric("msgs")
    >>> c.inc(); c.inc(2)
    >>> c.value
    3
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def as_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


class GaugeMetric:
    """A value that goes up and down (queue depth, live peers, ...)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def as_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class HistogramMetric:
    """Fixed-bucket histogram with inclusive upper bounds.

    The bucket list is closed with ``+inf`` automatically; an observation
    lands in the first bucket whose bound it does not exceed, so a value
    exactly on a boundary counts toward that boundary's bucket.

    Examples
    --------
    >>> h = HistogramMetric("lat", buckets=(1.0, 10.0))
    >>> for v in (0.5, 1.0, 3.0, 99.0):
    ...     h.observe(v)
    >>> h.bucket_counts
    [2, 1, 1]
    >>> h.count, h.total
    (4, 103.5)
    """

    __slots__ = (
        "name",
        "bounds",
        "bucket_counts",
        "count",
        "total",
        "min",
        "max",
        "_last_value",
        "_last_index",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # Memoized bucket index for the most recent value: metrics like
        # message latency observe long runs of identical values (zero
        # jitter), making the bisect redundant.  NaN never equals itself,
        # so the cache starts cold.
        self._last_value = math.nan
        self._last_index = 0

    def observe(self, value: float) -> None:
        if value == self._last_value:
            index = self._last_index
        else:
            index = bisect_left(self.bounds, value)
            self._last_value = value
            self._last_index = index
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_bulk(self, values: Any) -> None:
        """Merge a whole array of observations in one vectorized pass.

        Semantically identical to ``observe`` per element (``searchsorted``
        with ``side='left'`` is elementwise ``bisect_left``), but O(len +
        buckets) instead of one python call per value — the batched tier
        records a million per-peer samples through this without touching
        the hot path one value at a time.
        """
        import numpy as np

        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        indices = np.searchsorted(np.asarray(self.bounds), array, side="left")
        merged = np.bincount(indices, minlength=len(self.bucket_counts))
        for index, extra in enumerate(merged):
            if extra:
                self.bucket_counts[index] += int(extra)
        self.count += int(array.size)
        self.total += float(array.sum())
        low, high = float(array.min()), float(array.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style ``le`` counts (last entry equals ``count``)."""
        out, running = [], 0
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket containing
        the ``q``-th observation (``inf`` if it falls in the overflow
        bucket, ``nan`` when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            if running >= rank:
                return bound
        return math.inf

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def as_dict(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


class TimerMetric:
    """A histogram of durations with a context-manager front end.

    ``time()`` measures wall-clock seconds via ``perf_counter``; simulated
    durations are recorded with :meth:`observe` (the caller owns the
    simulated clock).

    Examples
    --------
    >>> t = TimerMetric("step", buckets=(0.1, 1.0))
    >>> with t.time():
    ...     pass
    >>> t.histogram.count
    1
    """

    __slots__ = ("name", "histogram")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        self.name = name
        self.histogram = HistogramMetric(name, buckets)

    def observe(self, duration: float) -> None:
        self.histogram.observe(duration)

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    def reset(self) -> None:
        self.histogram.reset()

    def as_dict(self) -> dict[str, object]:
        out = self.histogram.as_dict()
        out["type"] = "timer"
        return out


class _TimerContext:
    __slots__ = ("_timer", "_started", "elapsed")

    def __init__(self, timer: TimerMetric) -> None:
        self._timer = timer
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_TimerContext":
        # Timers measure wall time by design (see span wall_elapsed).
        self._started = perf_counter()  # repro-lint: disable=DET001
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = perf_counter() - self._started  # repro-lint: disable=DET001
        self._timer.observe(self.elapsed)


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("net.msgs").inc()`` either creates the counter or
    returns the existing one; asking for an existing name as a different
    metric type raises, because two components silently sharing a name is
    how metrics get corrupted.
    """

    def __init__(self) -> None:
        self._metrics: dict[
            str, CounterMetric | GaugeMetric | HistogramMetric | TimerMetric
        ] = {}

    def _get_or_create(self, name: str, cls: type[_M], *args: Any) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> HistogramMetric:
        return self._get_or_create(name, HistogramMetric, buckets)

    def timer(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> TimerMetric:
        return self._get_or_create(name, TimerMetric, buckets)

    def get(
        self, name: str
    ) -> CounterMetric | GaugeMetric | HistogramMetric | TimerMetric | None:
        """The metric registered under ``name`` (None if absent)."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Snapshot of every metric, JSON-ready, keyed by name."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Zero every metric (the metric objects stay registered, so held
        references remain valid across experiment sweeps)."""
        for metric in self._metrics.values():
            metric.reset()
