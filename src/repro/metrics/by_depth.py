"""Per-depth cost analysis (Section IV-A's bottleneck argument).

The paper argues that netFilter does not bottleneck the root: the
candidate-filtering cost is the same at every non-root peer, dissemination
at every non-leaf, and only candidate aggregation grows toward the root —
but stays small because few candidates survive filtering.  These helpers
slice the measured per-peer byte accounting by hierarchy depth so tests
and reports can check that argument against data instead of trusting it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.metrics.accounting import CostAccounting
from repro.net.wire import NETFILTER_CATEGORIES, CostCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.hierarchy.builder import Hierarchy


def bytes_by_depth(
    accounting: CostAccounting,
    hierarchy: "Hierarchy",
    categories: tuple[CostCategory, ...] | None = None,
) -> dict[int, float]:
    """Average bytes sent per peer, grouped by the peer's hierarchy depth.

    Peers that sent nothing still count in their depth's average.
    """
    selected = categories if categories is not None else NETFILTER_CATEGORIES
    per_peer = accounting.per_peer_bytes(*selected)
    totals: dict[int, float] = defaultdict(float)
    counts: dict[int, int] = defaultdict(int)
    for peer in hierarchy.participants():
        depth = hierarchy.depth_of(peer)
        totals[depth] += per_peer.get(peer, 0)
        counts[depth] += 1
    return {
        depth: totals[depth] / counts[depth] for depth in sorted(counts)
    }


def bottleneck_ratio(
    accounting: CostAccounting,
    hierarchy: "Hierarchy",
    categories: tuple[CostCategory, ...] | None = None,
) -> float:
    """Heaviest single peer's bytes over the population average.

    The paper's claim translates to this ratio staying small (a true
    bottleneck protocol — e.g. every peer unicasting to the root — would
    put the entire population's traffic on a handful of peers).
    """
    selected = categories if categories is not None else NETFILTER_CATEGORIES
    per_peer = accounting.per_peer_bytes(*selected)
    participants = hierarchy.participants()
    if not participants:
        return 0.0
    total = sum(per_peer.get(peer, 0) for peer in participants)
    if total == 0:
        return 0.0
    mean = total / len(participants)
    heaviest = max(per_peer.get(peer, 0) for peer in participants)
    return heaviest / mean
