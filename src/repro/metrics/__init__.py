"""Measurement: byte accounting and cost breakdowns.

The paper's single performance metric (Section IV) is *the average number
of bytes propagated per peer*, split into candidate-filtering,
candidate-dissemination and candidate-aggregation cost.  This package
measures that metric directly from transport activity
(:class:`~repro.metrics.accounting.CostAccounting`) and summarizes it
(:class:`~repro.metrics.breakdown.CostBreakdown`).
"""

from repro.metrics.accounting import CostAccounting
from repro.metrics.breakdown import CostBreakdown
from repro.metrics.by_depth import bottleneck_ratio, bytes_by_depth
from repro.metrics.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    TimerMetric,
)

__all__ = [
    "CostAccounting",
    "CostBreakdown",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "TimerMetric",
    "bottleneck_ratio",
    "bytes_by_depth",
]
