"""Per-peer, per-category byte accounting.

The transport calls :meth:`CostAccounting.record` once per sent message;
everything else (totals, averages, breakdowns) is derived.  Costs are
attributed to the *sender*, matching the paper's definition of
"bytes propagated per peer".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.net.wire import NETFILTER_CATEGORIES, CostCategory


class MessageCell:
    """A mutable per-category message count.

    Handed out by :meth:`CostAccounting.message_cell` so the transport can
    count a sent message with one attribute increment instead of a dict
    walk.  The cell object is stable across :meth:`CostAccounting.reset`
    (the count is zeroed in place), so cached references never go stale.
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0


class CostAccounting:
    """Accumulates bytes and message counts sent per peer per category.

    Examples
    --------
    >>> acc = CostAccounting()
    >>> acc.record(peer=1, category=CostCategory.FILTERING, size=1200)
    >>> acc.record(peer=2, category=CostCategory.FILTERING, size=1200)
    >>> acc.total_bytes(CostCategory.FILTERING)
    2400
    >>> acc.average_bytes_per_peer(n_peers=4, categories=[CostCategory.FILTERING])
    600.0
    """

    def __init__(self) -> None:
        self._bytes: dict[CostCategory, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._messages: dict[CostCategory, MessageCell] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, peer: int, category: CostCategory, size: int) -> None:
        """Charge ``size`` bytes sent by ``peer`` to ``category``."""
        self._bytes[category][peer] += size
        self.message_cell(category).n += 1

    def bucket(self, category: CostCategory) -> dict[int, int]:
        """The live per-peer byte map for one category.

        Hot-path handle for the transport: charging a message becomes
        ``bucket[peer] += size`` on the returned (default-)dict.  The
        mapping is stable across :meth:`reset` — it is emptied in place —
        so callers may cache it for the lifetime of the accounting.
        """
        return self._bytes[category]

    def message_cell(self, category: CostCategory) -> MessageCell:
        """The live :class:`MessageCell` for one category (see
        :meth:`bucket` for the caching contract)."""
        cell = self._messages.get(category)
        if cell is None:
            cell = self._messages[category] = MessageCell()
        return cell

    def reset(self) -> None:
        """Forget everything recorded so far.

        Buckets and message cells are cleared *in place* rather than
        dropped, so handles interned by the transport stay live.
        """
        for per_peer in self._bytes.values():
            per_peer.clear()
        for cell in self._messages.values():
            cell.n = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    # Every query takes the categories to select over either as varargs
    # (``total_bytes(CostCategory.FILTERING, ...)``) or as one explicit
    # iterable (``total_bytes([])``).  No arguments means *all* categories;
    # an explicit empty iterable means an empty selection — zero bytes, zero
    # messages — never silently "all".
    def _select(
        self, categories: tuple, default: Iterable[CostCategory]
    ) -> tuple[CostCategory, ...]:
        if len(categories) == 1 and not isinstance(categories[0], CostCategory):
            return tuple(categories[0])
        if categories:
            return categories
        return tuple(default)

    def total_bytes(
        self, *categories: CostCategory | Iterable[CostCategory]
    ) -> int:
        """Total bytes over the given categories (all categories if none)."""
        selected = self._select(categories, self._bytes)
        return sum(
            sum(self._bytes.get(category, {}).values()) for category in selected
        )

    def message_count(
        self, *categories: CostCategory | Iterable[CostCategory]
    ) -> int:
        """Total messages over the given categories (all if none given)."""
        selected = self._select(categories, self._messages)
        total = 0
        for cat in selected:
            cell = self._messages.get(cat)
            if cell is not None:
                total += cell.n
        return total

    def bytes_by_category(self) -> dict[CostCategory, int]:
        """Total bytes per category (categories with no recorded bytes —
        e.g. right after :meth:`reset` — are omitted)."""
        return {
            cat: sum(per_peer.values())
            for cat, per_peer in self._bytes.items()
            if per_peer
        }

    def per_peer_bytes(
        self, *categories: CostCategory | Iterable[CostCategory]
    ) -> dict[int, int]:
        """Bytes sent by each peer over the given categories."""
        selected = self._select(categories, self._bytes)
        out: dict[int, int] = defaultdict(int)
        for cat in selected:
            for peer, size in self._bytes.get(cat, {}).items():
                out[peer] += size
        return dict(out)

    def peer_bytes(
        self, peer: int, *categories: CostCategory | Iterable[CostCategory]
    ) -> int:
        """Bytes sent by one peer over the given categories."""
        selected = self._select(categories, self._bytes)
        return sum(self._bytes.get(cat, {}).get(peer, 0) for cat in selected)

    def average_bytes_per_peer(
        self,
        n_peers: int,
        categories: tuple[CostCategory, ...] | list[CostCategory] | None = None,
    ) -> float:
        """The paper's metric: total bytes divided by the peer population.

        Note the divisor is the full population ``n_peers``, not only the
        peers that happened to transmit — a peer that sent nothing still
        counts in the average, exactly as in the paper's formulation.
        An explicit empty ``categories`` selects nothing and yields 0.0.
        """
        if n_peers <= 0:
            raise ValueError(f"n_peers must be positive, got {n_peers}")
        if categories is None:
            return self.total_bytes() / n_peers
        return self.total_bytes(tuple(categories)) / n_peers

    def netfilter_average(self, n_peers: int) -> float:
        """Average per-peer bytes over the three netFilter categories."""
        return self.average_bytes_per_peer(n_peers, NETFILTER_CATEGORIES)

    def max_peer_bytes(self, *categories: CostCategory) -> int:
        """The heaviest-loaded peer's byte count (bottleneck analysis,
        Section IV-A's 'no bottleneck at the root' claim)."""
        per_peer = self.per_peer_bytes(*categories)
        return max(per_peer.values(), default=0)
