"""Windowed epoch timeseries over the metrics registry.

The registry answers "how much, total"; continuous monitoring
(ROADMAP item 3) needs "how much, *per window*": staleness between
epochs, recall over time, changed-groups per monitoring round.  An
:class:`EpochTimeseries` slices simulated time into fixed-length epochs
and, at each boundary, snapshots

* **counter deltas** — the increase of every tracked registry counter
  since the previous boundary, and
* **probe values** — gauge-style values recorded explicitly via
  :meth:`record` (latest value wins within an epoch) or accumulated via
  :meth:`add`,

into a bounded ring buffer (:class:`EpochSnapshot` rows, oldest evicted
first), so a week-long continuous run costs ``capacity`` rows of memory,
not one row per epoch.

Epochs roll *lazily*: every :meth:`record`/:meth:`add`/:meth:`roll` call
first closes any epochs the clock has passed.  There is no periodic
timer on the simulation — a scheduled ticker would keep
``sim.run()``-to-exhaustion from ever draining, and lazy rolling is
exactly as accurate because nothing can be observed between calls.
Empty gap epochs (no activity at all) are materialised on the next call,
so rows are contiguous and "no change this epoch" is distinguishable
from "series not yet started".

Each closed epoch also emits one ``epoch.snapshot`` trace event (guarded
by the tracer's ``active`` predicate), so JSONL traces carry the full
timeseries for offline plots and the run-report CLI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.metrics.registry import MetricsRegistry
    from repro.sim.trace import Tracer

#: Default ring capacity: enough for a long continuous run's recent
#: history while keeping worst-case memory trivially bounded.
DEFAULT_CAPACITY = 512


@dataclass
class EpochSnapshot:
    """One closed epoch: ``[start, start + length)`` in simulated time."""

    index: int
    start: float
    length: float
    #: Per-counter increase over this epoch (tracked counters only).
    deltas: dict[str, int] = field(default_factory=dict)
    #: Probe values recorded during this epoch (latest / accumulated).
    probes: dict[str, float] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.length

    def as_dict(self) -> dict[str, object]:
        return {
            "epoch": self.index,
            "start": self.start,
            "length": self.length,
            "deltas": dict(self.deltas),
            "probes": dict(self.probes),
        }


class EpochTimeseries:
    """Fixed-length sim-time epochs over counters and explicit probes.

    Examples
    --------
    >>> from repro.sim.engine import Simulation
    >>> sim = Simulation(seed=0)
    >>> ts = sim.telemetry.enable_epochs(epoch_length=10.0)
    >>> ts.track_counter(sim.telemetry.registry.counter("hits").name)
    >>> sim.telemetry.registry.counter("hits").inc(3)
    >>> ts.record("staleness", 2.5)
    >>> _ = sim.schedule(25.0, lambda: None); _ = sim.run()
    >>> ts.roll()
    >>> [s.deltas["hits"] for s in ts.epochs()]
    [3, 0]
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        tracer: "Tracer",
        clock,
        epoch_length: float,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if epoch_length <= 0.0:
            raise ValueError(f"epoch_length must be positive, got {epoch_length}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._registry = registry
        self._tracer = tracer
        self._clock = clock  # zero-arg callable returning sim time
        self.epoch_length = float(epoch_length)
        self.capacity = capacity
        self._ring: deque[EpochSnapshot] = deque(maxlen=capacity)
        self._tracked: list[str] = []
        self._marks: dict[str, int] = {}
        self._probes: dict[str, float] = {}
        self._epoch_start = float(clock())
        self._epoch_index = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def track_counter(self, name: str) -> None:
        """Snapshot this registry counter's per-epoch delta from now on.

        The counter's current value becomes the baseline — history before
        tracking starts is not attributed to the first epoch.
        """
        if name in self._marks:
            return
        self._tracked.append(name)
        self._marks[name] = self._counter_value(name)

    def _counter_value(self, name: str) -> int:
        metric = self._registry.get(name)
        value = getattr(metric, "value", 0)
        return int(value) if isinstance(value, (int, float)) else 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, name: str, value: float) -> None:
        """Set probe ``name`` for the current epoch (latest value wins)."""
        self.roll()
        self._probes[name] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate into probe ``name`` within the current epoch."""
        self.roll()
        self._probes[name] = self._probes.get(name, 0.0) + float(amount)

    # ------------------------------------------------------------------
    # Rolling
    # ------------------------------------------------------------------
    def roll(self) -> None:
        """Close every epoch the simulated clock has fully passed."""
        now = self._clock()
        while now >= self._epoch_start + self.epoch_length:
            self._close_epoch()

    def _close_epoch(self) -> None:
        deltas: dict[str, int] = {}
        for name in self._tracked:
            current = self._counter_value(name)
            deltas[name] = current - self._marks[name]
            self._marks[name] = current
        snapshot = EpochSnapshot(
            index=self._epoch_index,
            start=self._epoch_start,
            length=self.epoch_length,
            deltas=deltas,
            probes=self._probes,
        )
        self._ring.append(snapshot)
        # The snapshot dicts exist for the ring either way, so this emit
        # needs no active-guard: quiet, it is one counter increment.
        self._tracer.emit(
            snapshot.end,
            "epoch.snapshot",
            epoch=snapshot.index,
            start=snapshot.start,
            length=snapshot.length,
            deltas=deltas,
            probes=snapshot.probes,
        )
        self._probes = {}
        self._epoch_start += self.epoch_length
        self._epoch_index += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def epochs(self) -> tuple[EpochSnapshot, ...]:
        """Closed epochs currently held in the ring, oldest first."""
        return tuple(self._ring)

    @property
    def current_epoch(self) -> int:
        """Index of the (still open) current epoch."""
        return self._epoch_index

    def series(self, probe: str) -> list[tuple[int, float]]:
        """``(epoch index, value)`` pairs for one probe across the ring,
        skipping epochs where the probe was not recorded."""
        return [
            (snap.index, snap.probes[probe])
            for snap in self._ring
            if probe in snap.probes
        ]

    def delta_series(self, counter: str) -> list[tuple[int, int]]:
        """``(epoch index, delta)`` pairs for one tracked counter."""
        return [
            (snap.index, snap.deltas[counter])
            for snap in self._ring
            if counter in snap.deltas
        ]

    def latest(self, probe: str) -> float | None:
        """Most recent closed-epoch value of ``probe`` (None if never)."""
        for snap in reversed(self._ring):
            if probe in snap.probes:
                return snap.probes[probe]
        return None

    def reset(self) -> None:
        """Drop history and restart epoch numbering at the current time.

        Tracked counter names persist; their baselines re-mark at the
        counters' current values.
        """
        self._ring.clear()
        self._probes = {}
        self._epoch_start = float(self._clock())
        self._epoch_index = 0
        for name in self._tracked:
            self._marks[name] = self._counter_value(name)
