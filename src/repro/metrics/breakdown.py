"""Cost breakdown summaries.

A :class:`CostBreakdown` is an immutable snapshot of the paper's reported
quantities for one protocol run: the three component costs, their total,
and the supporting counts (candidates, heavy groups, results).  Experiment
modules build one per trial and the report layer renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.accounting import CostAccounting
from repro.net.wire import NETFILTER_CATEGORIES, CostCategory


@dataclass(frozen=True)
class CostBreakdown:
    """Average per-peer byte costs for one netFilter (or naive) run.

    All values are *averages per peer* in bytes, matching the y-axes of
    Figures 5(b), 6(b), 7 and 8 of the paper.
    """

    filtering: float = 0.0
    dissemination: float = 0.0
    aggregation: float = 0.0
    control: float = 0.0
    naive: float = 0.0
    sampling: float = 0.0
    gossip: float = 0.0
    sketch: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """The netFilter total the paper reports: filtering +
        dissemination + aggregation (control traffic excluded, as in
        Section IV)."""
        return self.filtering + self.dissemination + self.aggregation

    @property
    def grand_total(self) -> float:
        """Everything measured, including control/sampling/gossip/naive."""
        return (
            self.total
            + self.control
            + self.naive
            + self.sampling
            + self.gossip
            + self.sketch
        )

    @classmethod
    def from_accounting(cls, accounting: CostAccounting, n_peers: int) -> "CostBreakdown":
        """Summarize a :class:`CostAccounting` into per-peer averages."""

        def avg(category: CostCategory) -> float:
            return accounting.average_bytes_per_peer(n_peers, (category,))

        return cls(
            filtering=avg(CostCategory.FILTERING),
            dissemination=avg(CostCategory.DISSEMINATION),
            aggregation=avg(CostCategory.AGGREGATION),
            control=avg(CostCategory.CONTROL),
            naive=avg(CostCategory.NAIVE),
            sampling=avg(CostCategory.SAMPLING),
            gossip=avg(CostCategory.GOSSIP),
            sketch=avg(CostCategory.SKETCH),
        )

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary (used by the experiment report tables)."""
        return {
            "filtering": self.filtering,
            "dissemination": self.dissemination,
            "aggregation": self.aggregation,
            "total": self.total,
            "control": self.control,
            "naive": self.naive,
            "sampling": self.sampling,
            "gossip": self.gossip,
            "sketch": self.sketch,
            **self.extras,
        }

    def __str__(self) -> str:
        return (
            f"CostBreakdown(total={self.total:.1f} B/peer: "
            f"filtering={self.filtering:.1f}, "
            f"dissemination={self.dissemination:.1f}, "
            f"aggregation={self.aggregation:.1f})"
        )


NETFILTER_TOTAL_CATEGORIES = NETFILTER_CATEGORIES
"""Re-exported for callers that need the category tuple with the breakdown."""
