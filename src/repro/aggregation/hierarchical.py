"""Hierarchical aggregate computation (Section III-A.2).

One *session* computes one aggregate: the request travels from the root
down the hierarchy; leaves answer with their local contribution; each
internal node merges its children's replies with its own contribution and
forwards the merged value upstream; the root ends with the global
aggregate.

Fault tolerance: a node that forwarded the request to its children arms a
timeout; if some child never answers (it failed, or its subtree is mid
repair), the node proceeds with the contributions it has.  Under churn the
aggregate is then computed over the reachable subtree — the behaviour the
paper accepts for hierarchical aggregation and mitigates by recruiting
stable peers.

That silent degradation is what the *coverage accounting* here turns into
a detected condition: every reply carries the number of peers folded into
it, so each merge — and ultimately the root — knows exactly how many of
the live peers it covered.  The root-side :class:`SessionHandle` exposes
``covered`` / ``expected`` / ``coverage`` / ``complete``, and a session
that ends short of full coverage emits an ``aggregation.incomplete``
trace.  A *hardened* engine additionally re-probes missing children once
before giving up on them (recovering from a lost request, a lost reply,
or a child that revived in the meantime: a node that already replied
answers a duplicate request by re-sending its stored reply).

The engine installs one :class:`AggregationService` per participant and
multiplexes any number of concurrent sessions over them (needed both for
netFilter's two phases and for Section III-A.1's concurrent-request
sharing).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.aggregation.spec import AggregateSpec
from repro.errors import AggregationError
from repro.hierarchy.builder import Hierarchy
from repro.hierarchy.generation import fence_stale
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel
from repro.sim.timers import Timeout


@register_payload
@dataclass(frozen=True, eq=False)
class AggRequestPayload(Payload):
    """Down-sweep: "compute this aggregate; here is the request data".

    ``generation`` is the sender's hierarchy fencing epoch (see
    :mod:`repro.hierarchy.generation`): a request issued against a
    superseded tree is dropped-and-counted by receivers that already
    joined a newer one.  Like ``covered`` on the reply, the counter is
    not priced in the base payload (the paper's cost model covers the
    request data only); :class:`CoverageAggReplyPayload` prices the
    hardened engine's metadata honestly on the reply path.
    """

    session_id: int
    spec: AggregateSpec
    request_data: Any
    generation: int = 0

    @property
    def category(self) -> CostCategory:  # type: ignore[override]
        return self.spec.down_category

    def body_bytes(self, model: SizeModel) -> int:
        return self.spec.request_bytes(self.request_data, model)


@register_payload
@dataclass(frozen=True, eq=False)
class AggReplyPayload(Payload):
    """Up-sweep: the merged aggregate of the sender's subtree.

    ``covered`` counts the peers whose contributions are folded into
    ``value`` (the sender plus its merged descendants).  The base payload
    does not price the counter — the paper's cost model covers the
    aggregate value only; :class:`CoverageAggReplyPayload` (used by
    hardened engines) charges it honestly.
    """

    session_id: int
    spec: AggregateSpec
    value: Any
    covered: int = 1
    generation: int = 0

    @property
    def category(self) -> CostCategory:  # type: ignore[override]
        return self.spec.up_category

    def body_bytes(self, model: SizeModel) -> int:
        return self.spec.combiner.size_bytes(self.value, model)


@register_payload
@dataclass(frozen=True, eq=False)
class CoverageAggReplyPayload(AggReplyPayload):
    """Hardened up-sweep reply: prices the metadata it carries.

    Same fields as :class:`AggReplyPayload`; two extra aggregate-sized
    integers on the wire (the coverage counter and the generation stamp),
    charged to the spec's up-category so robustness runs measure the true
    cost of coverage accounting and generation fencing.
    """

    def body_bytes(self, model: SizeModel) -> int:
        return super().body_bytes(model) + 2 * model.aggregate_bytes


class SessionHandle:
    """Root-side view of one aggregation session."""

    def __init__(self, session_id: int, spec: AggregateSpec) -> None:
        self.session_id = session_id
        self.spec = spec
        self.done = False
        self.value: Any = None
        self.started_at: float = 0.0
        #: Peers whose contributions reached the root.
        self.covered: int = 0
        #: Live peers at session start — what a complete session covers.
        self.expected: int = 0
        #: The session lost its root (it died, or failover replaced it)
        #: before the aggregate arrived — the value is unusable and the
        #: caller must re-issue against the new root.
        self.failed: bool = False
        #: Causal span id of this session (0 when span tracking is off).
        self.span: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of the live population this session covered."""
        if self.expected <= 0:
            return 1.0
        return self.covered / self.expected

    @property
    def complete(self) -> bool:
        """Whether every live peer's contribution reached the root."""
        return self.done and not self.failed and self.covered >= self.expected

    def _complete(self, value: Any, covered: int) -> None:
        self.done = True
        self.value = value
        self.covered = covered


@dataclass
class _NodeSessionState:
    """Per-node bookkeeping for one in-flight session."""

    spec: AggregateSpec
    request_data: Any
    parent: int | None
    generation: int = 0
    waiting_on: set[int] = field(default_factory=set)
    received: list[Any] = field(default_factory=list)
    received_covered: list[int] = field(default_factory=list)
    timeout: Timeout | None = None
    replied: bool = False
    reprobed: bool = False
    # The merged reply, kept after replying so a duplicate request (a
    # parent re-probing after its timeout) can be answered by re-sending
    # rather than silently ignored.
    reply_value: Any = None
    reply_covered: int = 0
    # Causal span of this node's convergecast participation (0 when span
    # tracking is off); owned by the node's peer id, so a crash closes it.
    span: int = 0


class AggregationService:
    """The per-node participant logic, shared by all sessions."""

    def __init__(self, engine: "AggregationEngine", node: Node) -> None:
        self._engine = engine
        self._node = node
        self._sessions: dict[int, _NodeSessionState] = {}
        node.register_handler(engine.request_cls, self._handle_request)
        node.register_handler(engine.reply_cls, self._handle_reply)

    # ------------------------------------------------------------------
    # Request handling (down-sweep)
    # ------------------------------------------------------------------
    def _handle_request(self, message: Message) -> None:
        payload = message.payload
        assert isinstance(payload, AggRequestPayload)
        if fence_stale(
            self._node.network.sim,
            context="agg_request",
            peer=self._node.peer_id,
            sender=message.sender,
            msg_generation=payload.generation,
            local_generation=self._engine.hierarchy.generation_of(self._node.peer_id),
        ):
            return
        self.begin_session(
            payload.session_id,
            payload.spec,
            payload.request_data,
            parent=message.sender,
            generation=payload.generation,
        )

    def begin_session(
        self,
        session_id: int,
        spec: AggregateSpec,
        request_data: Any,
        parent: int | None,
        generation: int = 0,
    ) -> None:
        """Join a session: forward the request to children, then reply once
        every child answered (or timed out).  Called with ``parent=None``
        on the root by the engine."""
        state = self._sessions.get(session_id)
        if state is not None:
            # Duplicate request: either a transient artefact of repair, or
            # a parent re-probing because our reply never arrived.  If we
            # already replied, answer it by re-sending the stored reply;
            # if we are still collecting, the eventual reply answers it.
            if state.replied and parent is not None and parent == state.parent:
                self._send_reply(session_id, state)
            return
        hierarchy = self._engine.hierarchy
        network = self._node.network
        children = {
            child
            for child in hierarchy.children_of(self._node.peer_id)
            if network.node(child).alive
        }
        state = _NodeSessionState(
            spec=spec,
            request_data=request_data,
            parent=parent,
            generation=generation,
            waiting_on=children,
        )
        self._sessions[session_id] = state
        # The convergecast span parents to the causal context that started
        # it: the session span on the root, the delivering request's wire
        # span elsewhere.  It closes in _reply (or via the crash sweep /
        # shutdown sweep if this node never gets to reply).
        spans = network.sim.telemetry.spans
        state.span = spans.open(
            "agg.node",
            peer=self._node.peer_id,
            session=session_id,
            depth=hierarchy.depth_of(self._node.peer_id),
        )
        previous = spans.activate(state.span) if state.span else 0
        if children:
            request = self._engine.request_cls(
                session_id=session_id,
                spec=spec,
                request_data=request_data,
                generation=state.generation,
            )
            for child in sorted(children):
                self._node.send(child, request)
            # Stagger deadlines by depth: a node's patience must exceed its
            # children's, or parents give up while their subtrees are still
            # (legitimately) collecting and the partial results are lost.
            own_depth = min(
                max(hierarchy.depth_of(self._node.peer_id), 0), network.n_peers
            )
            duration = self._engine.child_timeout / (own_depth + 1)
            state.timeout = Timeout(
                network.sim,
                duration,
                lambda sid=session_id: self._give_up_waiting(sid),
            )
            state.timeout.reset()
        else:
            self._reply(session_id)
        if state.span:
            spans.restore(previous)

    # ------------------------------------------------------------------
    # Reply handling (up-sweep)
    # ------------------------------------------------------------------
    def _handle_reply(self, message: Message) -> None:
        payload = message.payload
        assert isinstance(payload, AggReplyPayload)
        if fence_stale(
            self._node.network.sim,
            context="agg_reply",
            peer=self._node.peer_id,
            sender=message.sender,
            msg_generation=payload.generation,
            local_generation=self._engine.hierarchy.generation_of(self._node.peer_id),
        ):
            return
        state = self._sessions.get(payload.session_id)
        if state is None or state.replied:
            return  # late reply after timeout — already merged without it
        if message.sender not in state.waiting_on:
            return  # duplicate
        state.waiting_on.discard(message.sender)
        state.received.append(payload.value)
        state.received_covered.append(payload.covered)
        if not state.waiting_on:
            if state.timeout is not None:
                state.timeout.cancel()
            self._reply(payload.session_id)

    def _give_up_waiting(self, session_id: int) -> None:
        state = self._sessions.get(session_id)
        if state is None or state.replied:
            return
        sim = self._node.network.sim
        if self._engine.hardened and not state.reprobed and state.waiting_on:
            # One bounded re-probe before proceeding without the missing
            # children: recovers a lost request, a lost reply (the child
            # re-sends its stored reply), or a child that crashed and
            # revived within the window — and buys a slow subtree one more
            # timeout period.
            state.reprobed = True
            sim.trace.emit(
                sim.now,
                "aggregation.reprobe",
                peer=self._node.peer_id,
                session=session_id,
                missing=len(state.waiting_on),
            )
            sim.telemetry.registry.counter("aggregation.reprobes").inc()
            request = self._engine.request_cls(
                session_id=session_id,
                spec=state.spec,
                request_data=state.request_data,
                generation=state.generation,
            )
            # Re-probe copies are caused by this node's convergecast span
            # (the timer fired outside any delivery context).
            spans = sim.telemetry.spans
            previous = spans.activate(state.span) if state.span else 0
            for child in sorted(state.waiting_on):
                self._node.send(child, request)
            if state.span:
                spans.restore(previous)
            assert state.timeout is not None
            state.timeout.reset()
            return
        sim.trace.emit(
            sim.now,
            "aggregation.child_timeout",
            peer=self._node.peer_id,
            session=session_id,
            missing=len(state.waiting_on),
        )
        self._reply(session_id)

    def _reply(self, session_id: int) -> None:
        state = self._sessions[session_id]
        state.replied = True
        own = state.spec.contribute(self._node, state.request_data)
        value = state.spec.combiner.combine_many([own, *state.received])
        covered = 1 + sum(state.received_covered)
        state.reply_value = value
        state.reply_covered = covered
        # The input that completed this merge (the last child reply's wire
        # span, or 0 when a timeout forced the merge) becomes the span's
        # ``cause``; the outgoing reply is sent with this node's span as
        # context so its wire span parents here.
        spans = self._node.network.sim.telemetry.spans
        cause = spans.current
        if cause == state.span:
            # A leaf replies synchronously inside begin_session, where its
            # own span is already current: no separate input caused it.
            cause = 0
        previous = spans.activate(state.span) if state.span else 0
        if state.parent is None:
            self._engine._complete(session_id, value, covered)
        else:
            self._send_reply(session_id, state)
        if state.span:
            spans.restore(previous)
            spans.close(
                state.span, cause=cause, covered=covered, missing=len(state.waiting_on)
            )
        # Free the merged child contributions; keep the entry (and the
        # combined reply) so duplicate requests stay idempotent and
        # re-probes can be answered.
        state.received.clear()
        state.received_covered.clear()

    def _send_reply(self, session_id: int, state: _NodeSessionState) -> None:
        assert state.parent is not None
        self._node.send(
            state.parent,
            self._engine.reply_cls(
                session_id=session_id,
                spec=state.spec,
                value=state.reply_value,
                covered=state.reply_covered,
                generation=state.generation,
            ),
        )


class AggregationEngine:
    """Runs aggregation sessions over a built hierarchy.

    Parameters
    ----------
    hierarchy:
        The hierarchy to aggregate over.  One engine per hierarchy — the
        engine registers the aggregation payload handlers on every
        participant (and on peers that join later).
    child_timeout:
        How long a node waits for its children before proceeding without
        the missing ones.  Only matters under churn.
    hardened:
        Enable the recovery behaviours: one bounded re-probe of children
        missing at timeout, and coverage counters priced on the wire
        (:class:`CoverageAggReplyPayload`).  Coverage *accounting* is
        always on — an unhardened engine still detects and reports
        incomplete sessions; it just does not try to recover.

    Examples
    --------
    See :func:`repro.aggregation.hierarchical.scalar_total_spec` and the
    tests in ``tests/aggregation/test_hierarchical.py``.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        child_timeout: float = 300.0,
        hardened: bool = False,
    ) -> None:
        from repro.net.tagging import tagged

        self.hierarchy = hierarchy
        self.network = hierarchy.network
        self.sim = hierarchy.network.sim
        self.child_timeout = child_timeout
        self.hardened = hardened
        # Engines over differently-tagged hierarchies (Section III-A.1's
        # redundant hierarchies) use distinct payload types so their
        # sessions never collide in the node dispatch tables.
        self.request_cls = tagged(AggRequestPayload, hierarchy.tag)
        reply_base: type[AggReplyPayload] = (
            CoverageAggReplyPayload if hardened else AggReplyPayload
        )
        self.reply_cls = tagged(reply_base, hierarchy.tag)
        self._session_ids = itertools.count(1)
        self._handles: dict[int, SessionHandle] = {}
        self._callbacks: dict[int, Callable[[Any], None]] = {}
        self._services: dict[int, AggregationService] = {
            peer: AggregationService(self, self.network.node(peer))
            for peer in hierarchy.participants()
        }
        self.network.on_join(self._integrate_new_peer)

    def _integrate_new_peer(self, peer: int) -> None:
        self._services[peer] = AggregationService(self, self.network.node(peer))

    # ------------------------------------------------------------------
    # Session API
    # ------------------------------------------------------------------
    def start(
        self,
        spec: AggregateSpec,
        request_data: Any = None,
        callback: Callable[[Any], None] | None = None,
    ) -> SessionHandle:
        """Begin a session at the root; returns immediately with a handle
        that completes when the root has the global aggregate."""
        if not self.network.node(self.hierarchy.root).alive:
            raise AggregationError("cannot start a session: the root is down")
        session_id = next(self._session_ids)
        handle = SessionHandle(session_id, spec)
        handle.started_at = self.sim.now
        handle.expected = self.network.n_live_peers
        self.sim.trace.emit(
            self.sim.now, "aggregation.start", session=session_id, spec=spec.name
        )
        self._handles[session_id] = handle
        if callback is not None:
            self._callbacks[session_id] = callback
        root_service = self._services.get(self.hierarchy.root)
        if root_service is None:
            raise AggregationError("root has no aggregation service (is it alive?)")
        # The session span parents to whatever phase span is current (the
        # netFilter phase that issued it); it is owned by the root peer so
        # a root crash error-closes it even if the caller never notices.
        spans = self.sim.telemetry.spans
        handle.span = spans.open(
            "agg.session",
            peer=self.hierarchy.root,
            session=session_id,
            spec=spec.name,
        )
        previous = spans.activate(handle.span) if handle.span else 0
        root_service.begin_session(
            session_id,
            spec,
            request_data,
            parent=None,
            generation=self.hierarchy.generation_of(self.hierarchy.root),
        )
        if handle.span:
            spans.restore(previous)
        return handle

    def run(
        self,
        spec: AggregateSpec,
        request_data: Any = None,
        max_events: int = 50_000_000,
    ) -> Any:
        """Start a session and drive the simulation until it completes;
        returns the aggregate value.  Use :meth:`run_session` when the
        caller also needs the coverage annotations."""
        return self.run_session(spec, request_data, max_events).value

    def run_session(
        self,
        spec: AggregateSpec,
        request_data: Any = None,
        max_events: int = 50_000_000,
    ) -> SessionHandle:
        """Start a session and drive the simulation until it completes.

        Returns
        -------
        SessionHandle
            The completed handle, carrying the value *and* the coverage
            accounting (``covered`` / ``expected`` / ``complete``).

        Raises
        ------
        AggregationError
            If the simulation runs out of events (or hits ``max_events``)
            before the session completes — a protocol bug, not a runtime
            condition.  Losing the root mid-session is a runtime
            condition, not a bug: the handle comes back with
            ``failed=True`` (and so ``complete=False``) instead of an
            exception, and recovery-aware callers re-issue against the
            promoted root.
        """
        handle = self.start(spec, request_data)
        return self.drive_session(handle, max_events=max_events)

    def drive_session(
        self,
        handle: SessionHandle,
        deadline: float | None = None,
        max_events: int = 50_000_000,
    ) -> SessionHandle:
        """Drive the simulation until ``handle`` completes, fails, or the
        sim clock reaches ``deadline``.

        A deadline return leaves the session in flight: the handle is not
        ``done``, and a later ``sim.run`` may still complete it in the
        background.  Deadline-aware callers (the monitoring service)
        treat a not-``done`` handle as a missed deadline and abandon the
        attempt; everything already staged for it stays uncommitted.
        """
        spec = handle.spec
        root_at_start = self.hierarchy.root
        steps = 0
        while not handle.done:
            if (
                not self.network.node(root_at_start).alive
                or self.hierarchy.root != root_at_start
            ):
                self._fail_root_lost(handle, root_at_start, reason="died_mid_session")
                break
            if deadline is not None and self.sim.now >= deadline:
                break
            if not self.sim.step():
                raise AggregationError(
                    f"event queue drained before session {handle.session_id} "
                    f"({spec.name}) completed"
                )
            steps += 1
            if steps > max_events:
                raise AggregationError(
                    f"session {handle.session_id} ({spec.name}) did not complete "
                    f"within {max_events} events"
                )
        return handle

    def dead_root_session(self, spec: AggregateSpec) -> SessionHandle:
        """A synthetic failed handle for when the root is already dead at
        session start — lets recovery loops treat "root dead before the
        request" and "root died mid-session" uniformly instead of
        special-casing the :meth:`start` exception."""
        handle = SessionHandle(next(self._session_ids), spec)
        handle.started_at = self.sim.now
        handle.expected = self.network.n_live_peers
        self._fail_root_lost(handle, self.hierarchy.root, reason="dead_at_start")
        return handle

    def _fail_root_lost(
        self, handle: SessionHandle, root: int, reason: str
    ) -> None:
        handle.failed = True
        handle.done = True
        self.sim.telemetry.registry.counter("aggregation.root_lost_sessions").inc()
        self.sim.trace.emit(
            self.sim.now,
            "aggregation.root_lost",
            session=handle.session_id,
            spec=handle.spec.name,
            root=root,
            reason=reason,
        )
        # No-op if the root's crash sweep already error-closed the span.
        self.sim.telemetry.spans.close(handle.span, status="error", reason=reason)

    def _complete(self, session_id: int, value: Any, covered: int) -> None:
        handle = self._handles.get(session_id)
        if handle is None or handle.done:
            return
        handle._complete(value, covered)
        sim_elapsed = self.sim.now - handle.started_at
        self.sim.telemetry.registry.timer("aggregation.session_time").observe(
            sim_elapsed
        )
        self.sim.trace.emit(
            self.sim.now,
            "aggregation.complete",
            session=session_id,
            spec=handle.spec.name,
            sim_elapsed=sim_elapsed,
            covered=covered,
            expected=handle.expected,
        )
        if covered < handle.expected:
            self.sim.telemetry.registry.counter("aggregation.incomplete_sessions").inc()
            self.sim.trace.emit(
                self.sim.now,
                "aggregation.incomplete",
                session=session_id,
                spec=handle.spec.name,
                covered=covered,
                expected=handle.expected,
            )
        # The session's cause is the current causal context: the root's
        # convergecast span, whose final merge delivered the aggregate.
        spans = self.sim.telemetry.spans
        spans.close(
            handle.span, cause=spans.current, covered=covered, expected=handle.expected
        )
        callback = self._callbacks.pop(session_id, None)
        if callback is not None:
            callback(value)
