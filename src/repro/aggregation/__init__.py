"""Aggregate computation (Section III-A.2 of the paper).

Peers collaborate to compute the *aggregate* of locally-held values: the
leaf nodes of the hierarchy propagate their local contributions upstream,
internal nodes merge what they receive with their own contribution and
forward the result, and the root ends up with the global aggregate.

The machinery is generic over *what* is aggregated:

* :mod:`repro.aggregation.combiners` — the merge algebra (scalar sums,
  fixed-length vector sums, keyed sums over item sets, ...), each knowing
  its own wire size.
* :mod:`repro.aggregation.spec` — an :class:`~repro.aggregation.spec.AggregateSpec`
  bundles a combiner with each peer's contribution function and the cost
  categories its traffic is charged to.
* :mod:`repro.aggregation.hierarchical` — the convergecast engine: request
  broadcast down the tree, merged replies up the tree, with timeouts so a
  failed child cannot stall its parent forever.
* :mod:`repro.aggregation.gossip` — push-sum gossip aggregation, the
  paper's stated future-work alternative, implemented for comparison.

Every netFilter phase and the naive baseline are thin layers over this
package: candidate filtering is a vector-sum aggregation, candidate
verification is a keyed-sum aggregation with the heavy-group list riding
in the request, and the naive approach is a keyed-sum over full item sets.
"""

from repro.aggregation.combiners import (
    Combiner,
    KeyedSumCombiner,
    MaxCombiner,
    MinCombiner,
    ScalarSumCombiner,
    TupleCombiner,
    VectorSumCombiner,
)
from repro.aggregation.gossip import GossipAggregation, GossipConfig
from repro.aggregation.gossip_keyed import KeyedGossipAggregation
from repro.aggregation.hierarchical import AggregationEngine, SessionHandle
from repro.aggregation.spec import AggregateSpec

__all__ = [
    "AggregateSpec",
    "AggregationEngine",
    "Combiner",
    "GossipAggregation",
    "GossipConfig",
    "KeyedGossipAggregation",
    "KeyedSumCombiner",
    "MaxCombiner",
    "MinCombiner",
    "ScalarSumCombiner",
    "SessionHandle",
    "TupleCombiner",
    "VectorSumCombiner",
]
