"""Push-sum gossip aggregation.

The paper's conclusion names "a fault-tolerant gossip aggregation that can
obtain the precise aggregates" as future work, and Section III-A surveys
gossip as the alternative to hierarchical aggregation: peers repeatedly
exchange mass with random neighbours until every peer's estimate (almost)
converges to the global value, at the price of ``O(log N)`` rounds of
all-to-all traffic and only approximate results.

This module implements the classic push-sum protocol (Kempe, Dobra &
Gehrke, FOCS 2003) over the simulated overlay so the trade-off can be
measured: each peer ``i`` holds a mass vector ``x_i`` and a weight ``w_i``;
every round it keeps half of ``(x_i, w_i)`` and pushes the other half to a
uniformly random live neighbour; ``x_i / w_i`` converges to the global
*average*, and with total weight ``N`` known, to the sum.  Mass
conservation (``Σ x_i`` constant) is the protocol invariant the tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import AggregationError
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.wire import CostCategory, SizeModel


@register_payload
@dataclass(frozen=True, eq=False)
class GossipPayload(Payload):
    """Half of a peer's (mass vector, weight) for one push-sum round."""

    mass: np.ndarray
    weight: float
    category = CostCategory.GOSSIP

    def body_bytes(self, model: SizeModel) -> int:
        # The mass vector plus the scalar weight.
        return model.aggregate_bytes * (int(self.mass.size) + 1)


@dataclass(frozen=True)
class GossipConfig:
    """Timing and duration of a push-sum run.

    Attributes
    ----------
    rounds:
        Number of push-sum rounds.  ``O(log N + log(1/ε))`` rounds give
        relative error ε; 30-60 rounds are typical for N=1000.
    round_period:
        Simulated time between rounds.  Must exceed the transport latency
        so that pushed mass arrives before the next split.
    """

    rounds: int = 50
    round_period: float = 2.0

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise AggregationError("rounds must be positive")
        if self.round_period <= 0:
            raise AggregationError("round_period must be positive")


class GossipAggregation:
    """One push-sum computation over a network.

    Parameters
    ----------
    network:
        The overlay; every live peer participates.
    contributions:
        ``{peer_id: vector}`` of local contributions.  Missing peers
        contribute zero.
    length:
        Dimension of the aggregated vector.
    config:
        Round count and period.

    Examples
    --------
    >>> # see tests/aggregation/test_gossip.py for an executable example
    """

    def __init__(
        self,
        network: Network,
        contributions: dict[int, np.ndarray],
        length: int,
        config: GossipConfig | None = None,
        initiator: int | None = None,
    ) -> None:
        self.network = network
        self.config = config or GossipConfig()
        self.length = length
        self.initiator = initiator
        self._mass: dict[int, np.ndarray] = {}
        self._weight: dict[int, float] = {}
        self._inbox_mass: dict[int, np.ndarray] = {}
        self._inbox_weight: dict[int, float] = {}
        self._participants = list(network.live_peers())
        if initiator is not None and initiator not in self._participants:
            raise AggregationError(f"initiator {initiator} is not a live peer")
        for peer in self._participants:
            vector = np.asarray(
                contributions.get(peer, np.zeros(length)), dtype=np.float64
            )
            if vector.shape != (length,):
                raise AggregationError(
                    f"contribution of peer {peer} has shape {vector.shape}, "
                    f"expected ({length},)"
                )
            self._mass[peer] = vector.copy()
            # Two weight disciplines (both classic push-sum):
            #  - everyone holds weight 1  -> x/w estimates the AVERAGE and
            #    the sum needs the population size (the simulator knows it);
            #  - only one initiator holds weight 1 -> x/w estimates the SUM
            #    directly, with no global knowledge at all.  This is what a
            #    real deployment (and GossipNetFilter) uses.
            if initiator is None:
                self._weight[peer] = 1.0
            else:
                self._weight[peer] = 1.0 if peer == initiator else 0.0
            self._inbox_mass[peer] = np.zeros(length)
            self._inbox_weight[peer] = 0.0
            network.node(peer).register_handler(GossipPayload, self._make_handler(peer))
        self._rounds_done = 0

    def _make_handler(self, peer: int) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            payload = message.payload
            assert isinstance(payload, GossipPayload)
            self._inbox_mass[peer] += payload.mass
            self._inbox_weight[peer] += payload.weight

        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute all configured rounds (drives the simulation)."""
        sim = self.network.sim
        for _ in range(self.config.rounds):
            sim.schedule(self.config.round_period, self._round)
            sim.run(until=sim.now + self.config.round_period)
        # Allow the final round's in-flight mass to land.
        sim.run(until=sim.now + self.config.round_period)
        self._absorb_inboxes()

    def _round(self) -> None:
        self._absorb_inboxes()
        rng = self.network.sim.rng.stream("gossip")
        for peer in self._participants:
            node = self.network.node(peer)
            if not node.alive:
                continue
            neighbors = node.neighbors
            if not neighbors:
                continue
            target = int(neighbors[int(rng.integers(0, len(neighbors)))])
            half_mass = self._mass[peer] / 2.0
            half_weight = self._weight[peer] / 2.0
            self._mass[peer] = half_mass
            self._weight[peer] = half_weight
            node.send(target, GossipPayload(mass=half_mass.copy(), weight=half_weight))
        self._rounds_done += 1

    def _absorb_inboxes(self) -> None:
        for peer in self._participants:
            if self._inbox_weight[peer] or self._inbox_mass[peer].any():
                self._mass[peer] = self._mass[peer] + self._inbox_mass[peer]
                self._weight[peer] += self._inbox_weight[peer]
                self._inbox_mass[peer] = np.zeros(self.length)
                self._inbox_weight[peer] = 0.0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate_at(self, peer: int) -> np.ndarray:
        """Peer's current estimate of the global *sum* vector.

        With uniform weights, ``x/w`` converges to the average and is
        scaled by the participant count; with an initiator (total weight
        1), ``x/w`` is the sum directly.
        """
        weight = self._weight[peer]
        if weight <= 0:
            raise AggregationError(f"peer {peer} has zero push-sum weight")
        if self.initiator is None:
            return self._mass[peer] / weight * len(self._participants)
        return self._mass[peer] / weight

    def estimates(self) -> dict[int, np.ndarray]:
        """Sum estimates of every live peer that holds positive weight
        (with an initiator, weight takes a few rounds to spread)."""
        return {
            peer: self.estimate_at(peer)
            for peer in self._participants
            if self.network.node(peer).alive and self._weight[peer] > 0
        }

    def total_mass(self) -> np.ndarray:
        """Σ of all mass vectors incl. in-flight inboxes — conserved by the
        protocol; exposed for the invariant tests."""
        total = np.zeros(self.length)
        for peer in self._participants:
            total += self._mass[peer] + self._inbox_mass[peer]
        return total
