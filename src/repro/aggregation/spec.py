"""Aggregate specifications.

An :class:`AggregateSpec` describes one aggregate computation end to end:
how each peer derives its local contribution (possibly from data carried in
the request, e.g. the heavy-group list of Algorithm 2), how contributions
merge (the combiner), and which cost categories the request (down-sweep)
and reply (up-sweep) traffic belong to.

In a real deployment the spec is protocol code present at every peer; in
this simulation the spec object is shared by reference between the nodes of
one :class:`~repro.aggregation.hierarchical.AggregationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.aggregation.combiners import Combiner
from repro.net.wire import CostCategory, SizeModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.node import Node


def _no_request_bytes(request_data: Any, model: SizeModel) -> int:
    """Default request sizing: one aggregate-sized control integer (the
    session/spec identifier); the paper does not charge request headers to
    any reported category."""
    return model.aggregate_bytes


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computation, end to end.

    Attributes
    ----------
    name:
        Unique name within an engine (used for dispatch and traces).
    combiner:
        The merge algebra for contributions.
    contribute:
        ``contribute(node, request_data)`` returns the peer's local
        contribution.  Must be side-effect free.
    up_category:
        Cost category for reply (up-sweep) bytes, e.g. ``FILTERING`` for
        phase 1 or ``AGGREGATION`` for phase 2.
    down_category:
        Cost category for request (down-sweep) bytes, e.g.
        ``DISSEMINATION`` when the request carries the heavy-group list.
    request_bytes:
        ``request_bytes(request_data, model)`` prices the request payload.
    """

    name: str
    combiner: Combiner
    contribute: Callable[["Node", Any], Any]
    up_category: CostCategory
    down_category: CostCategory = CostCategory.CONTROL
    request_bytes: Callable[[Any, SizeModel], int] = field(default=_no_request_bytes)
