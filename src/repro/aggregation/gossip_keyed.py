"""Push-sum gossip over *keyed* values.

The vector push-sum of :mod:`repro.aggregation.gossip` needs a fixed,
globally-known coordinate space.  Candidate verification does not have
one — each peer holds (candidate id, local value) pairs for its own items
— so this module gossips sparse keyed mass instead: a peer repeatedly
keeps half of its ``{id: value}`` mass (and weight) and pushes the other
half to a random neighbour.  With the initiator-weight discipline
(total weight 1 at one peer), ``value/weight`` at any positive-weight
peer converges to the global sum per key.

Used by :class:`repro.core.gossip_netfilter.GossipNetFilter` for its
verification phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AggregationError
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.wire import CostCategory, SizeModel
from repro.aggregation.gossip import GossipConfig


@register_payload
@dataclass(frozen=True, eq=False)
class KeyedGossipPayload(Payload):
    """Half of a peer's keyed mass and weight for one push-sum round."""

    values: dict[int, float]
    weight: float
    category = CostCategory.GOSSIP

    def body_bytes(self, model: SizeModel) -> int:
        # One (id, value) pair per key plus the scalar weight.
        return model.pair_bytes * len(self.values) + model.aggregate_bytes


class KeyedGossipAggregation:
    """One keyed push-sum computation over a network.

    Parameters
    ----------
    network:
        The overlay; every live peer participates.
    contributions:
        ``{peer_id: {item_id: value}}`` local keyed mass.
    initiator:
        The single peer holding initial weight 1 — its ``x/w`` estimates
        global sums directly (no population knowledge needed).
    config:
        Round count and period.
    """

    def __init__(
        self,
        network: Network,
        contributions: dict[int, dict[int, float]],
        initiator: int,
        config: GossipConfig | None = None,
    ) -> None:
        self.network = network
        self.config = config or GossipConfig()
        self.initiator = initiator
        self._participants = list(network.live_peers())
        if initiator not in self._participants:
            raise AggregationError(f"initiator {initiator} is not a live peer")
        self._mass: dict[int, dict[int, float]] = {}
        self._weight: dict[int, float] = {}
        self._inbox_mass: dict[int, dict[int, float]] = {}
        self._inbox_weight: dict[int, float] = {}
        for peer in self._participants:
            self._mass[peer] = {
                int(key): float(value)
                for key, value in contributions.get(peer, {}).items()
            }
            self._weight[peer] = 1.0 if peer == initiator else 0.0
            self._inbox_mass[peer] = {}
            self._inbox_weight[peer] = 0.0
            network.node(peer).register_handler(
                KeyedGossipPayload, self._make_handler(peer)
            )

    def _make_handler(self, peer: int) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            payload = message.payload
            assert isinstance(payload, KeyedGossipPayload)
            inbox = self._inbox_mass[peer]
            for key, value in payload.values.items():
                inbox[key] = inbox.get(key, 0.0) + value
            self._inbox_weight[peer] += payload.weight

        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute all configured rounds (drives the simulation)."""
        sim = self.network.sim
        for _ in range(self.config.rounds):
            sim.schedule(self.config.round_period, self._round)
            sim.run(until=sim.now + self.config.round_period)
        sim.run(until=sim.now + self.config.round_period)
        self._absorb_inboxes()

    def _round(self) -> None:
        self._absorb_inboxes()
        rng = self.network.sim.rng.stream("gossip.keyed")
        for peer in self._participants:
            node = self.network.node(peer)
            if not node.alive:
                continue
            neighbors = node.neighbors
            if not neighbors:
                continue
            mass = self._mass[peer]
            weight = self._weight[peer]
            if not mass and weight == 0.0:
                continue  # nothing to push — saves empty messages
            target = int(neighbors[int(rng.integers(0, len(neighbors)))])
            half = {key: value / 2.0 for key, value in mass.items()}
            self._mass[peer] = dict(half)
            self._weight[peer] = weight / 2.0
            node.send(target, KeyedGossipPayload(values=half, weight=weight / 2.0))

    def _absorb_inboxes(self) -> None:
        for peer in self._participants:
            inbox = self._inbox_mass[peer]
            if inbox:
                mass = self._mass[peer]
                for key, value in inbox.items():
                    mass[key] = mass.get(key, 0.0) + value
                self._inbox_mass[peer] = {}
            if self._inbox_weight[peer]:
                self._weight[peer] += self._inbox_weight[peer]
                self._inbox_weight[peer] = 0.0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate_at(self, peer: int) -> dict[int, float]:
        """Peer's estimate of the global sum per key."""
        weight = self._weight[peer]
        if weight <= 0:
            raise AggregationError(f"peer {peer} has zero push-sum weight")
        return {key: value / weight for key, value in self._mass[peer].items()}

    def total_mass(self) -> dict[int, float]:
        """Σ of all keyed mass (conserved by the protocol; for tests)."""
        totals: dict[int, float] = {}
        for peer in self._participants:
            for source in (self._mass[peer], self._inbox_mass[peer]):
                for key, value in source.items():
                    totals[key] = totals.get(key, 0.0) + value
        return totals
