"""The merge algebra for aggregate computation.

A :class:`Combiner` is a commutative monoid (identity + associative,
commutative ``combine``) plus a wire-size function.  Hierarchical
aggregation is correct for exactly this class of operations: merging
contributions in tree order gives the same result as any other order.

The three combiners the paper needs:

* :class:`VectorSumCombiner` — item-group aggregate vectors (phase 1);
  one aggregate value per group, ``s_a`` bytes each.
* :class:`KeyedSumCombiner` — (item identifier, value) pair sets (phase 2
  and the naive baseline); ``s_a + s_i`` bytes per pair.
* :class:`ScalarSumCombiner` — the grand total ``v`` and the population
  ``N`` (Section IV obtains both "through simple aggregate computation").

Plus :class:`MinCombiner` / :class:`MaxCombiner` (used e.g. to find the
minimum threshold among concurrent requests, Section III-A.1) and
:class:`TupleCombiner` to ship several aggregates in one session — the
paper notes the ``v`` and ``N`` computations "can be combined with other
aggregate computation".
"""

from __future__ import annotations

import abc
from typing import Any, Generic, TypeVar

import numpy as np

from repro.errors import AggregationError
from repro.items.itemset import LocalItemSet
from repro.net.wire import SizeModel

T = TypeVar("T")


class Combiner(abc.ABC, Generic[T]):
    """A commutative monoid with a wire-size function."""

    @abc.abstractmethod
    def identity(self) -> T:
        """The neutral element (contribution of a peer with no data)."""

    @abc.abstractmethod
    def combine(self, left: T, right: T) -> T:
        """Merge two aggregates.  Must be associative and commutative."""

    @abc.abstractmethod
    def size_bytes(self, value: T, model: SizeModel) -> int:
        """Wire size of one aggregate value."""

    def combine_many(self, values: list[T]) -> T:
        """Fold ``combine`` over a list (identity for the empty list)."""
        result = self.identity()
        for value in values:
            result = self.combine(result, value)
        return result


class ScalarSumCombiner(Combiner[float]):
    """Sum of scalars; ``s_a`` bytes on the wire."""

    def identity(self) -> float:
        return 0

    def combine(self, left: float, right: float) -> float:
        return left + right

    def size_bytes(self, value: float, model: SizeModel) -> int:
        return model.aggregate_bytes


class MinCombiner(Combiner[float]):
    """Minimum of scalars (e.g. the smallest threshold among concurrent
    IFI requests, Section III-A.1)."""

    def identity(self) -> float:
        return float("inf")

    def combine(self, left: float, right: float) -> float:
        return min(left, right)

    def size_bytes(self, value: float, model: SizeModel) -> int:
        return model.aggregate_bytes


class MaxCombiner(Combiner[float]):
    """Maximum of scalars."""

    def identity(self) -> float:
        return float("-inf")

    def combine(self, left: float, right: float) -> float:
        return max(left, right)

    def size_bytes(self, value: float, model: SizeModel) -> int:
        return model.aggregate_bytes


class VectorSumCombiner(Combiner[np.ndarray]):
    """Element-wise sum of fixed-length vectors.

    Phase 1 of netFilter aggregates, per filter, a length-``g`` vector of
    item-group aggregates; with ``f`` filters the payload is a flat
    ``f·g`` vector costing ``s_a · f · g`` bytes — exactly the paper's
    candidate filtering cost.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise AggregationError(f"vector length must be positive, got {length}")
        self.length = length

    def identity(self) -> np.ndarray:
        return np.zeros(self.length, dtype=np.int64)

    def combine(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left)
        right = np.asarray(right)
        if left.shape != (self.length,) or right.shape != (self.length,):
            raise AggregationError(
                f"vector shape mismatch: expected ({self.length},), "
                f"got {left.shape} and {right.shape}"
            )
        return left + right

    def size_bytes(self, value: np.ndarray, model: SizeModel) -> int:
        return model.aggregate_bytes * self.length


class KeyedSumCombiner(Combiner[LocalItemSet]):
    """Keyed sum over (item identifier, value) pairs.

    The wire size is ``(s_a + s_i)`` per pair actually present — this is
    why the naive approach costs less than ``O(n · N)`` (Section IV-B):
    peers only ship items with non-zero values in their subtree.
    """

    def identity(self) -> LocalItemSet:
        return LocalItemSet.empty()

    def combine(self, left: LocalItemSet, right: LocalItemSet) -> LocalItemSet:
        return left.merge(right)

    def size_bytes(self, value: LocalItemSet, model: SizeModel) -> int:
        return model.pair_bytes * len(value)


class TupleCombiner(Combiner[tuple]):
    """Combine several aggregates in a single session.

    Section IV: the computations of ``v`` and ``N`` "can be combined with
    other aggregate computation since they only need to propagate one
    single value along the hierarchy" — this combiner is that mechanism.
    """

    def __init__(self, *parts: Combiner[Any]) -> None:
        if not parts:
            raise AggregationError("TupleCombiner needs at least one part")
        self.parts = parts

    def identity(self) -> tuple:
        return tuple(part.identity() for part in self.parts)

    def combine(self, left: tuple, right: tuple) -> tuple:
        if len(left) != len(self.parts) or len(right) != len(self.parts):
            raise AggregationError("tuple arity mismatch")
        return tuple(
            part.combine(lv, rv) for part, lv, rv in zip(self.parts, left, right)
        )

    def size_bytes(self, value: tuple, model: SizeModel) -> int:
        return sum(
            part.size_bytes(item, model) for part, item in zip(self.parts, value)
        )
