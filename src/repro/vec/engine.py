"""Batched execution of convergecast phases over a :class:`PeerTable`.

Where the scalar engine delivers ``2·(N-1)`` messages per phase one
event at a time, this module executes each phase as a handful of array
programs over the whole population — and reproduces the scalar engine's
*byte accounting* exactly, because in a statically-faulted network every
byte the event engine charges is a closed-form function of the tree:

* requests go parent→child once per reachable non-root peer (the scalar
  ``begin_session`` skips dead children, so no request ever targets an
  unreachable peer and no timeout fires);
* replies go child→parent once per reachable non-root peer, priced by
  the phase's combiner (``2·s_a`` totals, ``s_a·f·g`` filtering,
  ``pair_bytes`` per distinct candidate in the sender's subtree for
  verification).

The only tree-*shape*-dependent term is the last one; computed here by a
level-by-level batched subtree merge (:func:`subtree_candidate_pairs`)
— the exact distinct-count every reply would carry, without simulating
any message.

Trace and metrics emission is aggregated per batch: one ``vec.phase``
event per phase and a bulk histogram merge instead of one observation
per peer, so telemetry and cost curves stay honest at a million peers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import FilterBank
from repro.core.verification import HeavyGroups
from repro.net.wire import CostCategory
from repro.telemetry.kinds import declare_kind
from repro.vec.state import PeerTable

VEC_PHASE_KIND = declare_kind(
    "vec.phase", "one batched convergecast phase executed by the vectorized tier"
)
VEC_ESCAPE_KIND = declare_kind(
    "vec.escape", "a sub-population crossed the dense<->sparse escape hatch"
)
VEC_SHARD_KIND = declare_kind(
    "vec.shard_merged", "the sharded driver merged per-shard root aggregates"
)


@dataclass(frozen=True)
class PhaseBytes:
    """Exact byte totals of one convergecast phase (whole population)."""

    requests: int
    replies: int
    down_category: CostCategory
    up_category: CostCategory

    def add_into(self, totals: dict[CostCategory, int]) -> None:
        totals[self.down_category] = totals.get(self.down_category, 0) + self.requests
        totals[self.up_category] = totals.get(self.up_category, 0) + self.replies


def phase_bytes(
    table: PeerTable,
    n_edges: int,
    request_body: int,
    reply_bodies: int,
    down_category: CostCategory,
    up_category: CostCategory,
) -> PhaseBytes:
    """Price one phase: ``n_edges`` request messages of ``request_body``
    bytes each, ``n_edges`` reply messages totalling ``reply_bodies``
    body bytes, plus the size model's per-message header on every
    message (0 under the paper's model)."""
    header = table.size_model.header_bytes
    return PhaseBytes(
        requests=n_edges * (request_body + header),
        replies=reply_bodies + n_edges * header,
        down_category=down_category,
        up_category=up_category,
    )


# ----------------------------------------------------------------------
# Phase primitives
# ----------------------------------------------------------------------
def grand_totals(table: PeerTable, reach: np.ndarray) -> tuple[int, int]:
    """Phase 0 root value: ``(grand total v, participant count N)`` over
    the reachable population — one batch op for the whole convergecast."""
    totals = table.per_peer_totals()
    return int(totals[reach].sum()), int(np.count_nonzero(reach))


def reachable_flat_mask(table: PeerTable, reach: np.ndarray) -> np.ndarray:
    """CSR-row mask selecting the items of reachable peers."""
    return np.repeat(reach, np.diff(table.item_indptr))


def group_aggregate(
    table: PeerTable, reach: np.ndarray, bank: FilterBank
) -> np.ndarray:
    """Phase 1 root value: the flat ``f·g`` group-aggregate vector.

    The root of the scalar convergecast ends with the *sum* of every
    reachable peer's local group vector; summation is associative, so
    one global scatter-add over the flat reachable items produces the
    identical vector (exact int64 — no float intermediates).
    """
    flat = reachable_flat_mask(table, reach)
    ids = table.item_ids[flat]
    values = table.item_values[flat]
    aggregate = np.zeros(bank.total_groups, dtype=np.int64)
    for index, hash_filter in enumerate(bank.filters):
        groups = hash_filter.group_of(ids)
        np.add.at(aggregate[index * bank.filter_size :], groups, values)
    return aggregate


@dataclass(frozen=True)
class CandidateRows:
    """The reachable population's candidate (peer, item, value) rows.

    ``rank`` is each row's index into ``universe`` (the distinct
    candidate ids, ascending) — the dense key the level merge works in.
    """

    peer: np.ndarray
    rank: np.ndarray
    value: np.ndarray
    universe: np.ndarray

    @property
    def n_candidates(self) -> int:
        return int(self.universe.size)


def candidate_rows(
    table: PeerTable, reach: np.ndarray, bank: FilterBank, heavy: HeavyGroups
) -> CandidateRows:
    """Every reachable peer's partial candidate set, in one batch.

    Vectorizes ``materialize_candidates`` across the population: the
    filter decision depends only on the item id, so it is evaluated once
    per *distinct* id and broadcast back to the (peer, item) rows.
    """
    empty = np.empty(0, dtype=np.int64)
    if heavy.is_empty():
        return CandidateRows(peer=empty, rank=empty, value=empty, universe=empty)
    flat = reachable_flat_mask(table, reach)
    ids = table.item_ids[flat]
    values = table.item_values[flat]
    peers = table.flat_peer_ids()[flat]
    distinct, inverse = np.unique(ids, return_inverse=True)
    distinct_mask = bank.candidate_mask(distinct, list(heavy.per_filter))
    keep = distinct_mask[inverse]
    universe = distinct[distinct_mask]
    # Re-rank the surviving ids densely: positions of kept distinct ids.
    rank_of_distinct = np.cumsum(distinct_mask, dtype=np.int64) - 1
    return CandidateRows(
        peer=peers[keep],
        rank=rank_of_distinct[inverse[keep]],
        value=values[keep],
        universe=universe,
    )


def candidate_global_values(rows: CandidateRows) -> np.ndarray:
    """Exact global value per candidate (int64 scatter-add over rows)."""
    out = np.zeros(rows.n_candidates, dtype=np.int64)
    np.add.at(out, rows.rank, rows.value)
    return out


def subtree_candidate_pairs(
    table: PeerTable, rows: CandidateRows
) -> tuple[int, int, np.ndarray]:
    """The phase-2 reply sizes, computed as a batched subtree merge.

    Every non-root reachable peer's reply carries the *distinct*
    candidate ids of its subtree (Algorithm 2's keyed-sum merge).
    Working from the deepest level up: relabel the deduplicated child
    sets to their parents, concatenate with the parents' own candidate
    rows, deduplicate on the combined ``peer·K + rank`` key — the
    surviving key count at each level *is* the total reply payload of
    that level.

    Returns ``(total pairs sent, root distinct count, per-peer own
    candidate counts)`` — the last feeds the batched histogram emission.
    """
    n_candidates = rows.n_candidates
    own_counts = np.bincount(rows.peer, minlength=table.n_peers).astype(np.int64)
    if n_candidates == 0:
        return 0, 0, own_counts
    k = np.int64(n_candidates)
    depths = table.depth[rows.peer]
    height = int(depths.max(initial=0))
    pairs_sent = 0
    carry = np.empty(0, dtype=np.int64)
    for level in range(height, -1, -1):
        at_level = depths == level
        own_keys = rows.peer[at_level] * k + rows.rank[at_level]
        keys = np.unique(np.concatenate([own_keys, carry]))
        if level == 0:
            return pairs_sent, int(keys.size), own_counts
        pairs_sent += int(keys.size)
        carry = table.parent[keys // k] * k + keys % k
    return pairs_sent, 0, own_counts  # pragma: no cover - loop always hits level 0


# ----------------------------------------------------------------------
# Batched telemetry
# ----------------------------------------------------------------------
def emit_phase(
    telemetry: object,
    phase: str,
    *,
    peers: int,
    requests: int,
    replies: int,
) -> None:
    """One aggregated trace event per batched phase (vs one per message
    in the scalar tier)."""
    if telemetry is None:
        return
    telemetry.emit(  # type: ignore[attr-defined]
        VEC_PHASE_KIND,
        phase=phase,
        peers=peers,
        request_bytes=requests,
        reply_bytes=replies,
    )


def observe_candidates_histogram(telemetry: object, own_counts: np.ndarray) -> None:
    """Bulk-merge the per-peer candidate counts into the same
    ``netfilter.candidates_per_peer`` histogram the scalar tier feeds,
    one vectorized merge instead of N ``observe`` calls."""
    if telemetry is None:
        return
    histogram = telemetry.registry.histogram(  # type: ignore[attr-defined]
        "netfilter.candidates_per_peer", buckets=(0, 1, 4, 16, 64, 256, 1024)
    )
    histogram.observe_bulk(own_counts)
