"""Multiprocess space-sharding for million-peer runs.

The vectorized tier removes the per-event ceiling; this module removes
the single-core ceiling.  The peer id space is split into ``K`` equal
shards, each an independent columnar population (its own overlay, tree,
and slice of the instance budget — see :mod:`repro.vec.build`), and the
driver plays the role of a super-root with the ``K`` shard roots as
children:

* **Round 1** (one task per shard, via
  :func:`repro.experiments.parallel.run_trials`): each shard computes
  its totals and phase-1 group aggregates; the driver merges ``v``,
  ``N`` and the ``f·g`` vector, resolves the global threshold, and
  extracts the heavy groups — the protocol's phase barrier, exactly as
  the real root would.
* **Round 2**: the heavy groups travel back down; each shard verifies
  its candidates and returns its root's keyed candidate sums plus its
  exact phase byte totals; the driver merges the candidate sets and
  prices the ``K`` super-root links like any other tree edge.

Workers are pure functions of ``(plan, shard)`` — same spec order, same
results for ``jobs=1`` and ``jobs=K`` (the :mod:`repro.experiments.parallel`
determinism contract), and the whole run collapses to a replay digest
that is a pure function of ``(seed, K, N, n, config)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import NetFilterConfig
from repro.core.filters import FilterBank
from repro.core.netfilter import NetFilterResult
from repro.core.verification import HeavyGroups
from repro.errors import ConfigurationError
from repro.experiments.parallel import TrialSpec, run_trials
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.wire import CostCategory, SizeModel
from repro.vec import engine as vec_engine
from repro.vec.build import build_table
from repro.vec.state import PeerTable


@dataclass(frozen=True)
class ShardPlan:
    """A complete, picklable description of one sharded run."""

    n_peers: int
    n_items: int
    seed: int
    n_shards: int
    config: NetFilterConfig
    skew: float = 1.0
    mean_degree: float = 4.0
    instances_per_item: int = 10

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_peers < self.n_shards:
            raise ConfigurationError("need at least one peer per shard")

    def shard_peers(self, shard: int) -> int:
        """Peer count of one shard (the remainder spreads over the first
        few shards, so counts differ by at most one)."""
        base, extra = divmod(self.n_peers, self.n_shards)
        return base + (1 if shard < extra else 0)

    def shard_instances(self, shard: int) -> int:
        """Instance budget of one shard (equal split of ``10·n``)."""
        total = self.instances_per_item * self.n_items
        base, extra = divmod(total, self.n_shards)
        return base + (1 if shard < extra else 0)


def _build_shard(plan: ShardPlan, shard: int) -> tuple[PeerTable, np.ndarray]:
    built = build_table(
        n_peers=plan.shard_peers(shard),
        n_items=plan.n_items,
        seed=plan.seed,
        shard=shard,
        n_shards=plan.n_shards,
        skew=plan.skew,
        mean_degree=plan.mean_degree,
        total_instances=plan.shard_instances(shard),
    )
    return built.table, built.global_values


def _phase1_worker(plan: ShardPlan, shard: int, return_truth: bool) -> dict[str, Any]:
    """Round 1: totals + phase-1 aggregates for one shard."""
    table, truth = _build_shard(plan, shard)
    reach = table.reachable_mask()
    n_edges = int(np.count_nonzero(reach)) - 1
    model = table.size_model
    bank = FilterBank(
        plan.config.num_filters, plan.config.filter_size, plan.config.hash_seed
    )
    grand_total, participants = vec_engine.grand_totals(table, reach)
    aggregate = vec_engine.group_aggregate(table, reach, bank)
    return {
        "shard": shard,
        "grand_total": grand_total,
        "participants": participants,
        "aggregate": aggregate,
        "height": table.reachable_height(reach),
        "control_bytes": n_edges * (3 * model.aggregate_bytes + model.aggregate_bytes)
        + n_edges * 4 * model.header_bytes,
        "filtering_bytes": n_edges * model.aggregate_bytes * bank.total_groups,
        "truth": truth if return_truth else None,
    }


def _phase2_worker(
    plan: ShardPlan, shard: int, heavy_arrays: tuple[Any, ...], threshold: int
) -> dict[str, Any]:
    """Round 2: candidate verification for one shard, given the globally
    merged heavy groups (rebuilds the shard deterministically — the
    table is a pure function of ``(plan, shard)``)."""
    table, _ = _build_shard(plan, shard)
    reach = table.reachable_mask()
    n_edges = int(np.count_nonzero(reach)) - 1
    model = table.size_model
    bank = FilterBank(
        plan.config.num_filters, plan.config.filter_size, plan.config.hash_seed
    )
    heavy = HeavyGroups(
        per_filter=tuple(np.asarray(groups, dtype=np.int64) for groups in heavy_arrays)
    )
    rows = vec_engine.candidate_rows(table, reach, bank, heavy)
    pairs_sent, root_count, _ = vec_engine.subtree_candidate_pairs(table, rows)
    values = vec_engine.candidate_global_values(rows)
    return {
        "shard": shard,
        "candidate_ids": rows.universe,
        "candidate_values": values,
        "root_count": root_count,
        "dissemination_bytes": n_edges * (heavy.wire_bytes(model) + model.header_bytes),
        "aggregation_bytes": pairs_sent * model.pair_bytes
        + n_edges * model.header_bytes,
    }


@dataclass(frozen=True)
class ShardedResult:
    """A merged sharded run: the global answer plus replay evidence."""

    result: NetFilterResult
    plan: ShardPlan
    #: SHA-256 over the canonical JSON of every decision-relevant output —
    #: two runs of the same plan must produce the same digest.
    digest: str
    per_shard: tuple[dict[str, Any], ...]


def run_sharded(
    plan: ShardPlan,
    jobs: int = 1,
    telemetry: object = None,
    return_truth: bool = False,
) -> ShardedResult:
    """Run netFilter over ``plan.n_shards`` independent shards and merge
    at the super-root.  ``jobs`` workers execute shards concurrently;
    results are identical for any ``jobs`` (spec-order merge).

    With ``return_truth=True`` each round-1 worker also ships its shard's
    exact generation-side global values, so callers can check the merged
    answer against the oracle (used by ``bench_scaling``).
    """
    shards = list(range(plan.n_shards))
    round1 = run_trials(
        [
            TrialSpec(
                fn=_phase1_worker,
                kwargs={"plan": plan, "shard": s, "return_truth": return_truth},
                label=f"shard{s}-phase1",
            )
            for s in shards
        ],
        jobs=jobs,
    )
    model = SizeModel()
    bank = FilterBank(
        plan.config.num_filters, plan.config.filter_size, plan.config.hash_seed
    )
    grand_total = sum(r["grand_total"] for r in round1)
    participants = sum(r["participants"] for r in round1)
    aggregate = np.sum([r["aggregate"] for r in round1], axis=0)
    threshold = plan.config.resolve_threshold(int(grand_total))
    heavy = HeavyGroups.from_aggregate(bank, aggregate, threshold)
    if telemetry is not None:
        telemetry.emit(  # type: ignore[attr-defined]
            vec_engine.VEC_SHARD_KIND,
            shards=plan.n_shards,
            grand_total=int(grand_total),
            heavy_groups=heavy.total_count,
        )

    round2 = run_trials(
        [
            TrialSpec(
                fn=_phase2_worker,
                kwargs={
                    "plan": plan,
                    "shard": s,
                    "heavy_arrays": tuple(g for g in heavy.per_filter),
                    "threshold": threshold,
                },
                label=f"shard{s}-phase2",
            )
            for s in shards
        ],
        jobs=jobs,
    )
    candidates = LocalItemSet.merge_many(
        [
            LocalItemSet(r["candidate_ids"], r["candidate_values"])
            for r in round2
        ]
    )
    frequent = candidates.filter_values(threshold)

    # The K super-root links are tree edges like any other: requests down
    # (totals, filtering, heavy dissemination), replies up (totals pair,
    # aggregate vector, the shard root's distinct candidate pairs).
    k = plan.n_shards
    totals: dict[CostCategory, int] = {
        CostCategory.CONTROL: sum(r["control_bytes"] for r in round1)
        + k * (4 * model.aggregate_bytes + 4 * model.header_bytes),
        CostCategory.FILTERING: sum(r["filtering_bytes"] for r in round1)
        + k * model.aggregate_bytes * bank.total_groups,
        CostCategory.DISSEMINATION: sum(r["dissemination_bytes"] for r in round2)
        + k * (heavy.wire_bytes(model) + model.header_bytes),
        CostCategory.AGGREGATION: sum(r["aggregation_bytes"] for r in round2)
        + sum(r["root_count"] for r in round2) * model.pair_bytes
        + k * model.header_bytes,
    }
    population = plan.n_peers
    breakdown = CostBreakdown(
        filtering=totals[CostCategory.FILTERING] / population,
        dissemination=totals[CostCategory.DISSEMINATION] / population,
        aggregation=totals[CostCategory.AGGREGATION] / population,
        control=totals[CostCategory.CONTROL] / population,
    )
    height = max(r["height"] for r in round1) + 1  # +1: the super-root hop
    result = NetFilterResult(
        frequent=frequent,
        candidates=candidates,
        heavy_groups=heavy,
        threshold=threshold,
        grand_total=int(grand_total),
        n_participants=int(participants),
        breakdown=breakdown,
        avg_candidates_per_peer=(
            totals[CostCategory.AGGREGATION] / model.pair_bytes / population
        ),
        config=plan.config,
        elapsed_time=6.0 * height,
        coverage=1.0,
        complete=True,
    )
    digest = replay_digest(plan, result, totals)
    truth = None
    if return_truth:
        truth = np.sum([r["truth"] for r in round1], axis=0)
    per_shard = tuple(
        {
            "shard": s,
            "participants": round1[s]["participants"],
            "grand_total": round1[s]["grand_total"],
            "height": round1[s]["height"],
            "root_candidates": round2[s]["root_count"],
            **({"truth": truth} if return_truth and s == 0 else {}),
        }
        for s in shards
    )
    return ShardedResult(result=result, plan=plan, digest=digest, per_shard=per_shard)


def replay_digest(
    plan: ShardPlan, result: NetFilterResult, totals: dict[CostCategory, int]
) -> str:
    """SHA-256 of every decision-relevant output of a sharded run."""
    payload = {
        "plan": {
            "n_peers": plan.n_peers,
            "n_items": plan.n_items,
            "seed": plan.seed,
            "n_shards": plan.n_shards,
            "g": plan.config.filter_size,
            "f": plan.config.num_filters,
            "threshold_ratio": plan.config.threshold_ratio,
            "threshold": plan.config.threshold,
            "hash_seed": plan.config.hash_seed,
            "skew": plan.skew,
        },
        "grand_total": result.grand_total,
        "participants": result.n_participants,
        "threshold": result.threshold,
        "heavy": [groups.tolist() for groups in result.heavy_groups.per_filter],
        "frequent": sorted(result.frequent.to_dict().items()),
        "candidates": len(result.candidates),
        "bytes": {str(cat): int(n) for cat, n in sorted(totals.items())},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
