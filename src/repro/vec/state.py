"""Columnar peer state for the vectorized execution tier.

The scalar engine keeps one :class:`~repro.net.node.Node` object per peer
and walks the tree one event at a time.  At a million peers that object
graph is the bottleneck, so the vectorized tier stores the *whole
population* in a handful of numpy arrays — struct-of-arrays instead of
array-of-structs:

* ``depth`` / ``parent`` / ``alive`` — one int64/bool entry per peer
  (the hierarchy and liveness columns);
* a CSR triple ``item_indptr`` / ``item_ids`` / ``item_values`` — every
  peer's local item set concatenated into two flat arrays, peer ``p``
  owning the slice ``item_indptr[p]:item_indptr[p+1]`` (sorted by item
  id, the :class:`~repro.items.itemset.LocalItemSet` invariant).

Whole convergecast levels then execute as batch array ops
(:mod:`repro.vec.engine`), and the *dense↔sparse escape hatch* —
:meth:`PeerTable.materialize` here, :mod:`repro.vec.escape` for whole
subtrees — converts any individual peer (or sub-population) back into
the scalar representation on demand, so the event engine keeps driving
the sparse, irregular residue (faults, repair, stragglers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hierarchy.builder import Hierarchy
from repro.items.itemset import LocalItemSet
from repro.net.network import Network
from repro.net.wire import SizeModel


@dataclass
class PeerTable:
    """The columnar population: hierarchy columns + CSR item storage.

    Attributes
    ----------
    parent:
        ``parent[p]`` is the tree parent of peer ``p``; ``-1`` for the
        root and for non-participants.
    depth:
        BFS depth of each peer (root = 0); ``-1`` for peers outside the
        hierarchy.
    alive:
        Liveness column.  The vectorized tier models *static* fault
        states: peers dead before a run stay dead for the whole run
        (dynamic mid-run churn is the event engine's residue).
    item_indptr / item_ids / item_values:
        CSR layout of every peer's local item set; each peer's slice is
        sorted by item id with unique ids (the ``LocalItemSet``
        invariant, validated by :meth:`validate`).
    """

    root: int
    parent: np.ndarray
    depth: np.ndarray
    alive: np.ndarray
    item_indptr: np.ndarray
    item_ids: np.ndarray
    item_values: np.ndarray
    size_model: SizeModel = field(default_factory=SizeModel)
    latency: float = 1.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Total population (live and failed)."""
        return int(self.parent.size)

    @property
    def n_live(self) -> int:
        """Currently-live peers."""
        return int(np.count_nonzero(self.alive))

    @property
    def total_items(self) -> int:
        """Total (peer, item) pairs stored."""
        return int(self.item_ids.size)

    def peer_items(self, peer: int) -> tuple[np.ndarray, np.ndarray]:
        """Views (no copy) of one peer's (ids, values) slice."""
        lo, hi = int(self.item_indptr[peer]), int(self.item_indptr[peer + 1])
        return self.item_ids[lo:hi], self.item_values[lo:hi]

    def flat_peer_ids(self) -> np.ndarray:
        """The owning peer of every CSR row (length ``total_items``)."""
        counts = np.diff(self.item_indptr)
        return np.repeat(np.arange(self.n_peers, dtype=np.int64), counts)

    def per_peer_totals(self) -> np.ndarray:
        """Each peer's local grand-total contribution, exactly (int64).

        Uses the prefix-sum trick (``cs[hi] - cs[lo]``) instead of a
        float bincount, so values stay exact all the way up.
        """
        cs = np.zeros(self.item_values.size + 1, dtype=np.int64)
        np.cumsum(self.item_values, out=cs[1:])
        return cs[self.item_indptr[1:]] - cs[self.item_indptr[:-1]]

    # ------------------------------------------------------------------
    # Construction: the import bridge from the scalar representation
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: Network, hierarchy: Hierarchy) -> "PeerTable":
        """Import a scalar (network, hierarchy) pair into columnar form.

        The bridge iterates the object graph once (O(N) python, used at
        equivalence-gate and escape-hatch scales); standalone large runs
        build their table directly with :func:`repro.vec.build.build_table`.
        """
        n = network.n_peers
        parent = np.full(n, -1, dtype=np.int64)
        depth = np.full(n, -1, dtype=np.int64)
        alive = np.zeros(n, dtype=bool)
        id_chunks: list[np.ndarray] = []
        value_chunks: list[np.ndarray] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for peer in range(n):
            node = network.node(peer)
            alive[peer] = node.alive
            service = hierarchy.services.get(peer)
            if service is not None and service.state.attached:
                depth[peer] = int(service.state.depth)
                upstream = service.state.upstream
                parent[peer] = -1 if upstream is None else int(upstream)
            ids, values = node.items.ids, node.items.values
            id_chunks.append(ids)
            value_chunks.append(np.asarray(values, dtype=np.int64))
            indptr[peer + 1] = indptr[peer] + ids.size
        table = cls(
            root=hierarchy.root,
            parent=parent,
            depth=depth,
            alive=alive,
            item_indptr=indptr,
            item_ids=(
                np.concatenate(id_chunks) if n else np.empty(0, dtype=np.int64)
            ),
            item_values=(
                np.concatenate(value_chunks) if n else np.empty(0, dtype=np.int64)
            ),
            size_model=network.size_model,
            latency=network.transport.config.latency,
        )
        table.validate()
        return table

    # ------------------------------------------------------------------
    # Level structure and reachability
    # ------------------------------------------------------------------
    def level_order(self) -> tuple[np.ndarray, np.ndarray]:
        """Participants sorted by depth, plus level boundaries.

        Returns ``(order, starts)``: ``order`` lists participant peers
        depth-ascending; level ``d`` occupies
        ``order[starts[d]:starts[d+1]]``.
        """
        participants = np.flatnonzero(self.depth >= 0)
        order = participants[np.argsort(self.depth[participants], kind="stable")]
        depths = self.depth[order]
        height = int(depths[-1]) if order.size else -1
        starts = np.searchsorted(depths, np.arange(height + 2))
        return order, starts

    def reachable_mask(self) -> np.ndarray:
        """Peers the root can reach over *alive* tree edges.

        A peer participates in a run iff it is alive, attached, and every
        ancestor up to the root is alive — exactly the set the scalar
        engine's ``begin_session`` (which skips dead children) covers in
        a statically-faulted network.  Computed level by level: a level-d
        peer is reachable iff it is alive and its parent is reachable.
        """
        reach = self.alive & (self.depth >= 0)
        order, starts = self.level_order()
        for d in range(1, starts.size - 1):
            level = order[starts[d] : starts[d + 1]]
            if level.size == 0:
                break
            reach[level] &= reach[self.parent[level]]
        return reach

    def reachable_height(self, reach: np.ndarray) -> int:
        """Max depth over reachable peers (0 for a root-only run)."""
        if not reach.any():
            return 0
        return int(self.depth[reach].max())

    # ------------------------------------------------------------------
    # Subtrees (sampling support for the escape hatch)
    # ------------------------------------------------------------------
    def subtree_sizes(self) -> np.ndarray:
        """Number of participants in each peer's subtree (itself included),
        accumulated bottom-up one level at a time."""
        sizes = np.where(self.depth >= 0, 1, 0).astype(np.int64)
        order, starts = self.level_order()
        for d in range(starts.size - 2, 0, -1):
            level = order[starts[d] : starts[d + 1]]
            if level.size:
                np.add.at(sizes, self.parent[level], sizes[level])
        return sizes

    def subtree_peers(self, peer: int) -> np.ndarray:
        """All participants in ``peer``'s subtree (ascending ids)."""
        members = {int(peer)}
        order, starts = self.level_order()
        root_depth = int(self.depth[peer])
        if root_depth < 0:
            raise ConfigurationError(f"peer {peer} is not a hierarchy participant")
        for d in range(root_depth + 1, starts.size - 1):
            level = order[starts[d] : starts[d + 1]]
            if level.size == 0:
                break
            inside = level[
                np.isin(self.parent[level], np.fromiter(members, dtype=np.int64))
            ]
            if inside.size == 0:
                break
            members.update(inside.tolist())
        return np.array(sorted(members), dtype=np.int64)

    def subset(self, peers: np.ndarray) -> "PeerTable":
        """A dense re-labelled sub-table over ``peers``.

        ``peers`` must be closed under ``parent`` except for exactly one
        peer — the subtree root — whose parent falls outside the set.
        Depths are re-based so the subtree root sits at depth 0.  This is
        the dense side of the escape hatch: the same sub-population,
        re-labelled ``0..k-1``, runnable by either engine.
        """
        peers = np.asarray(peers, dtype=np.int64)
        peers = np.unique(peers)
        relabel = np.full(self.n_peers, -1, dtype=np.int64)
        relabel[peers] = np.arange(peers.size, dtype=np.int64)
        old_parent = self.parent[peers]
        outside = (old_parent < 0) | (relabel[np.maximum(old_parent, 0)] < 0)
        if int(np.count_nonzero(outside)) != 1:
            raise ConfigurationError(
                "subset must contain exactly one subtree root "
                f"(found {int(np.count_nonzero(outside))} peers with an "
                "outside parent)"
            )
        sub_root_old = int(peers[outside][0])
        new_parent = np.where(outside, -1, relabel[np.maximum(old_parent, 0)])
        new_depth = self.depth[peers] - int(self.depth[sub_root_old])
        counts = np.diff(self.item_indptr)[peers]
        indptr = np.zeros(peers.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        take = _gather_slices(self.item_indptr, peers, counts)
        table = PeerTable(
            root=int(relabel[sub_root_old]),
            parent=new_parent,
            depth=new_depth,
            alive=self.alive[peers].copy(),
            item_indptr=indptr,
            item_ids=self.item_ids[take],
            item_values=self.item_values[take],
            size_model=self.size_model,
            latency=self.latency,
        )
        table.validate()
        return table

    # ------------------------------------------------------------------
    # The per-peer escape hatch (dense -> sparse)
    # ------------------------------------------------------------------
    def materialize(self, peer: int) -> LocalItemSet:
        """One peer's local item set as a scalar :class:`LocalItemSet`.

        The per-peer read side of the escape hatch: CSR slices already
        satisfy the sorted-unique invariant, so construction takes the
        no-copy fast path of :class:`LocalItemSet`.
        """
        ids, values = self.peer_items(peer)
        return LocalItemSet(ids, values)

    def absorb(self, peer: int, items: LocalItemSet) -> None:
        """Write one peer's (possibly mutated) scalar item set back.

        The write side of the escape hatch — after the event engine has
        driven a peer through some irregular episode (repair, a straggler
        retry, a churn arrival), its updated item set re-enters the
        columnar store.  Rebuilds the CSR arrays once per call; batch
        writers should prefer constructing a fresh table.
        """
        lo, hi = int(self.item_indptr[peer]), int(self.item_indptr[peer + 1])
        self.item_ids = np.concatenate(
            [self.item_ids[:lo], items.ids, self.item_ids[hi:]]
        )
        self.item_values = np.concatenate(
            [self.item_values[:lo], items.values, self.item_values[hi:]]
        )
        delta = items.ids.size - (hi - lo)
        if delta:
            self.item_indptr = self.item_indptr.copy()
            self.item_indptr[peer + 1 :] += delta

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants; raises on violation."""
        n = self.n_peers
        if self.depth.shape != (n,) or self.alive.shape != (n,):
            raise ConfigurationError("column lengths disagree")
        if self.item_indptr.shape != (n + 1,):
            raise ConfigurationError("item_indptr must have length n_peers + 1")
        if np.any(np.diff(self.item_indptr) < 0):
            raise ConfigurationError("item_indptr must be non-decreasing")
        if int(self.item_indptr[-1]) != self.item_ids.size:
            raise ConfigurationError("item_indptr does not cover item_ids")
        if self.item_ids.shape != self.item_values.shape:
            raise ConfigurationError("item_ids and item_values lengths disagree")
        if self.depth[self.root] != 0 or self.parent[self.root] != -1:
            raise ConfigurationError("root must sit at depth 0 with no parent")
        participants = np.flatnonzero(self.depth >= 0)
        non_root = participants[participants != self.root]
        if non_root.size:
            parents = self.parent[non_root]
            if np.any(parents < 0):
                raise ConfigurationError("non-root participant without a parent")
            if np.any(self.depth[non_root] != self.depth[parents] + 1):
                raise ConfigurationError("tree edges must span consecutive depths")
        # Per-peer sorted-unique item ids: strictly increasing inside each
        # slice <=> every adjacent pair either increases or crosses a
        # peer boundary.
        if self.item_ids.size > 1:
            increasing = self.item_ids[1:] > self.item_ids[:-1]
            boundaries = np.zeros(self.item_ids.size - 1, dtype=bool)
            cuts = self.item_indptr[1:-1]
            boundaries[cuts[(cuts > 0) & (cuts < self.item_ids.size)] - 1] = True
            if not np.all(increasing | boundaries):
                raise ConfigurationError(
                    "per-peer item ids must be strictly increasing"
                )


def _gather_slices(
    indptr: np.ndarray, peers: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Flat CSR row indices for the given peers' slices, in peer order."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[peers]
    offsets = np.zeros(peers.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
