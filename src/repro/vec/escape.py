"""The dense↔sparse escape hatch.

The vectorized tier owns the regular bulk; anything irregular — a
faulted subtree under repair, a straggler investigation, an
exactness audit — escapes to the event engine by *materializing* a
sub-population: the chosen peers are re-labelled densely, their tree
edges become a scalar :class:`~repro.net.overlay.Topology`, their CSR
slices become per-peer :class:`~repro.items.itemset.LocalItemSet`\\ s,
and a full event-driven stack (simulation, network, hierarchy, engine)
is assembled over them.  ``Hierarchy.build`` over a tree overlay
reproduces exactly that tree, so the scalar stack sees the *same*
hierarchy the columnar state describes.

:func:`verify_sampled_subpopulation` is the audit built on top: sample a
subtree, run the scalar :class:`~repro.core.netfilter.NetFilter` on the
materialized copy and :class:`~repro.vec.netfilter.VecNetFilter` on the
columnar sub-table, and compare answers and byte accounting.  This is
the exactness check a million-peer run can afford — the full
differential gate at small N lives in ``tests/vec/test_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.hierarchical import AggregationEngine
from repro.core.config import NetFilterConfig
from repro.core.netfilter import NetFilter, NetFilterResult
from repro.errors import ConfigurationError
from repro.hierarchy.builder import Hierarchy
from repro.net.network import Network
from repro.net.overlay import Topology
from repro.sim.engine import Simulation
from repro.vec.engine import VEC_ESCAPE_KIND
from repro.vec.netfilter import VecNetFilter
from repro.vec.state import PeerTable


@dataclass
class MaterializedPopulation:
    """A sub-population lifted back into the scalar representation."""

    sim: Simulation
    network: Network
    hierarchy: Hierarchy
    engine: AggregationEngine
    #: Original peer id of each dense id (``mapping[new] == old``).
    mapping: np.ndarray


def materialize_population(
    table: PeerTable, seed: int = 0, telemetry: object = None
) -> MaterializedPopulation:
    """Assemble a full event-driven stack over a (sub-)table.

    The table's tree edges become the overlay, so the rebuilt scalar
    hierarchy is *identical* to the columnar one (BFS over a tree admits
    exactly one spanning tree).  Dead peers are failed *after* the build
    — the static-fault state the dense tier models.
    """
    n = table.n_peers
    non_root = np.flatnonzero(np.arange(n) != table.root)
    parents = table.parent[non_root]
    if np.any(parents < 0):
        raise ConfigurationError("cannot materialize detached peers")
    edges = [(int(p), int(c)) for p, c in zip(parents, non_root)]
    sim = Simulation(seed=seed)
    network = Network(
        sim,
        Topology.from_edges(n, edges, name="vec-escape"),
        size_model=table.size_model,
    )
    network.assign_items({peer: table.materialize(peer) for peer in range(n)})
    hierarchy = Hierarchy.build(network, root=table.root)
    # Escape boundary: per-peer object surgery is the point here.
    for peer in np.flatnonzero(~table.alive):  # repro-lint: disable=PERF002
        network.fail_peer(int(peer))
    if telemetry is not None:
        telemetry.emit(  # type: ignore[attr-defined]
            VEC_ESCAPE_KIND, direction="materialize", peers=n
        )
    return MaterializedPopulation(
        sim=sim,
        network=network,
        hierarchy=hierarchy,
        engine=AggregationEngine(hierarchy),
        mapping=np.arange(n, dtype=np.int64),
    )


def sample_subtree(
    table: PeerTable, max_peers: int, min_peers: int = 2
) -> np.ndarray:
    """Deterministically pick a subtree with ``min_peers <= size <=
    max_peers`` — the largest qualifying subtree, smallest root id on
    ties, so the audit sample is a pure function of the table."""
    sizes = table.subtree_sizes()
    eligible = np.flatnonzero(
        (sizes >= min_peers) & (sizes <= max_peers) & (table.depth >= 0)
    )
    if eligible.size == 0:
        raise ConfigurationError(
            f"no subtree has between {min_peers} and {max_peers} peers"
        )
    best = eligible[np.argmax(sizes[eligible])]
    return table.subtree_peers(int(best))


@dataclass(frozen=True)
class SubpopulationAudit:
    """Outcome of one scalar-vs-vectorized audit on a sampled subtree."""

    match: bool
    peers_sampled: int
    scalar: NetFilterResult
    vectorized: NetFilterResult
    mismatches: tuple[str, ...]

    def raise_on_mismatch(self) -> None:
        if not self.match:
            raise AssertionError(
                "vectorized tier diverged from the scalar engine on the "
                f"sampled sub-population: {', '.join(self.mismatches)}"
            )


def compare_results(
    scalar: NetFilterResult, vectorized: NetFilterResult
) -> tuple[str, ...]:
    """Field-by-field comparison of two runs; returns mismatch labels."""
    mismatches = []
    if scalar.frequent.to_dict() != vectorized.frequent.to_dict():
        mismatches.append("frequent")
    if scalar.candidates.to_dict() != vectorized.candidates.to_dict():
        mismatches.append("candidates")
    if scalar.threshold != vectorized.threshold:
        mismatches.append("threshold")
    if scalar.grand_total != vectorized.grand_total:
        mismatches.append("grand_total")
    if scalar.n_participants != vectorized.n_participants:
        mismatches.append("n_participants")
    if scalar.heavy_groups.counts != vectorized.heavy_groups.counts:
        mismatches.append("heavy_groups")
    for category in ("filtering", "dissemination", "aggregation", "control"):
        if getattr(scalar.breakdown, category) != getattr(
            vectorized.breakdown, category
        ):
            mismatches.append(f"bytes:{category}")
    if abs(scalar.avg_candidates_per_peer - vectorized.avg_candidates_per_peer) > 1e-12:
        mismatches.append("avg_candidates_per_peer")
    if scalar.coverage != vectorized.coverage:
        mismatches.append("coverage")
    if scalar.complete != vectorized.complete:
        mismatches.append("complete")
    return tuple(mismatches)


def verify_sampled_subpopulation(
    table: PeerTable,
    config: NetFilterConfig,
    *,
    max_peers: int = 2_000,
    min_peers: int = 2,
    seed: int = 0,
    telemetry: object = None,
) -> SubpopulationAudit:
    """Audit the vectorized tier against the scalar engine on a sampled
    subtree of ``table`` — the acceptance check for large runs.

    Both engines execute netFilter over the *same* sub-population (the
    scalar one via :func:`materialize_population`); every result field
    and byte category must agree exactly.
    """
    peers = sample_subtree(table, max_peers=max_peers, min_peers=min_peers)
    sub = table.subset(peers)
    materialized = materialize_population(sub, seed=seed, telemetry=telemetry)
    scalar_result = NetFilter(config).run(materialized.engine)
    vec_result = VecNetFilter(config).run(sub)
    mismatches = compare_results(scalar_result, vec_result)
    return SubpopulationAudit(
        match=not mismatches,
        peers_sampled=int(peers.size),
        scalar=scalar_result,
        vectorized=vec_result,
        mismatches=mismatches,
    )
