"""netFilter executed by the vectorized tier.

:class:`VecNetFilter` runs the same three convergecasts as
:class:`repro.core.netfilter.NetFilter` — totals, candidate filtering,
candidate verification — as batch array programs over a
:class:`~repro.vec.state.PeerTable`, and returns the *same*
:class:`~repro.core.netfilter.NetFilterResult`, with byte accounting
that matches the scalar engine byte-for-byte on statically-faulted
networks (``tests/vec/test_equivalence.py`` pins the equivalence at
N=2,000).

Scope: the dense tier covers the regular bulk — a fixed fault state for
the duration of one run.  Dynamic irregularity (mid-run crashes, repair,
stragglers, churn arrivals) stays with the event engine; populations
cross between the tiers through :mod:`repro.vec.escape`.

``elapsed_time`` is *modeled*, not event-driven: with fixed link latency
and no loss, each convergecast completes in exactly ``2·h`` time units
(requests reach the deepest reachable leaf at ``h``; the last reply
reaches the root at ``2·h``), so a run takes ``6·h·latency`` — the same
value the scalar clock reads on a quiet network.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NetFilterConfig
from repro.core.filters import FilterBank
from repro.core.netfilter import NetFilterResult
from repro.core.verification import HeavyGroups
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.wire import CostCategory
from repro.vec import engine as vec_engine
from repro.vec.state import PeerTable


class VecNetFilter:
    """The batched two-phase filtering protocol.

    Examples
    --------
    >>> from repro.vec.build import build_table
    >>> shard = build_table(n_peers=200, n_items=2_000, seed=7)
    >>> config = NetFilterConfig(filter_size=64, num_filters=2,
    ...                          threshold_ratio=0.01)
    >>> result = VecNetFilter(config).run(shard.table)
    >>> bool((result.frequent.values >= result.threshold).all())
    True
    """

    def __init__(self, config: NetFilterConfig) -> None:
        self.config = config

    def run(self, table: PeerTable, telemetry: object = None) -> NetFilterResult:
        """Execute Algorithm 1 over the columnar population."""
        model = table.size_model
        population = table.n_peers
        if not bool(table.alive[table.root]):
            # Mirror the scalar engine's honest answer for a dead root:
            # empty, complete=False, zero coverage, nothing charged.
            return NetFilterResult(
                frequent=LocalItemSet.empty(),
                candidates=LocalItemSet.empty(),
                heavy_groups=HeavyGroups(per_filter=()),
                threshold=0,
                grand_total=0,
                n_participants=0,
                breakdown=CostBreakdown(),
                avg_candidates_per_peer=0.0,
                config=self.config,
                elapsed_time=0.0,
                coverage=0.0,
                complete=False,
            )

        reach = table.reachable_mask()
        n_reached = int(np.count_nonzero(reach))
        n_edges = n_reached - 1  # parent->child links the convergecasts use
        height = table.reachable_height(reach)
        totals: dict[CostCategory, int] = {}

        # Step 0: grand total v and participant count N (TupleCombiner of
        # two scalar sums: s_a request down, 2*s_a reply up, all CONTROL).
        grand_total, n_participants = vec_engine.grand_totals(table, reach)
        threshold = self.config.resolve_threshold(grand_total)
        phase0 = vec_engine.phase_bytes(
            table,
            n_edges,
            request_body=model.aggregate_bytes,
            reply_bodies=n_edges * 2 * model.aggregate_bytes,
            down_category=CostCategory.CONTROL,
            up_category=CostCategory.CONTROL,
        )
        phase0.add_into(totals)
        vec_engine.emit_phase(
            telemetry,
            "totals",
            peers=n_reached,
            requests=phase0.requests,
            replies=phase0.replies,
        )

        # Phase 1: candidate filtering (s_a request down as CONTROL,
        # s_a*f*g vector reply up as FILTERING).
        bank = FilterBank(
            self.config.num_filters, self.config.filter_size, self.config.hash_seed
        )
        aggregate = vec_engine.group_aggregate(table, reach, bank)
        heavy = HeavyGroups.from_aggregate(bank, aggregate, threshold)
        phase1 = vec_engine.phase_bytes(
            table,
            n_edges,
            request_body=model.aggregate_bytes,
            reply_bodies=n_edges * model.aggregate_bytes * bank.total_groups,
            down_category=CostCategory.CONTROL,
            up_category=CostCategory.FILTERING,
        )
        phase1.add_into(totals)
        vec_engine.emit_phase(
            telemetry,
            "filtering",
            peers=n_reached,
            requests=phase1.requests,
            replies=phase1.replies,
        )

        # Phase 2: candidate verification (heavy groups ride down as
        # DISSEMINATION; keyed candidate sums merge up as AGGREGATION —
        # the one tree-shape-dependent term, batched level by level).
        rows = vec_engine.candidate_rows(table, reach, bank, heavy)
        pairs_sent, root_count, own_counts = vec_engine.subtree_candidate_pairs(
            table, rows
        )
        candidate_values = vec_engine.candidate_global_values(rows)
        candidates = LocalItemSet(rows.universe, candidate_values)
        assert root_count == len(candidates)
        frequent = candidates.filter_values(threshold)
        phase2 = vec_engine.phase_bytes(
            table,
            n_edges,
            request_body=heavy.wire_bytes(model),
            reply_bodies=pairs_sent * model.pair_bytes,
            down_category=CostCategory.DISSEMINATION,
            up_category=CostCategory.AGGREGATION,
        )
        phase2.add_into(totals)
        vec_engine.emit_phase(
            telemetry,
            "verification",
            peers=n_reached,
            requests=phase2.requests,
            replies=phase2.replies,
        )
        vec_engine.observe_candidates_histogram(telemetry, own_counts[reach])

        breakdown = CostBreakdown(
            filtering=totals.get(CostCategory.FILTERING, 0) / population,
            dissemination=totals.get(CostCategory.DISSEMINATION, 0) / population,
            aggregation=totals.get(CostCategory.AGGREGATION, 0) / population,
            control=totals.get(CostCategory.CONTROL, 0) / population,
        )
        pairs_equiv = totals.get(CostCategory.AGGREGATION, 0) / model.pair_bytes
        expected = table.n_live
        coverage = n_reached / expected if expected > 0 else 1.0
        return NetFilterResult(
            frequent=frequent,
            candidates=candidates,
            heavy_groups=heavy,
            threshold=threshold,
            grand_total=grand_total,
            n_participants=n_participants,
            breakdown=breakdown,
            avg_candidates_per_peer=pairs_equiv / population,
            config=self.config,
            elapsed_time=6.0 * height * table.latency,
            coverage=coverage,
            complete=n_reached >= expected,
        )
