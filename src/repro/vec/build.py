"""Vectorized construction of million-peer populations.

The scalar assembly line (``Topology.random_connected`` → event-driven
BFS flood → per-peer ``LocalItemSet`` scatter) walks python objects per
peer and per edge; at N=10^6 that alone dwarfs the protocol run.  This
module builds the same *shape* of population — a connected random
overlay with a target mean degree, a BFS tree from the root, a Zipf
workload scattered uniformly over peers — entirely as array programs:

* :func:`random_overlay` — random-attachment tree plus extra random
  edges, deduplicated and packed into a CSR adjacency;
* :func:`bfs_tree` — frontier-at-a-time BFS with a deterministic
  min-parent tie-break;
* :func:`build_table` — overlay + BFS + workload in one call, returning
  the columnar :class:`~repro.vec.state.PeerTable` and the shard's exact
  ground-truth global values.

Sharding model: shard ``s`` of ``K`` owns an equal slice of the peer
population and generates its share of the instance budget over the *same
global item universe* from its own deterministic RNG stream
(``default_rng([seed, K, s, salt])``), so per-shard truths sum to the
global truth and results are a pure function of ``(seed, K, N, n)`` —
independent of worker count or scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.net.wire import SizeModel
from repro.vec.state import PeerTable
from repro.workload.zipf import zipf_global_values

#: Stream salts for the per-shard RNGs (one sub-stream per concern).
_TOPOLOGY_SALT = 1
_WORKLOAD_SALT = 2


def shard_rng(seed: int, n_shards: int, shard: int, salt: int) -> np.random.Generator:
    """The deterministic RNG stream for one (seed, K, shard, concern)."""
    return np.random.default_rng([int(seed), int(n_shards), int(shard), int(salt)])


def random_overlay(
    n_peers: int, mean_degree: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """A connected random overlay as CSR adjacency ``(indptr, targets)``.

    Mirrors the scalar ``Topology.random_connected`` construction —
    a uniform random-attachment tree (guaranteeing connectivity) plus
    uniform extra edges up to the target mean degree — with arrays
    instead of per-edge python sets.
    """
    if n_peers <= 0:
        raise ConfigurationError(f"n_peers must be positive, got {n_peers}")
    if n_peers == 1:
        return np.zeros(2, dtype=np.int64), np.empty(0, dtype=np.int64)
    children = np.arange(1, n_peers, dtype=np.int64)
    # Uniform attachment: node i joins under a uniform pick from [0, i).
    attach = (rng.random(n_peers - 1) * children).astype(np.int64)
    tree_u, tree_v = attach, children
    target_edges = int(round(n_peers * mean_degree / 2.0))
    n_extra = max(0, target_edges - (n_peers - 1))
    extra_u = rng.integers(0, n_peers, size=n_extra, dtype=np.int64)
    extra_v = rng.integers(0, n_peers, size=n_extra, dtype=np.int64)
    keep = extra_u != extra_v
    u = np.concatenate([tree_u, extra_u[keep]])
    v = np.concatenate([tree_v, extra_v[keep]])
    # Canonical undirected key (min, max), dedupe across tree + extras.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = np.unique(lo * np.int64(n_peers) + hi)
    lo, hi = key // n_peers, key % n_peers
    # Both directions, sorted by source -> CSR.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n_peers + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n_peers), out=indptr[1:])
    return indptr, dst


def bfs_tree(
    indptr: np.ndarray, targets: np.ndarray, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-frontier BFS over a CSR adjacency.

    Returns ``(depth, parent)`` with ``depth[root] == 0``; unreachable
    vertices keep depth/parent ``-1``.  When several frontier peers offer
    to adopt the same vertex, the smallest peer id wins — a deterministic
    tie-break, so the tree is a pure function of the adjacency.
    """
    n = indptr.size - 1
    depth = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(indptr[frontier], counts)
        )
        neighbors = targets[flat]
        senders = np.repeat(frontier, counts)
        fresh = depth[neighbors] < 0
        child, offered = neighbors[fresh], senders[fresh]
        if child.size == 0:
            break
        order = np.lexsort((offered, child))
        child, offered = child[order], offered[order]
        first = np.ones(child.size, dtype=bool)
        first[1:] = child[1:] != child[:-1]
        adopted, adopter = child[first], offered[first]
        level += 1
        depth[adopted] = level
        parent[adopted] = adopter
        frontier = adopted
    return depth, parent


def scatter_workload(
    global_values: np.ndarray,
    n_peers: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scatter item instances uniformly over peers, straight into CSR.

    Returns ``(indptr, item_ids, item_values)``: each of the
    ``global_values.sum()`` instances lands on a uniform peer; a peer's
    value for an item is its occurrence count.  The combined
    ``peer·n + item`` key sort produces slices already sorted by item id
    — the ``LocalItemSet`` invariant — without any per-peer work.
    """
    n_items = int(global_values.size)
    instance_items = np.repeat(
        np.arange(n_items, dtype=np.int64), global_values.astype(np.int64)
    )
    instance_peers = rng.integers(0, n_peers, size=instance_items.size, dtype=np.int64)
    key, counts = np.unique(
        instance_peers * np.int64(n_items) + instance_items, return_counts=True
    )
    peer = key // n_items
    item = key % n_items
    indptr = np.zeros(n_peers + 1, dtype=np.int64)
    np.cumsum(np.bincount(peer, minlength=n_peers), out=indptr[1:])
    return indptr, item, counts.astype(np.int64)


@dataclass(frozen=True)
class BuiltShard:
    """One shard's population plus its exact generation-side truth."""

    table: PeerTable
    #: Exact global value per item *within this shard* (length n_items);
    #: shard truths sum to the global ground truth.
    global_values: np.ndarray


def build_table(
    n_peers: int,
    n_items: int,
    seed: int,
    *,
    shard: int = 0,
    n_shards: int = 1,
    skew: float = 1.0,
    mean_degree: float = 4.0,
    total_instances: int | None = None,
    instances_per_item: int = 10,
    size_model: SizeModel | None = None,
) -> BuiltShard:
    """Build one shard's columnar population, fully vectorized.

    ``n_peers`` is *this shard's* peer count.  ``total_instances`` is the
    shard's instance budget (default: ``instances_per_item · n_items /
    n_shards``, i.e. an equal slice of the paper's ``10·n`` budget).  The
    root is peer 0 — under a seeded random overlay, peer 0 is a random
    peer.
    """
    if not 0 <= shard < n_shards:
        raise ConfigurationError(f"shard {shard} out of range for {n_shards} shards")
    topo_rng = shard_rng(seed, n_shards, shard, _TOPOLOGY_SALT)
    indptr, targets = random_overlay(n_peers, mean_degree, topo_rng)
    depth, parent = bfs_tree(indptr, targets, root=0)
    if np.any(depth < 0):
        raise ConfigurationError("overlay is not connected")  # pragma: no cover
    work_rng = shard_rng(seed, n_shards, shard, _WORKLOAD_SALT)
    if total_instances is None:
        total_instances = max(1, instances_per_item * n_items // n_shards)
    global_values = zipf_global_values(n_items, skew, total_instances, work_rng)
    item_indptr, item_ids, item_values = scatter_workload(
        global_values, n_peers, work_rng
    )
    table = PeerTable(
        root=0,
        parent=parent,
        depth=depth,
        alive=np.ones(n_peers, dtype=bool),
        item_indptr=item_indptr,
        item_ids=item_ids,
        item_values=item_values,
        size_model=size_model or SizeModel(),
    )
    return BuiltShard(table=table, global_values=global_values)
