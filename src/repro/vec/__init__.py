"""Columnar vectorized execution tier for million-peer simulations.

The event-driven engine in :mod:`repro.sim` prices every message
individually — the right tool for irregular behaviour (faults, repair,
churn, stragglers), and a per-event ceiling of a few hundred thousand
peers.  This package holds the dense tier that removes that ceiling:

* :mod:`repro.vec.state` — peer state (tree, liveness, per-peer item
  vectors) as numpy columnar arrays (:class:`PeerTable`);
* :mod:`repro.vec.build` — vectorized population construction and the
  deterministic sharding model (:func:`build_table`);
* :mod:`repro.vec.engine` — whole convergecast phases as batch array
  programs with exact closed-form byte accounting;
* :mod:`repro.vec.netfilter` — :class:`VecNetFilter`, the batched
  protocol run returning the scalar engine's ``NetFilterResult``;
* :mod:`repro.vec.escape` — the dense↔sparse escape hatch and the
  sampled-subpopulation exactness audit;
* :mod:`repro.vec.shard` — the multiprocess space-sharding driver
  (:func:`run_sharded`) that puts an N=10^6 run on all cores.

The contract with the scalar tier is *exact equivalence* on statically
faulted networks: same frequent-item sets, same byte totals per cost
category, pinned by ``tests/vec/test_equivalence.py``.
"""

from repro.vec.build import BuiltShard, build_table, shard_rng
from repro.vec.escape import (
    MaterializedPopulation,
    SubpopulationAudit,
    compare_results,
    materialize_population,
    sample_subtree,
    verify_sampled_subpopulation,
)
from repro.vec.netfilter import VecNetFilter
from repro.vec.shard import ShardPlan, ShardedResult, replay_digest, run_sharded
from repro.vec.state import PeerTable

__all__ = [
    "BuiltShard",
    "MaterializedPopulation",
    "PeerTable",
    "ShardPlan",
    "ShardedResult",
    "SubpopulationAudit",
    "VecNetFilter",
    "build_table",
    "compare_results",
    "materialize_population",
    "replay_digest",
    "run_sharded",
    "sample_subtree",
    "shard_rng",
    "verify_sampled_subpopulation",
]
