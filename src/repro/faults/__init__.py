"""Deterministic, scriptable fault injection for robustness runs.

See :mod:`repro.faults.scenario` for the declarative DSL and
:mod:`repro.faults.injector` for the interpreter; ``docs/ROBUSTNESS.md``
walks through both.
"""

from repro.faults.injector import FaultInjector
from repro.faults.scenario import (
    BurstLoss,
    CrashPeer,
    DelayMessages,
    DropMessages,
    FaultAction,
    FaultScenario,
    MessageMatch,
    PartitionLinks,
    RevivePeer,
    SuspendPeer,
)

__all__ = [
    "BurstLoss",
    "CrashPeer",
    "DelayMessages",
    "DropMessages",
    "FaultAction",
    "FaultInjector",
    "FaultScenario",
    "MessageMatch",
    "PartitionLinks",
    "RevivePeer",
    "SuspendPeer",
]
