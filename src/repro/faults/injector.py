"""The fault injector: interprets a scenario against a live network.

:meth:`FaultInjector.install` does two things:

* schedules the purely *timed* actions (``CrashPeer(at=...)``,
  ``RevivePeer``, partition-window markers) as ordinary simulation events,
  and
* installs a single transport fault hook (see
  :meth:`~repro.net.transport.Transport.set_fault_hook`) that evaluates
  the message-level actions — match-triggered crashes, partitions,
  targeted drops/delays, burst loss — against every wire attempt.

All state the hook mutates (match counters, remaining-drop budgets) is
advanced only by simulation events, and the only randomness is the named
``"faults.burst_loss"`` stream, so a scenario replays bit-for-bit under
the same seed: the determinism replay gate holds with injection active.

Every action that takes effect emits a ``fault.injected`` trace event and
bumps the ``faults.injected`` counter; drops and delays additionally show
up in the transport's own ``msg.dropped_fault`` / ``msg.delayed_fault``
events and ``net.msgs_dropped.fault.<category>`` counters.
"""

from __future__ import annotations

from repro.net.message import Payload
from repro.net.network import Network
from repro.net.transport import DELAY, DELIVER, DROP
from repro.faults.scenario import (
    BurstLoss,
    CrashPeer,
    DelayMessages,
    DropMessages,
    FaultScenario,
    PartitionLinks,
    RevivePeer,
    SuspendPeer,
)


class FaultInjector:
    """Runs one :class:`~repro.faults.scenario.FaultScenario` on a network.

    Examples
    --------
    ::

        scenario = FaultScenario(
            name="crash-mid-phase-1",
            actions=(
                CrashPeer(peer=2, on_match=MessageMatch(
                    sender=3, category=CostCategory.FILTERING)),
                RevivePeer(peer=2, at=600.0),
            ),
        )
        FaultInjector(network, scenario).install()
    """

    def __init__(self, network: Network, scenario: FaultScenario) -> None:
        self.network = network
        self.scenario = scenario
        self._sim = network.sim
        self._installed = False
        # Per-action runtime state, keyed by position in the scenario (the
        # actions themselves are frozen).
        self._match_counts: dict[int, int] = {}
        self._remaining: dict[int, int] = {}
        self._crashed_via_match: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Arm the scenario: schedule timed actions, hook the transport."""
        if self._installed:
            return self
        self._installed = True
        for index, action in enumerate(self.scenario.actions):
            if isinstance(action, CrashPeer) and action.at is not None:
                self._sim.schedule_at(action.at, self._crash, action.peer, "timed")
            elif isinstance(action, RevivePeer):
                self._sim.schedule_at(action.at, self._revive, action.peer)
            elif isinstance(action, PartitionLinks):
                self._sim.schedule_at(
                    action.start, self._announce_partition, index, action
                )
            elif isinstance(action, SuspendPeer):
                self._sim.schedule_at(
                    action.start, self._announce_suspend, index, action
                )
            elif isinstance(action, (DropMessages, DelayMessages)):
                self._remaining[index] = action.count
            if isinstance(action, CrashPeer) and action.on_match is not None:
                self._match_counts[index] = 0
        self.network.transport.set_fault_hook(self._hook)
        return self

    def uninstall(self) -> None:
        """Remove the transport hook (timed events already scheduled still
        fire; use protected/peer-less scenarios if that matters)."""
        if not self._installed:
            return
        self._installed = False
        self.network.transport.set_fault_hook(None)

    # ------------------------------------------------------------------
    # Timed actions
    # ------------------------------------------------------------------
    def _crash(self, peer: int, trigger: str) -> None:
        if not self.network.node(peer).alive:
            return
        self._record("crash", peer=peer, trigger=trigger)
        self.network.fail_peer(peer)

    def _revive(self, peer: int) -> None:
        if self.network.node(peer).alive:
            return
        self._record("revive", peer=peer)
        self.network.revive_peer(peer)

    def _announce_partition(self, index: int, action: PartitionLinks) -> None:
        self._record(
            "partition",
            links=[list(link) for link in action.links],
            until=action.start + action.duration,
            action=index,
        )

    def _announce_suspend(self, index: int, action: SuspendPeer) -> None:
        self._record(
            "suspend",
            peer=action.peer,
            until=action.start + action.duration,
            action=index,
        )

    # ------------------------------------------------------------------
    # The transport hook
    # ------------------------------------------------------------------
    def _hook(self, sender: int, recipient: int, payload: Payload) -> tuple[str, float]:
        now = self._sim.now
        extra_delay = 0.0
        for index, action in enumerate(self.scenario.actions):
            if isinstance(action, CrashPeer) and action.on_match is not None:
                if index not in self._crashed_via_match and action.on_match.matches(
                    sender, recipient, payload
                ):
                    self._match_counts[index] += 1
                    if self._match_counts[index] >= action.after:
                        self._crashed_via_match.add(index)
                        # call_soon: the matching message is already on the
                        # wire; the peer dies before it can be delivered.
                        self._sim.call_soon(self._crash, action.peer, "on_match")
            elif isinstance(action, PartitionLinks):
                if (
                    action.start <= now < action.start + action.duration
                    and action.cuts(sender, recipient)
                ):
                    return DROP, 0.0
            elif isinstance(action, DropMessages):
                if (
                    now >= action.start
                    and self._remaining[index] > 0
                    and action.match.matches(sender, recipient, payload)
                ):
                    self._remaining[index] -= 1
                    self._record(
                        "drop", sender=sender, recipient=recipient, action=index
                    )
                    return DROP, 0.0
            elif isinstance(action, DelayMessages):
                if (
                    now >= action.start
                    and self._remaining[index] > 0
                    and action.match.matches(sender, recipient, payload)
                ):
                    self._remaining[index] -= 1
                    self._record(
                        "delay",
                        sender=sender,
                        recipient=recipient,
                        extra=action.extra_delay,
                        action=index,
                    )
                    extra_delay += action.extra_delay
            elif isinstance(action, SuspendPeer):
                # Gray failure: the suspended peer's outbound traffic dies
                # on the wire (the transport itself counts the drop).
                if (
                    sender == action.peer
                    and action.start <= now < action.start + action.duration
                ):
                    return DROP, 0.0
            elif isinstance(action, BurstLoss):
                if action.start <= now < action.start + action.duration:
                    rng = self._sim.rng.stream("faults.burst_loss")
                    if rng.random() < action.probability:
                        self._record(
                            "burst_loss", sender=sender, recipient=recipient
                        )
                        return DROP, 0.0
        if extra_delay > 0.0:
            return DELAY, extra_delay
        return DELIVER, 0.0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record(self, effect: str, **fields: object) -> None:
        self._sim.telemetry.registry.counter("faults.injected").inc()
        self._sim.trace.emit(
            self._sim.now,
            "fault.injected",
            scenario=self.scenario.name,
            effect=effect,
            **fields,
        )
