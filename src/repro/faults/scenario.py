"""The fault-scenario DSL: declarative, deterministic failure scripts.

A :class:`FaultScenario` is a named, ordered tuple of *actions* — frozen
dataclasses describing crashes, revivals, partitions, targeted message
drops/delays, and burst loss.  Scenarios contain no behaviour: the
:class:`~repro.faults.injector.FaultInjector` interprets them against a
live network.  Keeping the script side-effect-free is what makes fault
runs replayable — the same scenario over the same seed produces the same
event sequence, so the determinism replay gate applies to faulted runs
unchanged.

Time semantics: every ``at``/``start`` is an absolute simulation time.
Build scenarios *after* any setup that advances the clock (hierarchy
construction, settle periods) or offset from ``sim.now`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.message import Payload
from repro.net.wire import CostCategory


@dataclass(frozen=True)
class MessageMatch:
    """A predicate over one wire attempt.  ``None`` fields match anything.

    Attributes
    ----------
    sender, recipient:
        Peer ids to match.
    category:
        The payload's :class:`~repro.net.wire.CostCategory`.
    payload_kind:
        The payload class name (e.g. ``"AggReplyPayload@main"`` — tagged
        payload classes carry the hierarchy tag in their name).  Matched
        with :func:`str.startswith` so ``"AggReplyPayload"`` matches every
        tagged variant.
    """

    sender: int | None = None
    recipient: int | None = None
    category: CostCategory | None = None
    payload_kind: str | None = None

    def matches(self, sender: int, recipient: int, payload: Payload) -> bool:
        """Whether this predicate selects the given wire attempt."""
        if self.sender is not None and sender != self.sender:
            return False
        if self.recipient is not None and recipient != self.recipient:
            return False
        if self.category is not None and payload.category != self.category:
            return False
        if self.payload_kind is not None and not type(payload).__name__.startswith(
            self.payload_kind
        ):
            return False
        return True


@dataclass(frozen=True)
class CrashPeer:
    """Fail a peer at an absolute time, or when it is about to receive its
    ``after``-th message matching ``on_match``.

    The message-triggered form crashes via ``call_soon``, so the matching
    message itself is still put on the wire — it then arrives at a dead
    recipient, reproducing the classic "replied into a crash" race.
    Exactly one of ``at`` / ``on_match`` must be set.
    """

    peer: int
    at: float | None = None
    on_match: MessageMatch | None = None
    after: int = 1

    def __post_init__(self) -> None:
        if (self.at is None) == (self.on_match is None):
            raise ConfigurationError("CrashPeer needs exactly one of at/on_match")
        if self.after < 1:
            raise ConfigurationError("after must be >= 1")


@dataclass(frozen=True)
class RevivePeer:
    """Revive a (by then) failed peer at an absolute time."""

    peer: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("at must be non-negative")


@dataclass(frozen=True)
class PartitionLinks:
    """Silently drop all traffic over a set of links for an interval.

    Links are undirected: ``(a, b)`` cuts both directions.  The partition
    is a pure transport effect — peers stay alive, their timers keep
    running, and traffic not crossing a cut link is unaffected.
    """

    links: tuple[tuple[int, int], ...]
    start: float
    duration: float

    def __post_init__(self) -> None:
        if not self.links:
            raise ConfigurationError("PartitionLinks needs at least one link")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")

    def cuts(self, sender: int, recipient: int) -> bool:
        """Whether this partition severs the (undirected) link."""
        for a, b in self.links:
            if (sender, recipient) in ((a, b), (b, a)):
                return True
        return False


@dataclass(frozen=True)
class DropMessages:
    """Drop the next ``count`` messages matching a predicate, starting at
    an absolute time."""

    match: MessageMatch
    count: int
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class DelayMessages:
    """Add ``extra_delay`` to the next ``count`` matching messages."""

    match: MessageMatch
    count: int
    extra_delay: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")
        if self.extra_delay <= 0:
            raise ConfigurationError("extra_delay must be positive")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class BurstLoss:
    """Independent random loss at ``probability`` during a time window.

    Randomness comes from the simulation's ``"faults.burst_loss"`` stream,
    so bursts replay bit-for-bit and are independent of the transport's
    own background-loss stream.
    """

    start: float
    duration: float
    probability: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")


@dataclass(frozen=True)
class SuspendPeer:
    """Gray failure: the peer stays alive but transmits nothing for a
    window.

    The peer's timers keep running and it still *receives* traffic — only
    its outbound messages are dropped on the wire.  To its neighbours it
    is indistinguishable from a crash (silence), which is exactly what a
    failure detector must not be fooled by: the adaptive detector's false
    suspicions under suspend windows shorter than its deadline are the
    test surface this action exists for.
    """

    peer: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


#: The action union the injector interprets.
FaultAction = (
    CrashPeer
    | RevivePeer
    | PartitionLinks
    | DropMessages
    | DelayMessages
    | BurstLoss
    | SuspendPeer
)


@dataclass(frozen=True)
class FaultScenario:
    """A named, ordered script of fault actions.

    Action order matters only for same-message precedence in the injector
    (earlier actions inspect a wire attempt first); timed actions fire at
    their own absolute times regardless of position.
    """

    name: str
    actions: tuple[FaultAction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a name")
        for action in self.actions:
            if not isinstance(
                action,
                (
                    CrashPeer,
                    RevivePeer,
                    PartitionLinks,
                    DropMessages,
                    DelayMessages,
                    BurstLoss,
                    SuspendPeer,
                ),
            ):
                raise ConfigurationError(
                    f"unknown fault action type {type(action).__name__!r}"
                )
