"""Zipf-distributed global values.

The paper models item popularity with a Zipf distribution of skew ``α``
(Table III, default 1): the j-th most popular of ``n`` items has
probability proportional to ``j^(-α)``.  ``α = 0`` degenerates to uniform.
Global values are materialized by a multinomial draw of the total instance
budget over the ``n`` items, so they are integers and sum exactly to the
budget — properties the exactness tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def zipf_probabilities(n_items: int, skew: float) -> np.ndarray:
    """Zipf probability vector over ranks ``1..n_items``.

    Parameters
    ----------
    n_items:
        Number of distinct items.
    skew:
        The Zipf exponent ``α``; 0 gives the uniform distribution.
    """
    if n_items <= 0:
        raise WorkloadError(f"n_items must be positive, got {n_items}")
    if skew < 0:
        raise WorkloadError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def zipf_global_values(
    n_items: int,
    skew: float,
    total_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Integer global values for ``n_items`` items, summing to
    ``total_instances``, with Zipf(``skew``) frequencies.

    Item ``0`` is the most popular (rank 1).  Returned values are the
    *expected* evaluation dataset of the paper: ``10·n`` instances whose
    frequencies follow the Zipf distribution.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> values = zipf_global_values(100, 1.0, 1000, rng)
    >>> int(values.sum())
    1000
    >>> bool(values[0] >= values[50])
    True
    """
    if total_instances <= 0:
        raise WorkloadError(f"total_instances must be positive, got {total_instances}")
    probabilities = zipf_probabilities(n_items, skew)
    return rng.multinomial(total_instances, probabilities).astype(np.int64)
