"""Streaming workloads: item instances arriving over time.

Every application in the paper's Table I is a *monitoring* task — queries
keep being issued, flows keep passing, downloads keep happening — so a
production deployment runs IFI repeatedly over accumulating data.  This
module generates that accumulation: each epoch produces a batch of new
Zipf-distributed instances scattered over peers, optionally with
*popularity drift* (the head of the distribution slowly rotating through
the item universe, the way hot queries change week over week).

Pairs with :mod:`repro.core.continuous`, whose delta-filtering
optimization exploits exactly the epoch-to-epoch locality this stream
produces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.items.itemset import LocalItemSet
from repro.net.network import Network
from repro.workload.distributions import scatter_instances
from repro.workload.zipf import zipf_probabilities


class ZipfStream:
    """An epoch-by-epoch stream of Zipf-popular item instances.

    Parameters
    ----------
    n_items, n_peers, skew:
        The universe, population, and Zipf exponent.
    instances_per_epoch:
        New instances generated each epoch.
    rng:
        Randomness source.
    drift_per_epoch:
        How many rank positions the popularity head rotates per epoch
        (0 = stationary popularity).  Item ``(rank + epoch·drift) mod n``
        holds rank ``rank``'s probability in that epoch.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> stream = ZipfStream(100, 10, 1.0, 1000, rng)
    >>> batch = stream.next_epoch()
    >>> sum(s.total_value for s in batch.values())
    1000
    """

    def __init__(
        self,
        n_items: int,
        n_peers: int,
        skew: float,
        instances_per_epoch: int,
        rng: np.random.Generator,
        drift_per_epoch: int = 0,
    ) -> None:
        if instances_per_epoch <= 0:
            raise WorkloadError("instances_per_epoch must be positive")
        if drift_per_epoch < 0:
            raise WorkloadError("drift_per_epoch must be non-negative")
        self.n_items = n_items
        self.n_peers = n_peers
        self.instances_per_epoch = instances_per_epoch
        self.drift_per_epoch = drift_per_epoch
        self._rng = rng
        self._rank_probabilities = zipf_probabilities(n_items, skew)
        self.epoch = 0

    def _epoch_probabilities(self) -> np.ndarray:
        """This epoch's per-item probabilities (ranks rotated by drift)."""
        offset = (self.epoch * self.drift_per_epoch) % self.n_items
        return np.roll(self._rank_probabilities, offset)

    def next_epoch(self) -> dict[int, LocalItemSet]:
        """Generate the next epoch's per-peer *increments*."""
        probabilities = self._epoch_probabilities()
        batch_values = self._rng.multinomial(
            self.instances_per_epoch, probabilities
        ).astype(np.int64)
        increments = scatter_instances(batch_values, self.n_peers, self._rng)
        self.epoch += 1
        return increments

    def apply_to(self, network: Network) -> dict[int, LocalItemSet]:
        """Generate an epoch and merge it into the peers' local sets.

        Returns the applied increments (tests use them to reconstruct
        expected totals).
        """
        increments = self.next_epoch()
        for peer, increment in increments.items():
            node = network.nodes.get(peer)
            if node is not None and node.alive:
                node.items = node.items.merge(increment)
        return increments
