"""Streaming workloads: item instances arriving over time.

Every application in the paper's Table I is a *monitoring* task — queries
keep being issued, flows keep passing, downloads keep happening — so a
production deployment runs IFI repeatedly over accumulating data.  This
module generates that accumulation: each epoch produces a batch of new
Zipf-distributed instances scattered over peers, optionally with
*popularity drift* (the head of the distribution slowly rotating through
the item universe, the way hot queries change week over week).

Pairs with :mod:`repro.core.continuous`, whose delta-filtering
optimization exploits exactly the epoch-to-epoch locality this stream
produces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.items.itemset import LocalItemSet
from repro.net.network import Network
from repro.workload.distributions import scatter_instances
from repro.workload.zipf import zipf_probabilities


class ZipfStream:
    """An epoch-by-epoch stream of Zipf-popular item instances.

    Parameters
    ----------
    n_items, n_peers, skew:
        The universe, population, and Zipf exponent.
    instances_per_epoch:
        New instances generated each epoch.
    rng:
        Randomness source.
    drift_per_epoch:
        How many rank positions the popularity head rotates per epoch
        (0 = stationary popularity).  Item ``(rank + epoch·drift) mod n``
        holds rank ``rank``'s probability in that epoch.
    flash_every:
        Flash-crowd cadence: every ``flash_every`` epochs a randomly
        chosen item abruptly captures ``flash_share`` of the arrival mass
        for ``flash_duration`` epochs, then vanishes back into the tail —
        the slashdot pattern that stresses threshold tracking and (under
        time decay) the speed at which faded counts forget it.  0
        disables flash crowds.  The first flash starts at epoch
        ``flash_every`` so every run has a calm lead-in.
    flash_duration:
        Epochs each flash crowd lasts.
    flash_share:
        Fraction of each flash epoch's instances aimed at the flash item.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> stream = ZipfStream(100, 10, 1.0, 1000, rng)
    >>> batch = stream.next_epoch()
    >>> sum(s.total_value for s in batch.values())
    1000
    """

    def __init__(
        self,
        n_items: int,
        n_peers: int,
        skew: float,
        instances_per_epoch: int,
        rng: np.random.Generator,
        drift_per_epoch: int = 0,
        flash_every: int = 0,
        flash_duration: int = 1,
        flash_share: float = 0.5,
    ) -> None:
        if instances_per_epoch <= 0:
            raise WorkloadError("instances_per_epoch must be positive")
        if drift_per_epoch < 0:
            raise WorkloadError("drift_per_epoch must be non-negative")
        if flash_every < 0:
            raise WorkloadError("flash_every must be non-negative")
        if flash_every > 0 and flash_duration < 1:
            raise WorkloadError("flash_duration must be at least 1 epoch")
        if flash_every > 0 and not 0.0 < flash_share < 1.0:
            raise WorkloadError("flash_share must be in (0, 1)")
        self.n_items = n_items
        self.n_peers = n_peers
        self.instances_per_epoch = instances_per_epoch
        self.drift_per_epoch = drift_per_epoch
        self.flash_every = flash_every
        self.flash_duration = flash_duration
        self.flash_share = flash_share
        self._rng = rng
        self._rank_probabilities = zipf_probabilities(n_items, skew)
        self.epoch = 0
        self._flash_index = -1
        self._flash_item = -1

    @property
    def flash_active(self) -> bool:
        """Whether the *next* generated epoch falls in a flash window."""
        if self.flash_every <= 0 or self.epoch < self.flash_every:
            return False
        return self.epoch % self.flash_every < self.flash_duration

    @property
    def flash_item(self) -> int:
        """The current flash crowd's target item (-1 when none yet)."""
        return self._flash_item

    def _epoch_probabilities(self) -> np.ndarray:
        """This epoch's per-item probabilities (ranks rotated by drift,
        flash crowd spliced in when a flash window is open)."""
        offset = (self.epoch * self.drift_per_epoch) % self.n_items
        probabilities = np.roll(self._rank_probabilities, offset)
        if not self.flash_active:
            return probabilities
        index = self.epoch // self.flash_every
        if index != self._flash_index:
            # A new flash crowd: pick its target off the stream's own RNG
            # so same-seed runs flash the same item.
            self._flash_index = index
            self._flash_item = int(self._rng.integers(self.n_items))
        probabilities = probabilities * (1.0 - self.flash_share)
        probabilities[self._flash_item] += self.flash_share
        return probabilities

    def next_epoch(self) -> dict[int, LocalItemSet]:
        """Generate the next epoch's per-peer *increments*."""
        probabilities = self._epoch_probabilities()
        batch_values = self._rng.multinomial(
            self.instances_per_epoch, probabilities
        ).astype(np.int64)
        increments = scatter_instances(batch_values, self.n_peers, self._rng)
        self.epoch += 1
        return increments

    def apply_to(self, network: Network) -> dict[int, LocalItemSet]:
        """Generate an epoch and merge it into the peers' local sets.

        Returns the applied increments (tests use them to reconstruct
        expected totals).
        """
        increments = self.next_epoch()
        for peer, increment in increments.items():
            node = network.nodes.get(peer)
            if node is not None and node.alive:
                node.items = node.items.merge(increment)
        return increments
