"""Scattering item instances over peers.

The paper distributes the ``10·n`` generated item instances uniformly at
random over the ``N`` peers; a peer's local value for an item is the number
of that item's instances it received.  :func:`scatter_instances` implements
this at ``10^7``-instance scale without materializing per-instance Python
objects: instances become one flat array, are keyed by ``(peer, item)``,
and grouped with a single sort.

:func:`partition_to_item_sets` converts the grouped result into per-peer
:class:`~repro.items.itemset.LocalItemSet` objects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.items.itemset import LocalItemSet


def scatter_instances(
    global_values: np.ndarray,
    n_peers: int,
    rng: np.random.Generator,
) -> dict[int, LocalItemSet]:
    """Uniformly scatter each item's instances over peers.

    Parameters
    ----------
    global_values:
        ``global_values[j]`` instances of item ``j`` will be placed.
    n_peers:
        Population size ``N``.
    rng:
        Randomness source.

    Returns
    -------
    dict[int, LocalItemSet]
        Local item sets, one per peer that received at least one instance.
        By construction, summing local values per item over all peers
        recovers ``global_values`` exactly.
    """
    global_values = np.asarray(global_values, dtype=np.int64)
    if n_peers <= 0:
        raise WorkloadError(f"n_peers must be positive, got {n_peers}")
    if np.any(global_values < 0):
        raise WorkloadError("global values must be non-negative")
    n_items = global_values.size
    total = int(global_values.sum())
    if total == 0:
        return {}

    # One row per instance: which item it is, and which peer gets it.
    item_of_instance = np.repeat(
        np.arange(n_items, dtype=np.int64), global_values
    )
    peer_of_instance = rng.integers(0, n_peers, size=total, dtype=np.int64)

    # Group by (peer, item) with a single sort over a combined key.
    key = peer_of_instance * np.int64(n_items) + item_of_instance
    unique_keys, counts = np.unique(key, return_counts=True)
    peers = unique_keys // n_items
    items = unique_keys % n_items

    # Split the flat (peer, item, count) triples into per-peer sets.
    boundaries = np.flatnonzero(np.diff(peers)) + 1
    item_chunks = np.split(items, boundaries)
    count_chunks = np.split(counts, boundaries)
    peer_ids = peers[np.concatenate(([0], boundaries))]

    return {
        int(peer): LocalItemSet(chunk_items, chunk_counts.astype(np.int64))
        for peer, chunk_items, chunk_counts in zip(peer_ids, item_chunks, count_chunks)
    }


def partition_to_item_sets(
    assignments: dict[int, dict[int, int]]
) -> dict[int, LocalItemSet]:
    """Convert nested ``{peer: {item: value}}`` dictionaries (as produced
    by the application generators) into :class:`LocalItemSet` objects."""
    return {
        peer: LocalItemSet.from_pairs(values) for peer, values in assignments.items()
    }


def recombine_global_values(
    item_sets: dict[int, LocalItemSet], n_items: int | None = None
) -> np.ndarray:
    """Reconstruct global values from per-peer sets (the inverse of
    :func:`scatter_instances`; used by tests and the oracle)."""
    merged = LocalItemSet.merge_many(list(item_sets.values()))
    size = n_items if n_items is not None else (int(merged.ids.max()) + 1 if len(merged) else 0)
    values = np.zeros(size, dtype=np.int64)
    values[merged.ids] = merged.values
    return values
