"""Application workload generators — the paper's Table I.

Table I maps six P2P application operations onto the IFI problem.  Each
generator below produces the corresponding per-peer local item sets, plus
scenario metadata (e.g. the planted DoS victim) that the examples and tests
assert against.

============================  =========================================
Operation                      Generator
============================  =========================================
Frequent keywords              :func:`query_keyword_workload`
Co-occurring keyword pairs     :func:`keyword_pair_workload`
Frequent documents             :func:`document_replica_workload`
Popular peers                  :func:`popular_peer_workload`
Large flows to a destination   :func:`flow_destination_workload`
Frequent byte sequences        :func:`byte_sequence_workload`
============================  =========================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.distributions import partition_to_item_sets
from repro.workload.workload import Workload
from repro.workload.zipf import zipf_probabilities


def _draw_queries(
    n_queries: int,
    vocabulary_size: int,
    skew: float,
    rng: np.random.Generator,
    max_terms: int = 4,
) -> list[np.ndarray]:
    """Draw a query log: each query is 1..max_terms distinct Zipf keywords."""
    probabilities = zipf_probabilities(vocabulary_size, skew)
    lengths = rng.integers(1, max_terms + 1, size=n_queries)
    queries = []
    for length in lengths:
        terms = np.unique(rng.choice(vocabulary_size, size=int(length), p=probabilities))
        queries.append(terms)
    return queries


def query_keyword_workload(
    n_peers: int,
    vocabulary_size: int,
    queries_per_peer: int,
    rng: np.random.Generator,
    skew: float = 1.0,
) -> Workload:
    """Frequent-keyword identification (cache management).

    Table I: the local item set of peer ``i`` is the keywords appearing in
    the queries issued by peer ``i``; the local value of keyword ``X`` is
    the number of peer ``i``'s queries that contain ``X``.
    """
    item_sets: dict[int, dict[int, int]] = {}
    for peer in range(n_peers):
        counts: Counter[int] = Counter()
        for query in _draw_queries(queries_per_peer, vocabulary_size, skew, rng):
            counts.update(int(k) for k in query)
        item_sets[peer] = dict(counts)
    return Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=vocabulary_size,
        description=f"query-keywords(V={vocabulary_size}, q/peer={queries_per_peer})",
    )


def keyword_pair_workload(
    n_peers: int,
    vocabulary_size: int,
    queries_per_peer: int,
    rng: np.random.Generator,
    skew: float = 1.0,
) -> Workload:
    """Co-occurring keyword pairs (query refinement).

    Items are unordered keyword pairs, encoded as
    ``min(a,b) · V + max(a,b)``; the local value is how many of the peer's
    queries contain both keywords.
    """
    item_sets: dict[int, dict[int, int]] = {}
    for peer in range(n_peers):
        counts: Counter[int] = Counter()
        for query in _draw_queries(queries_per_peer, vocabulary_size, skew, rng):
            terms = query.tolist()
            for idx, a in enumerate(terms):
                for b in terms[idx + 1 :]:
                    counts[a * vocabulary_size + b] += 1
        item_sets[peer] = dict(counts)
    return Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=vocabulary_size * vocabulary_size,
        description=f"keyword-pairs(V={vocabulary_size})",
    )


def decode_keyword_pair(pair_id: int, vocabulary_size: int) -> tuple[int, int]:
    """Invert the pair encoding used by :func:`keyword_pair_workload`."""
    return pair_id // vocabulary_size, pair_id % vocabulary_size


def document_replica_workload(
    n_peers: int,
    n_documents: int,
    replicas_per_peer: int,
    rng: np.random.Generator,
    skew: float = 1.0,
) -> Workload:
    """Frequent-document identification (search technique design).

    Table I: items are documents stored at the peer; the local value of
    document ``X`` is the number of replicas of ``X`` the peer maintains.
    Popular documents are replicated on more peers (Zipf placement).
    """
    probabilities = zipf_probabilities(n_documents, skew)
    item_sets: dict[int, dict[int, int]] = {}
    for peer in range(n_peers):
        docs = rng.choice(n_documents, size=replicas_per_peer, p=probabilities)
        counts = Counter(int(d) for d in docs)
        item_sets[peer] = dict(counts)
    return Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=n_documents,
        description=f"document-replicas(D={n_documents})",
    )


def popular_peer_workload(
    n_peers: int,
    interactions_per_peer: int,
    rng: np.random.Generator,
    skew: float = 1.2,
) -> Workload:
    """Popular-peer identification (content mirroring, incentives).

    Items *are* peer identifiers; the local value of peer ``X`` at peer
    ``i`` is the number of peer ``i``'s queries that ``X`` answered
    satisfactorily.  A few peers (low ranks) answer most queries.
    """
    probabilities = zipf_probabilities(n_peers, skew)
    item_sets: dict[int, dict[int, int]] = {}
    for peer in range(n_peers):
        providers = rng.choice(n_peers, size=interactions_per_peer, p=probabilities)
        counts = Counter(int(p) for p in providers if int(p) != peer)
        item_sets[peer] = dict(counts)
    return Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=n_peers,
        description=f"popular-peers(N={n_peers})",
    )


@dataclass(frozen=True)
class DoSScenario:
    """Metadata of a planted denial-of-service attack."""

    victim_address: int
    attack_bytes_total: int
    background_addresses: int


def flow_destination_workload(
    n_peers: int,
    n_addresses: int,
    flows_per_peer: int,
    rng: np.random.Generator,
    victim_address: int | None = None,
    attack_flows_per_peer: int = 5,
    attack_flow_bytes: int = 1500,
    background_flow_bytes: int = 40,
    attacker_fraction: float = 0.3,
    skew: float = 0.8,
) -> tuple[Workload, DoSScenario]:
    """Large-flow-to-destination identification (DoS attack detection).

    Table I: items are destination addresses seen in packets passing
    through the peer; the local value of address ``X`` is the size of the
    traffic destined to ``X``.  A fraction of peers additionally forwards
    attack traffic to one victim address; IFI with a suitable threshold
    must surface exactly that address.
    """
    if not 0 < attacker_fraction <= 1:
        raise WorkloadError("attacker_fraction must be in (0, 1]")
    if victim_address is None:
        victim_address = int(rng.integers(0, n_addresses))
    probabilities = zipf_probabilities(n_addresses, skew)
    item_sets: dict[int, dict[int, int]] = {}
    attack_total = 0
    attackers = rng.random(n_peers) < attacker_fraction
    for peer in range(n_peers):
        destinations = rng.choice(n_addresses, size=flows_per_peer, p=probabilities)
        sizes = rng.poisson(background_flow_bytes, size=flows_per_peer) + 1
        counts: Counter[int] = Counter()
        for destination, size in zip(destinations.tolist(), sizes.tolist()):
            counts[int(destination)] += int(size)
        if attackers[peer]:
            volume = attack_flows_per_peer * attack_flow_bytes
            counts[victim_address] += volume
            attack_total += volume
        item_sets[peer] = dict(counts)
    workload = Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=n_addresses,
        description=f"dos-flows(addresses={n_addresses})",
    )
    scenario = DoSScenario(
        victim_address=victim_address,
        attack_bytes_total=attack_total,
        background_addresses=n_addresses,
    )
    return workload, scenario


@dataclass(frozen=True)
class WormScenario:
    """Metadata of a planted worm signature."""

    signature_id: int
    infected_peers: tuple[int, ...]
    flows_with_signature: int


def byte_sequence_workload(
    n_peers: int,
    n_sequences: int,
    flows_per_peer: int,
    rng: np.random.Generator,
    signature_id: int | None = None,
    infected_fraction: float = 0.4,
    signature_flows_per_infected: int = 30,
    skew: float = 1.0,
) -> tuple[Workload, WormScenario]:
    """Frequent byte-sequence identification (Internet worm detection).

    Table I: items are byte sequences appearing in traffic passing through
    the peer; the local value of sequence ``X`` is the number of flows
    containing ``X``.  A worm's invariant payload substring shows up in
    many flows across many vantage points — the planted signature here.
    """
    if signature_id is None:
        signature_id = int(rng.integers(0, n_sequences))
    probabilities = zipf_probabilities(n_sequences, skew)
    item_sets: dict[int, dict[int, int]] = {}
    infected: list[int] = []
    signature_flows = 0
    for peer in range(n_peers):
        sequences = rng.choice(n_sequences, size=flows_per_peer, p=probabilities)
        counts = Counter(int(s) for s in sequences)
        if rng.random() < infected_fraction:
            infected.append(peer)
            counts[signature_id] += signature_flows_per_infected
            signature_flows += signature_flows_per_infected
        item_sets[peer] = dict(counts)
    workload = Workload.from_item_sets(
        partition_to_item_sets(item_sets),
        n_peers=n_peers,
        n_items=n_sequences,
        description=f"worm-sequences(S={n_sequences})",
    )
    scenario = WormScenario(
        signature_id=signature_id,
        infected_peers=tuple(infected),
        flows_with_signature=signature_flows,
    )
    return workload, scenario
