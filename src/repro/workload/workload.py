"""The :class:`Workload` container.

A workload couples the per-peer local item sets with the generation
parameters and the (generation-side) ground truth, giving the experiments
one object to build, install on a network, and check results against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.items.itemset import LocalItemSet
from repro.workload.distributions import scatter_instances
from repro.workload.zipf import zipf_global_values


@dataclass(frozen=True)
class Workload:
    """Per-peer item data plus generation metadata.

    Attributes
    ----------
    item_sets:
        ``{peer_id: LocalItemSet}``.  Peers without data are absent.
    n_items:
        The distinct-item universe size ``n``.
    n_peers:
        The peer population ``N`` it was generated for.
    description:
        Human-readable provenance for reports.
    """

    item_sets: dict[int, LocalItemSet]
    n_items: int
    n_peers: int
    description: str = "custom"
    _global_values_cache: list = field(
        default_factory=list, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def zipf(
        cls,
        n_items: int,
        n_peers: int,
        skew: float,
        rng: np.random.Generator,
        instances_per_item: int = 10,
    ) -> "Workload":
        """The paper's evaluation workload (Table III).

        ``instances_per_item · n_items`` instances are generated with
        Zipf(``skew``) frequencies and scattered uniformly over peers, so
        each peer holds about ``instances_per_item · n_items / n_peers``
        instances.
        """
        total = instances_per_item * n_items
        global_values = zipf_global_values(n_items, skew, total, rng)
        item_sets = scatter_instances(global_values, n_peers, rng)
        return cls(
            item_sets=item_sets,
            n_items=n_items,
            n_peers=n_peers,
            description=(
                f"zipf(n={n_items}, N={n_peers}, alpha={skew}, "
                f"total={total})"
            ),
        )

    @classmethod
    def from_item_sets(
        cls,
        item_sets: dict[int, LocalItemSet],
        n_peers: int,
        n_items: int | None = None,
        description: str = "custom",
    ) -> "Workload":
        """Wrap explicit per-peer item sets (application generators use
        this)."""
        if n_items is None:
            n_items = 0
            for item_set in item_sets.values():
                if len(item_set):
                    n_items = max(n_items, int(item_set.ids.max()) + 1)
        return cls(
            item_sets=dict(item_sets),
            n_items=n_items,
            n_peers=n_peers,
            description=description,
        )

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def global_values(self) -> np.ndarray:
        """Exact global value per item (length ``n_items``), computed by
        merging all local sets.  Cached after the first call."""
        if not self._global_values_cache:
            merged = LocalItemSet.merge_many(list(self.item_sets.values()))
            values = np.zeros(self.n_items, dtype=np.int64)
            if len(merged):
                if int(merged.ids.max()) >= self.n_items:
                    raise WorkloadError(
                        "item id exceeds declared n_items "
                        f"({int(merged.ids.max())} >= {self.n_items})"
                    )
                values[merged.ids] = merged.values
            self._global_values_cache.append(values)
        return self._global_values_cache[0]

    @property
    def total_value(self) -> int:
        """The grand total ``v = Σ_x v_x``."""
        return int(self.global_values().sum())

    def threshold(self, threshold_ratio: float) -> int:
        """``t = ρ · v`` (Section IV expresses thresholds as ratios)."""
        if not 0 < threshold_ratio <= 1:
            raise WorkloadError(
                f"threshold_ratio must be in (0, 1], got {threshold_ratio}"
            )
        return int(np.ceil(threshold_ratio * self.total_value))

    def frequent_items(self, threshold: int) -> np.ndarray:
        """Ground-truth ``IFI(A, t)``: ids of items with global value
        ≥ ``threshold``, ascending."""
        return np.flatnonzero(self.global_values() >= threshold)

    def heavy_count(self, threshold: int) -> int:
        """``r`` — the number of heavy (frequent) items."""
        return int(self.frequent_items(threshold).size)

    # ------------------------------------------------------------------
    # Statistics the analysis needs (Section IV)
    # ------------------------------------------------------------------
    def mean_value(self) -> float:
        """``v̄`` — average global value over all n items."""
        return self.total_value / self.n_items if self.n_items else 0.0

    def mean_light_value(self, threshold: int) -> float:
        """``v̄_light`` — average global value of the light items."""
        values = self.global_values()
        light = values[values < threshold]
        return float(light.mean()) if light.size else 0.0

    def distinct_items_per_peer(self) -> float:
        """``o`` — mean number of distinct items in a peer's local set."""
        if not self.item_sets:
            return 0.0
        return sum(len(s) for s in self.item_sets.values()) / self.n_peers
