"""Workload generation.

The paper's evaluation (Section V, Table III) generates ``10·n`` instances
of ``n`` distinct items with Zipf-distributed frequencies (skew ``α``) and
scatters them uniformly over the ``N`` peers, so each peer ends up with
``10·n/N`` item instances.  :func:`~repro.workload.workload.Workload.zipf`
reproduces exactly that.

Beyond the synthetic evaluation workload, :mod:`repro.workload.applications`
implements generators for the six applications of the paper's Table I
(frequent query keywords, co-occurring keyword pairs, document replicas,
popular peers, large traffic flows / DoS detection, frequent byte
sequences / worm detection) — these drive the example programs.
"""

from repro.workload.streams import ZipfStream
from repro.workload.workload import Workload
from repro.workload.zipf import zipf_global_values, zipf_probabilities

__all__ = ["Workload", "ZipfStream", "zipf_global_values", "zipf_probabilities"]
