"""Root selection strategies (Section III-A.1).

The paper: "A designated peer is first chosen as the root node of the
hierarchy... This designated peer could be a randomly selected peer, the
most stable peer, or a peer that is close to the center of the network.
In this study, we choose a peer randomly as the root node and leave other
options for future exploration."

All three options are implemented here; the experiments default to the
paper's random choice, and the root-selection ablation quantifies what
the others buy (a central root shortens the hierarchy, a stable root
fails less often).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import HierarchyError
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.hierarchy.builder import Hierarchy


def random_root(network: Network, rng: np.random.Generator) -> int:
    """The paper's default: a uniformly random live peer."""
    live = network.live_peers()
    if not live:
        raise HierarchyError("no live peers to choose a root from")
    return int(live[int(rng.integers(0, len(live)))])


def most_stable_root(network: Network, uptimes: Mapping[int, float]) -> int:
    """The live peer with the longest observed uptime.

    ``uptimes`` maps peer id to its session length so far — in a real
    deployment this is tracked locally and piggybacked on heartbeats; in
    the simulator the churn model can supply it.
    """
    live = set(network.live_peers())
    if not live:
        raise HierarchyError("no live peers to choose a root from")
    known = [peer for peer in uptimes if peer in live]
    if not known:
        raise HierarchyError("no uptime information for any live peer")
    return max(known, key=lambda peer: (uptimes[peer], -peer))


def central_root(network: Network) -> int:
    """A live peer of minimum eccentricity (a center of the live overlay).

    A central root halves the worst-case hierarchy height versus a
    peripheral one, shortening every convergecast.  Computed by BFS from
    every live peer — O(V·E), fine at simulation scales.
    """
    live = network.live_peers()
    if not live:
        raise HierarchyError("no live peers to choose a root from")
    best_peer, best_eccentricity = -1, None
    for source in live:
        depths = {source: 0}
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for peer in frontier:
                for other in network.live_neighbors(peer):
                    if other not in depths:
                        depths[other] = depths[peer] + 1
                        nxt.append(other)
            frontier = nxt
        eccentricity = max(depths.values())
        if best_eccentricity is None or eccentricity < best_eccentricity:
            best_peer, best_eccentricity = source, eccentricity
    return best_peer


def failover_successor(hierarchy: "Hierarchy", dead_root: int) -> int | None:
    """The deterministic successor when ``dead_root`` has died.

    Election order: among the dead root's live orphans — peers whose
    upstream neighbour is (or, for those that already detached, was)
    ``dead_root`` — pick the most stable (earliest
    :attr:`~repro.net.node.Node.up_since`), tie-broken by smallest peer
    id.  Mirrors the paper's "most stable peer" root-selection option,
    applied to the depth-1 ring instead of the whole population.

    Every orphan evaluates this function over shared simulation state, so
    they all agree on the winner without extra messaging; the winner
    promotes itself and the rest wait for its heartbeat.  Returns ``None``
    when the dead root has no live orphans (nothing to fail over).
    """
    network = hierarchy.network
    candidates = []
    for peer, service in hierarchy.services.items():
        if not network.node(peer).alive:
            continue
        state = service.state
        orphaned = state.upstream == dead_root or (
            not state.attached and state.former_upstream == dead_root
        )
        if orphaned:
            candidates.append(peer)
    if not candidates:
        return None
    return min(candidates, key=lambda p: (network.node(p).up_since, p))
