"""Hierarchy repair after churn (Section III-A.3).

The paper's repair protocol, verbatim:

* Heartbeats carry a ``DEPTH`` counter.
* A peer that detects the loss of its *upstream* neighbour sets its own
  depth to ∞ and recursively informs its downstream neighbours to do the
  same (the ``INVALIDATE`` cascade here).
* A peer at depth ∞ that receives a heartbeat from a neighbour ``P`` with
  finite depth attaches under ``P`` at depth ``d(P) + 1``.
* A newly joined peer is accommodated the same way: it starts detached and
  attaches to the first finite-depth neighbour it hears.

:class:`MaintenanceService` wires one node's
:class:`~repro.net.heartbeat.HeartbeatService` into its
:class:`~repro.hierarchy.builder.HierarchyService` to implement exactly
this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.codec import register_payload
from repro.net.heartbeat import HeartbeatConfig, HeartbeatService
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.wire import CostCategory, SizeModel
from repro.hierarchy.builder import Hierarchy, HierarchyService
from repro.types import INFINITE_DEPTH


@register_payload
@dataclass(frozen=True)
class InvalidatePayload(Payload):
    """"Your subtree lost its root path — set your depth to ∞ too"."""

    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@register_payload
@dataclass(frozen=True)
class ResetPayload(Payload):
    """A rejoining peer's announcement: "I crashed and remember nothing —
    drop any hierarchy relationship you had with me".

    Without this, a peer that fails and revives *faster than the failure
    detector's timeout* leaves its old parent with a stale child entry and
    its old children with a parent that has forgotten them.
    """

    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


class MaintenanceService:
    """Heartbeat-driven repair for one peer.

    Parameters
    ----------
    hierarchy_service:
        The peer's hierarchy state machine.
    heartbeat_config:
        Timing for the underlying heartbeat/failure-detection service.
    """

    def __init__(
        self,
        hierarchy_service: HierarchyService,
        heartbeat_config: HeartbeatConfig | None = None,
    ) -> None:
        self._hier = hierarchy_service
        node = hierarchy_service.node
        node.register_handler(InvalidatePayload, self._handle_invalidate)
        node.register_handler(ResetPayload, self._handle_reset)
        self.heartbeats = HeartbeatService(
            node,
            heartbeat_config or HeartbeatConfig(),
            depth_provider=lambda: self._hier.state.depth,
            on_heartbeat=self._on_heartbeat,
            on_neighbor_down=self._on_neighbor_down,
        )

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_neighbor_down(self, neighbor: int) -> None:
        state = self._hier.state
        node = self._hier.node
        if neighbor in state.downstream:
            self._hier.drop_child(neighbor)
            node.network.sim.trace.emit(
                node.network.sim.now,
                "hierarchy.child_dropped",
                peer=node.peer_id,
                child=neighbor,
            )
        if state.upstream == neighbor:
            self._start_invalidation()

    def _start_invalidation(self) -> None:
        """Detach and cascade ∞-depth into the subtree (paper III-A.3)."""
        state = self._hier.state
        node = self._hier.node
        sim = node.network.sim
        state.detach()
        sim.telemetry.registry.counter("hierarchy.invalidations").inc()
        sim.trace.emit(sim.now, "hierarchy.invalidated", peer=node.peer_id)
        payload = InvalidatePayload()
        for child in sorted(state.downstream):
            node.send(child, payload)

    def _handle_invalidate(self, message: Message) -> None:
        state = self._hier.state
        # Only cascade if the message came from our current upstream —
        # a stale invalidate from a former parent must not tear down a
        # subtree that already reattached elsewhere.
        if state.upstream == message.sender and state.attached:
            self._start_invalidation()

    # ------------------------------------------------------------------
    # Rejoin handling
    # ------------------------------------------------------------------
    def announce_reset(self) -> None:
        """Tell all overlay neighbours to forget me (sent on rejoin)."""
        node = self._hier.node
        payload = ResetPayload()
        for neighbor in node.network.topology.adjacency[node.peer_id]:
            node.send(neighbor, payload)

    def _handle_reset(self, message: Message) -> None:
        state = self._hier.state
        self._hier.drop_child(message.sender)
        if state.upstream == message.sender and state.attached:
            self._start_invalidation()

    # ------------------------------------------------------------------
    # Reattachment and depth reconciliation
    # ------------------------------------------------------------------
    def _on_heartbeat(self, neighbor: int, depth: int) -> None:
        state = self._hier.state
        node = self._hier.node
        if state.attached and neighbor == state.upstream:
            # Continuous reconciliation against the parent's advertised
            # depth.  This is the cycle breaker: reattachment races (a peer
            # adopting a parent based on a heartbeat sent *before* that
            # parent was invalidated) can create parent loops, in which the
            # reconciled depths count up without bound; once a depth
            # exceeds the population size — impossible in any real tree —
            # the peer detaches and the loop dissolves.
            if depth >= INFINITE_DEPTH:
                self._start_invalidation()
            elif state.depth != depth + 1:
                if depth + 1 > node.network.n_peers:
                    self._start_invalidation()
                else:
                    state.depth = depth + 1
            return
        if state.attached or depth >= INFINITE_DEPTH:
            return
        if depth + 1 > node.network.n_peers:
            return  # an absurd depth is itself evidence of a loop
        self._hier.attach_under(neighbor, depth + 1)
        sim = node.network.sim
        sim.telemetry.registry.counter("hierarchy.reattachments").inc()
        sim.trace.emit(
            sim.now,
            "hierarchy.reattached",
            peer=node.peer_id,
            parent=neighbor,
            depth=depth + 1,
        )


def enable_maintenance(
    hierarchy: Hierarchy,
    heartbeat_config: HeartbeatConfig | None = None,
) -> dict[int, MaintenanceService]:
    """Attach a :class:`MaintenanceService` to every hierarchy participant.

    Newly revived peers are integrated automatically: a join listener
    installs fresh hierarchy + maintenance services, and the peer attaches
    on the first finite-depth heartbeat it receives (paper III-A.3's
    join handling).
    """
    config = heartbeat_config or HeartbeatConfig()
    services = {
        peer: MaintenanceService(service, config)
        for peer, service in hierarchy.services.items()
        if hierarchy.network.node(peer).alive
    }

    def integrate_new_peer(peer: int) -> None:
        node = hierarchy.network.node(peer)
        hier_service = HierarchyService(node)
        hierarchy.services[peer] = hier_service
        maintenance = MaintenanceService(hier_service, config)
        services[peer] = maintenance
        maintenance.announce_reset()

    hierarchy.network.on_join(integrate_new_peer)
    return services
