"""Hierarchy repair after churn (Section III-A.3).

The paper's repair protocol, verbatim:

* Heartbeats carry a ``DEPTH`` counter.
* A peer that detects the loss of its *upstream* neighbour sets its own
  depth to ∞ and recursively informs its downstream neighbours to do the
  same (the ``INVALIDATE`` cascade here).
* A peer at depth ∞ that receives a heartbeat from a neighbour ``P`` with
  finite depth attaches under ``P`` at depth ``d(P) + 1``.
* A newly joined peer is accommodated the same way: it starts detached and
  attaches to the first finite-depth neighbour it hears.

Two hardening layers sit on top of the paper's design:

* **Generation fencing** (:mod:`repro.hierarchy.generation`): repair
  messages and heartbeats carry the sender's epoch, and anything stamped
  with an older epoch is dropped-and-counted instead of re-wiring current
  state.  The ``depth > n_peers`` loop heuristic is thereby demoted to a
  true last resort — when it still fires, a ``hierarchy.cycle_break``
  alarm records it.
* **Root failover**: when the *root* dies, rather than leaving the whole
  tree permanently detached, a deterministic successor — the most stable
  live peer under the dead root, tie-broken by smallest id (see
  :func:`repro.hierarchy.root_selection.failover_successor`) — promotes
  itself to depth 0, bumps the generation, and announces the new epoch
  through an immediate heartbeat.  Every other orphan runs the ordinary
  INVALIDATE cascade and reattaches under the new epoch.

:class:`MaintenanceService` wires one node's
:class:`~repro.net.heartbeat.HeartbeatService` into its
:class:`~repro.hierarchy.builder.HierarchyService` to implement exactly
this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.codec import register_payload
from repro.net.heartbeat import HeartbeatConfig, HeartbeatService
from repro.net.message import Message, Payload
from repro.net.wire import CostCategory, SizeModel
from repro.hierarchy.builder import Hierarchy, HierarchyService
from repro.hierarchy.generation import fence_stale
from repro.hierarchy.root_selection import failover_successor
from repro.types import INFINITE_DEPTH


@register_payload
@dataclass(frozen=True)
class InvalidatePayload(Payload):
    """"Your subtree lost its root path — set your depth to ∞ too".

    Stamped with the sender's generation so an INVALIDATE from a
    superseded epoch cannot tear down a subtree that already joined a
    newer one.
    """

    generation: int = 0
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return 2 * model.aggregate_bytes


@register_payload
@dataclass(frozen=True)
class ResetPayload(Payload):
    """A rejoining peer's announcement: "I crashed and remember nothing —
    drop any hierarchy relationship you had with me".

    Without this, a peer that fails and revives *faster than the failure
    detector's timeout* leaves its old parent with a stale child entry and
    its old children with a parent that has forgotten them.  A freshly
    revived peer makes no generation claim (0), so its reset always
    passes the fence.
    """

    generation: int = 0
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return 2 * model.aggregate_bytes


class MaintenanceService:
    """Heartbeat-driven repair for one peer.

    Parameters
    ----------
    hierarchy_service:
        The peer's hierarchy state machine.
    heartbeat_config:
        Timing for the underlying heartbeat/failure-detection service.
    hierarchy:
        The tree facade, when known.  Required for root failover: the
        facade names the current root, and the promoted successor updates
        it so in-flight queries can be re-aimed.  ``None`` disables
        failover (orphans of a dead root simply stay detached).
    """

    def __init__(
        self,
        hierarchy_service: HierarchyService,
        heartbeat_config: HeartbeatConfig | None = None,
        hierarchy: Hierarchy | None = None,
    ) -> None:
        self._hier = hierarchy_service
        self._facade = hierarchy
        node = hierarchy_service.node
        node.register_handler(InvalidatePayload, self._handle_invalidate)
        node.register_handler(ResetPayload, self._handle_reset)
        self.heartbeats = HeartbeatService(
            node,
            heartbeat_config or HeartbeatConfig(),
            depth_provider=lambda: self._hier.state.depth,
            generation_provider=lambda: self._hier.state.generation,
            upstream_provider=lambda: self._hier.state.upstream,
            on_heartbeat=self._on_heartbeat,
            on_neighbor_down=self._on_neighbor_down,
        )

    def shutdown(self) -> None:
        """Stop heartbeats and watchdogs (peer crashed or tree torn down).

        Idempotent; also runs automatically through the node's failure
        hooks, but the network-level crash listener calls it explicitly so
        a retired service cannot be left half-armed.
        """
        self.heartbeats.stop()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_neighbor_down(self, neighbor: int) -> None:
        state = self._hier.state
        node = self._hier.node
        if neighbor in state.downstream:
            self._hier.drop_child(neighbor)
            node.network.sim.trace.emit(
                node.network.sim.now,
                "hierarchy.child_dropped",
                peer=node.peer_id,
                child=neighbor,
            )
        if state.upstream == neighbor:
            if self._facade is not None and neighbor == self._facade.root:
                # Our parent was the root itself: run the failover
                # election.  Deterministic — every orphan computes the
                # same successor from shared state, so exactly one
                # promotes itself and the rest detach and wait for the
                # new epoch's heartbeats.
                if failover_successor(self._facade, neighbor) == node.peer_id:
                    self._promote_to_root(neighbor)
                    return
            self._start_invalidation()

    def _promote_to_root(self, old_root: int) -> None:
        """Take over as root: depth 0, next generation, announce now."""
        state = self._hier.state
        node = self._hier.node
        sim = node.network.sim
        assert self._facade is not None
        state.upstream = None
        state.former_upstream = None
        state.depth = 0
        state.downstream.discard(old_root)
        state.generation += 1
        self._facade.root = node.peer_id
        node.network.record_hierarchy_generation(self._facade.tag, state.generation)
        sim.telemetry.registry.counter("hierarchy.root_failovers").inc()
        sim.trace.emit(
            sim.now,
            "hierarchy.root_promoted",
            peer=node.peer_id,
            old_root=old_root,
            generation=state.generation,
        )
        # Announce the new epoch immediately — orphans reattach on this
        # heartbeat instead of waiting out a full interval.
        self.heartbeats.beat_now()

    def _start_invalidation(self) -> None:
        """Detach and cascade ∞-depth into the subtree (paper III-A.3)."""
        state = self._hier.state
        node = self._hier.node
        sim = node.network.sim
        generation = state.generation
        state.detach()
        sim.telemetry.registry.counter("hierarchy.invalidations").inc()
        sim.trace.emit(sim.now, "hierarchy.invalidated", peer=node.peer_id)
        payload = InvalidatePayload(generation=generation)
        for child in sorted(state.downstream):
            node.send(child, payload)

    def _handle_invalidate(self, message: Message) -> None:
        state = self._hier.state
        payload = message.payload
        assert isinstance(payload, InvalidatePayload)
        node = self._hier.node
        if fence_stale(
            node.network.sim,
            context="invalidate",
            peer=node.peer_id,
            sender=message.sender,
            msg_generation=payload.generation,
            local_generation=state.generation,
        ):
            return
        # Only cascade if the message came from our current upstream —
        # a same-epoch invalidate from a former parent must not tear down
        # a subtree that already reattached elsewhere.
        if state.upstream == message.sender and state.attached:
            self._start_invalidation()

    # ------------------------------------------------------------------
    # Rejoin handling
    # ------------------------------------------------------------------
    def announce_reset(self) -> None:
        """Tell all overlay neighbours to forget me (sent on rejoin)."""
        node = self._hier.node
        payload = ResetPayload(generation=self._hier.state.generation)
        for neighbor in node.network.topology.adjacency[node.peer_id]:
            node.send(neighbor, payload)

    def _handle_reset(self, message: Message) -> None:
        state = self._hier.state
        payload = message.payload
        assert isinstance(payload, ResetPayload)
        node = self._hier.node
        if fence_stale(
            node.network.sim,
            context="reset",
            peer=node.peer_id,
            sender=message.sender,
            msg_generation=payload.generation,
            local_generation=state.generation,
        ):
            return
        self._hier.drop_child(message.sender)
        if state.upstream == message.sender and state.attached:
            self._start_invalidation()

    # ------------------------------------------------------------------
    # Reattachment and depth reconciliation
    # ------------------------------------------------------------------
    def _cycle_break(self, neighbor: int, depth: int, effect: str) -> None:
        """The demoted last-resort loop heuristic — alarmed, never silent."""
        node = self._hier.node
        sim = node.network.sim
        sim.telemetry.registry.counter("hierarchy.cycle_breaks").inc()
        sim.trace.emit(
            sim.now,
            "hierarchy.cycle_break",
            peer=node.peer_id,
            neighbor=neighbor,
            depth=depth,
            effect=effect,
        )

    def _abdicate(self, neighbor: int, depth: int, generation: int) -> None:
        """Step down as root and join the newer epoch under ``neighbor``."""
        node = self._hier.node
        sim = node.network.sim
        self._hier.attach_under(neighbor, depth + 1, generation=generation)
        sim.telemetry.registry.counter("hierarchy.root_abdications").inc()
        sim.trace.emit(
            sim.now,
            "hierarchy.root_abdicated",
            peer=node.peer_id,
            parent=neighbor,
            generation=generation,
        )

    def _on_heartbeat(
        self, neighbor: int, depth: int, generation: int, upstream: int | None
    ) -> None:
        state = self._hier.state
        node = self._hier.node
        if fence_stale(
            node.network.sim,
            context="heartbeat",
            peer=node.peer_id,
            sender=neighbor,
            msg_generation=generation,
            local_generation=state.generation,
        ):
            return
        # Downstream-set reconciliation: the sender's upstream claim is
        # current evidence of who its parent is, and it settles both ways
        # a register/unregister exchange can go stale.
        if state.attached and neighbor != state.upstream:
            sim = node.network.sim
            if upstream == node.peer_id and neighbor not in state.downstream:
                # A live neighbour still claims us as its parent, but we
                # do not list it: a false suspicion dropped the child,
                # and the child never learned.  Re-adopt instead of
                # leaving the tree permanently asymmetric.
                state.downstream.add(neighbor)
                sim.telemetry.registry.counter("hierarchy.child_readoptions").inc()
                sim.trace.emit(
                    sim.now,
                    "hierarchy.child_readopted",
                    peer=node.peer_id,
                    child=neighbor,
                )
            elif upstream != node.peer_id and neighbor in state.downstream:
                # The inverse staleness: we list a child that has since
                # attached elsewhere (e.g. a delayed pre-move heartbeat
                # re-adopted it after its unregister was processed).
                self._hier.drop_child(neighbor)
                sim.telemetry.registry.counter("hierarchy.stale_children_dropped").inc()
                sim.trace.emit(
                    sim.now,
                    "hierarchy.stale_child_dropped",
                    peer=node.peer_id,
                    child=neighbor,
                    claimed_parent=upstream,
                )
        if state.attached and neighbor == state.upstream:
            # The parent's epoch is authoritative for its subtree: adopt a
            # newer generation (e.g. after a root promotion upstream).
            if generation > state.generation:
                state.generation = generation
            # Continuous reconciliation against the parent's advertised
            # depth.  Reattachment races (a peer adopting a parent based
            # on a heartbeat sent *before* that parent was invalidated)
            # can create parent loops, in which the reconciled depths
            # count up without bound; generation fencing prevents the
            # cross-epoch variants, and the depth bound remains as a
            # last-resort breaker — with an alarm, because it firing
            # means fencing missed a same-epoch race.
            if depth >= INFINITE_DEPTH:
                self._start_invalidation()
            elif state.depth != depth + 1:
                if depth + 1 > node.network.n_peers:
                    self._cycle_break(neighbor, depth + 1, effect="detach")
                    self._start_invalidation()
                else:
                    state.depth = depth + 1
            return
        if state.attached and state.upstream is None:
            # A *root* hearing a strictly newer epoch lost a split-brain
            # race: it was falsely suspected (partition, delay burst), a
            # successor was elected, and both now claim depth 0.  The
            # generation totally orders the claims — the older root
            # abdicates and rejoins the newer tree as a plain peer,
            # keeping its subtree (descendants adopt the new epoch
            # through ordinary parent-heartbeat reconciliation).
            if generation > state.generation and depth < INFINITE_DEPTH:
                self._abdicate(neighbor, depth, generation)
            return
        if state.attached or depth >= INFINITE_DEPTH:
            return
        if depth + 1 > node.network.n_peers:
            self._cycle_break(neighbor, depth + 1, effect="refuse")
            return
        self._hier.attach_under(neighbor, depth + 1, generation=generation)
        sim = node.network.sim
        sim.telemetry.registry.counter("hierarchy.reattachments").inc()
        sim.trace.emit(
            sim.now,
            "hierarchy.reattached",
            peer=node.peer_id,
            parent=neighbor,
            depth=depth + 1,
        )


def enable_maintenance(
    hierarchy: Hierarchy,
    heartbeat_config: HeartbeatConfig | None = None,
) -> dict[int, MaintenanceService]:
    """Attach a :class:`MaintenanceService` to every hierarchy participant.

    Newly revived peers are integrated automatically: a join listener
    installs fresh hierarchy + maintenance services, and the peer attaches
    on the first finite-depth heartbeat it receives (paper III-A.3's
    join handling).  Symmetrically, a *crash* listener retires the dead
    peer's maintenance service — its heartbeat timer and watchdogs stop,
    and revival installs a fresh service rather than resurrecting one
    with pre-crash detector state.
    """
    config = heartbeat_config or HeartbeatConfig()
    services = {
        peer: MaintenanceService(service, config, hierarchy=hierarchy)
        for peer, service in hierarchy.services.items()
        if hierarchy.network.node(peer).alive
    }

    def integrate_new_peer(peer: int) -> None:
        node = hierarchy.network.node(peer)
        hier_service = HierarchyService(node, tag=hierarchy.tag)
        hierarchy.services[peer] = hier_service
        maintenance = MaintenanceService(hier_service, config, hierarchy=hierarchy)
        services[peer] = maintenance
        maintenance.announce_reset()

    def retire_crashed_peer(peer: int) -> None:
        maintenance = services.pop(peer, None)
        if maintenance is not None:
            maintenance.shutdown()

    hierarchy.network.on_join(integrate_new_peer)
    hierarchy.network.on_crash(retire_crashed_peer)
    return services
