"""Per-node hierarchy state.

Each participating peer tracks its depth, its upstream neighbour (parent)
and its downstream neighbours (children).  The paper's terminology
(Section III-A.1): the *root* has depth 0; peers with no downstream
neighbours are *leaf nodes*; everything else is an *internal node*.  During
repair (Section III-A.3) a peer's depth is temporarily "infinite" — here
that peer is *detached*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.types import INFINITE_DEPTH


class NodeRole(enum.Enum):
    """A peer's role in the hierarchy."""

    ROOT = "root"
    INTERNAL = "internal"
    LEAF = "leaf"
    DETACHED = "detached"


@dataclass
class HierarchyState:
    """Mutable hierarchy bookkeeping for one peer.

    Attributes
    ----------
    depth:
        Hops from the root along the tree (0 for the root,
        ``INFINITE_DEPTH`` while detached).
    upstream:
        Parent peer id, or ``None`` for the root / detached peers.
    downstream:
        Child peer ids.
    """

    depth: int = INFINITE_DEPTH
    upstream: int | None = None
    downstream: set[int] = field(default_factory=set)
    #: The hierarchy generation (fencing epoch) this state belongs to —
    #: see :mod:`repro.hierarchy.generation`.  0 means "no claim yet".
    #: Survives :meth:`detach`: a detached peer still fences traffic from
    #: epochs older than the one it last participated in.
    generation: int = 0
    #: The upstream neighbour held before the last detach.  Needed so a
    #: peer that reattaches under a *different* parent can unregister from
    #: the old one — otherwise the old parent keeps a stale child forever.
    former_upstream: int | None = None

    @property
    def attached(self) -> bool:
        """Whether the peer currently has a finite depth."""
        return self.depth < INFINITE_DEPTH

    @property
    def role(self) -> NodeRole:
        """The peer's current role."""
        if not self.attached:
            return NodeRole.DETACHED
        if self.depth == 0:
            return NodeRole.ROOT
        if not self.downstream:
            return NodeRole.LEAF
        return NodeRole.INTERNAL

    def detach(self) -> None:
        """Enter the repair state of Section III-A.3 (depth ← ∞).

        The downstream set is kept: children that reattach elsewhere
        unregister explicitly, and dead children are removed by the
        failure detector.
        """
        if self.upstream is not None:
            self.former_upstream = self.upstream
        self.depth = INFINITE_DEPTH
        self.upstream = None
