"""Generation fencing for hierarchy state (the epoch rule).

Every hierarchy build and every completed repair that changes the root
bumps a per-tree monotone *generation* (issued by
:meth:`repro.net.network.Network.next_hierarchy_generation`).  Heartbeats,
``InvalidatePayload``/``ResetPayload`` and all aggregation request/reply
payloads carry the sender's generation, and every receiver applies one
rule before touching its own state:

    a message stamped with an older generation than the receiver's is
    **stale** — drop it and count it.

Generation ``NO_GENERATION`` (0) means "no claim": bootstrap traffic from
peers that have not yet joined any build (e.g. the RESET announcement of a
freshly revived peer) always passes the fence, and messages are never
dropped by receivers that hold no generation themselves.  Newer-than-local
generations also pass — they are the repair mechanism's way of telling a
peer its state is out of date, and the receiver adopts the newer epoch.

This one rule replaces the ad-hoc late-reply and stale-INVALIDATE guards
that previously each protocol implemented on its own, and it is what lets
a promoted root invalidate in-flight traffic addressed to the old epoch
deterministically (SDIMS and Astrolabe fence their aggregation trees the
same way; see PAPERS.md).
"""

from __future__ import annotations

from repro.sim.engine import Simulation

#: The "no claim" generation: traffic stamped 0 always passes the fence.
NO_GENERATION = 0


def is_stale(msg_generation: int, local_generation: int) -> bool:
    """Whether a message stamped ``msg_generation`` is stale at a receiver
    holding ``local_generation``.

    Stale means *strictly older than local while making a claim*:
    ``NO_GENERATION`` passes (bootstrap traffic), equal passes (same
    epoch), newer passes (the receiver is the out-of-date party).
    """
    return NO_GENERATION < msg_generation < local_generation


def fence_stale(
    sim: Simulation,
    *,
    context: str,
    peer: int,
    sender: int,
    msg_generation: int,
    local_generation: int,
) -> bool:
    """Apply the fencing rule; count and trace the drop when it fires.

    Returns ``True`` when the message is stale and must be discarded.
    The drop is never silent: it increments the
    ``hierarchy.cross_gen_drops`` counter and emits a
    ``hierarchy.cross_gen_drop`` trace record naming the protocol context
    (``"heartbeat"``, ``"invalidate"``, ``"agg_request"``, ...).
    """
    if not is_stale(msg_generation, local_generation):
        return False
    sim.telemetry.registry.counter("hierarchy.cross_gen_drops").inc()
    sim.trace.emit(
        sim.now,
        "hierarchy.cross_gen_drop",
        context=context,
        peer=peer,
        sender=sender,
        msg_generation=msg_generation,
        local_generation=local_generation,
    )
    return True
