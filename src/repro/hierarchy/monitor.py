"""Hierarchy invariant checks and statistics.

Tests and experiments need to answer two questions about a (possibly
repaired) hierarchy: *is it still a consistent tree?* and *what is its
shape?* (height ``h`` and mean fan-out ``b`` enter the paper's cost model
for the naive approach, Formula 2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.hierarchy.builder import Hierarchy
from repro.types import INFINITE_DEPTH


@dataclass(frozen=True)
class HierarchyStats:
    """Shape summary of a hierarchy."""

    n_participants: int
    height: int
    mean_fanout: float
    n_leaves: int
    depth_histogram: dict[int, int]

    def __str__(self) -> str:
        return (
            f"HierarchyStats(participants={self.n_participants}, "
            f"height={self.height}, mean_fanout={self.mean_fanout:.2f}, "
            f"leaves={self.n_leaves})"
        )


def check_invariants(hierarchy: Hierarchy) -> list[str]:
    """Return a list of invariant violations (empty = consistent).

    Checked invariants, over live attached peers:

    1. Exactly one root, which is the designated root, at depth 0.
    2. Every non-root peer has a live upstream neighbour with
       ``depth(parent) == depth(child) - 1`` that lists it downstream.
    3. Parent/child links are overlay edges.
    4. Every downstream entry points to a live peer that names this peer
       as its upstream (no stale children).
    5. Following upstream pointers from any peer reaches the root (no
       cycles, no orphan islands).
    6. Every participant carries the root's generation — a repaired tree
       must have converged onto one fencing epoch.
    """
    problems: list[str] = []
    network = hierarchy.network
    participants = hierarchy.participants()
    participant_set = set(participants)

    roots = [p for p in participants if hierarchy.depth_of(p) == 0]
    if roots != [hierarchy.root]:
        problems.append(f"expected single root {hierarchy.root}, found {roots}")
    else:
        root_generation = hierarchy.generation
        for peer in participants:
            peer_generation = hierarchy.generation_of(peer)
            if peer_generation != root_generation:
                problems.append(
                    f"peer {peer} at generation {peer_generation}, "
                    f"root at {root_generation}"
                )

    for peer in participants:
        state = hierarchy.state_of(peer)
        neighbors = set(network.topology.adjacency[peer])
        if peer != hierarchy.root:
            parent = state.upstream
            if parent is None:
                problems.append(f"peer {peer} attached but has no upstream")
                continue
            if parent not in neighbors:
                problems.append(f"peer {peer} upstream {parent} is not a neighbour")
            if parent not in participant_set:
                problems.append(f"peer {peer} upstream {parent} is not attached/alive")
            else:
                parent_state = hierarchy.state_of(parent)
                if parent_state.depth != state.depth - 1:
                    problems.append(
                        f"peer {peer} depth {state.depth} but parent {parent} "
                        f"depth {parent_state.depth}"
                    )
                if peer not in parent_state.downstream:
                    problems.append(
                        f"peer {peer} missing from parent {parent}'s downstream set"
                    )
        for child in sorted(state.downstream):
            if child not in neighbors:
                problems.append(f"peer {peer} child {child} is not a neighbour")
            if child not in participant_set:
                problems.append(f"peer {peer} has stale dead child {child}")
            elif hierarchy.parent_of(child) != peer:
                problems.append(
                    f"peer {peer} lists child {child} whose upstream is "
                    f"{hierarchy.parent_of(child)}"
                )

    # Reachability: walk up from every peer; depth strictly decreases so a
    # walk longer than the population means a cycle.
    for peer in participants:
        current = peer
        for _ in range(len(participants) + 1):
            if current == hierarchy.root:
                break
            upstream = hierarchy.state_of(current).upstream
            if upstream is None or upstream not in participant_set:
                problems.append(f"peer {peer}: upstream walk dead-ends at {current}")
                break
            current = upstream
        else:
            problems.append(f"peer {peer}: upstream walk does not terminate (cycle)")
    return problems


def tree_stats(hierarchy: Hierarchy) -> HierarchyStats:
    """Shape statistics of the hierarchy (height, fan-out, leaves)."""
    participants = hierarchy.participants()
    depths = [hierarchy.depth_of(p) for p in participants]
    histogram = Counter(d for d in depths if d < INFINITE_DEPTH)
    internal = [
        p for p in participants if hierarchy.children_of(p)
    ]
    total_children = sum(len(hierarchy.children_of(p)) for p in internal)
    n_leaves = sum(1 for p in participants if not hierarchy.children_of(p))
    return HierarchyStats(
        n_participants=len(participants),
        height=max(histogram, default=0),
        mean_fanout=(total_children / len(internal)) if internal else 0.0,
        n_leaves=n_leaves,
        depth_histogram=dict(sorted(histogram.items())),
    )


def bfs_depths(hierarchy: Hierarchy) -> dict[int, int]:
    """Ground-truth BFS hop distances from the root over live peers.

    Used by tests to assert that the distributed construction produced
    true BFS depths (it must, under uniform link latency).
    """
    network = hierarchy.network
    depths = {hierarchy.root: 0}
    frontier = [hierarchy.root]
    while frontier:
        nxt: list[int] = []
        for peer in frontier:
            for other in network.live_neighbors(peer):
                if other not in depths:
                    depths[other] = depths[peer] + 1
                    nxt.append(other)
        frontier = nxt
    return depths
