"""Distributed BFS hierarchy construction (Section III-A.1).

The designated root sets its depth to 0 and floods a ``BUILD`` message to
its overlay neighbours.  A peer adopts the first (shallowest) offer it
hears: on receiving ``BUILD(d)`` from ``s`` it attaches under ``s`` at
depth ``d + 1`` if that improves its current depth, registers as a child of
``s``, and re-floods with its own depth.  With uniform link latency this
distributed relaxation converges to exact BFS depths; with jittered
latency it converges to a shortest-path tree of the same shape the paper
describes.

The :class:`Hierarchy` facade builds the per-node services, runs the flood
to quiescence, and gives protocol code a checked, convenient view of the
resulting tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HierarchyError
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel
from repro.hierarchy.generation import fence_stale
from repro.hierarchy.roles import HierarchyState, NodeRole


@register_payload
@dataclass(frozen=True)
class BuildPayload(Payload):
    """BFS construction offer: "attach under me, I am at ``depth``".

    Carries the build's generation (fencing epoch) so offers from a
    superseded build are dropped instead of re-wiring a newer tree.
    """

    depth: int
    generation: int = 0
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return 2 * model.aggregate_bytes


@register_payload
@dataclass(frozen=True)
class ChildRegisterPayload(Payload):
    """Sent to the chosen upstream neighbour: "I am now your child"."""

    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@register_payload
@dataclass(frozen=True)
class ChildUnregisterPayload(Payload):
    """Sent to a former upstream neighbour after reattaching elsewhere."""

    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


class HierarchyService:
    """The per-node side of hierarchy construction.

    Handles ``BUILD`` / register / unregister messages and keeps the
    node's :class:`~repro.hierarchy.roles.HierarchyState` current.  The
    repair logic lives in
    :class:`~repro.hierarchy.maintenance.MaintenanceService`, which drives
    this service through :meth:`attach_under` and :meth:`invalidate`.

    ``tag`` distinguishes coexisting hierarchies (Section III-A.1 builds
    several for redundancy): each instance's messages are dispatched to
    its own service.
    """

    def __init__(self, node: Node, tag: str = "") -> None:
        from repro.net.tagging import tagged

        self.node = node
        self.tag = tag
        self.state = HierarchyState()
        # Child registrations that arrived from our *current upstream* (a
        # reattachment race built a momentary 2-cycle).  Held here instead
        # of accepted or dropped: when the cycle resolves by our side
        # moving to another parent, the claimant becomes a real child; if
        # it resolves by the claimant moving on, its unregister clears it.
        self._deferred_children: set[int] = set()
        self._build_cls = tagged(BuildPayload, tag)
        self._register_cls = tagged(ChildRegisterPayload, tag)
        self._unregister_cls = tagged(ChildUnregisterPayload, tag)
        node.register_handler(self._build_cls, self._handle_build)
        node.register_handler(self._register_cls, self._handle_register)
        node.register_handler(self._unregister_cls, self._handle_unregister)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def become_root(self, generation: int = 1) -> None:
        """Designate this peer as the hierarchy root and start the flood."""
        self.state.depth = 0
        self.state.upstream = None
        self.state.generation = generation
        self._flood()

    def _flood(self) -> None:
        payload = self._build_cls(
            depth=self.state.depth, generation=self.state.generation
        )
        for neighbor in self.node.neighbors:
            if neighbor != self.state.upstream:
                self.node.send(neighbor, payload)

    def _handle_build(self, message: Message) -> None:
        payload = message.payload
        assert isinstance(payload, BuildPayload)
        if fence_stale(
            self.node.network.sim,
            context="build",
            peer=self.node.peer_id,
            sender=message.sender,
            msg_generation=payload.generation,
            local_generation=self.state.generation,
        ):
            return
        offered_depth = payload.depth + 1
        if offered_depth < self.state.depth:
            self.attach_under(message.sender, offered_depth, generation=payload.generation)
            self._flood()

    def attach_under(self, parent: int, depth: int, generation: int | None = None) -> None:
        """Adopt ``parent`` as upstream neighbour at the given depth,
        joining ``generation`` when the caller knows it (a build offer or
        heartbeat-driven reattach carries the parent's epoch)."""
        sim = self.node.network.sim
        trace = sim.trace
        if trace.active:
            trace.emit(
                sim.now,
                "hierarchy.attached",
                peer=self.node.peer_id,
                parent=parent,
                depth=depth,
            )
        else:
            trace.count("hierarchy.attached")
        old_upstream = self.state.upstream
        if old_upstream is not None and old_upstream != parent:
            self.node.send(old_upstream, self._unregister_cls())
        # A reattachment after detach: tell the pre-detach parent (which
        # may itself have reattached and still list us) to drop us.
        former = self.state.former_upstream
        if former is not None and former not in (parent, old_upstream):
            self.node.send(former, self._unregister_cls())
        self.state.former_upstream = None
        self.state.upstream = parent
        self.state.depth = depth
        if generation is not None:
            self.state.generation = generation
        # A former child that is now our parent must not stay in our
        # downstream set, or the tree would contain a 2-cycle.
        self.state.downstream.discard(parent)
        # Conversely, a deferred claimant that is no longer our upstream
        # is a real child after all (its own register already arrived).
        for claimant in sorted(self._deferred_children - {parent}):
            self.state.downstream.add(claimant)
        self._deferred_children &= {parent}
        self.node.send(parent, self._register_cls())

    def _handle_register(self, message: Message) -> None:
        # A peer cannot be both our parent and our child: such a register
        # is a symptom of a reattachment race and accepting it would create
        # a two-cycle (see MaintenanceService's depth reconciliation).
        # Defer rather than drop — if the race resolves by *us* reattaching
        # elsewhere, the claimant really is our child and forgetting it
        # would leave the tree permanently asymmetric.
        if message.sender == self.state.upstream:
            self._deferred_children.add(message.sender)
            return
        self.state.downstream.add(message.sender)

    def _handle_unregister(self, message: Message) -> None:
        self.state.downstream.discard(message.sender)
        self._deferred_children.discard(message.sender)

    # ------------------------------------------------------------------
    # Repair hooks (driven by MaintenanceService)
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Detach (depth ← ∞) — Section III-A.3 repair entry point."""
        self.state.detach()

    def drop_child(self, child: int) -> None:
        """Remove a child detected as failed."""
        self.state.downstream.discard(child)


class Hierarchy:
    """A built hierarchy over a network: the facade protocols use.

    Use :meth:`build` to construct one.  The object exposes per-peer
    state lookups plus whole-tree queries (children, parents, roles) that
    the aggregation engine and the experiments rely on.
    """

    def __init__(
        self,
        network: Network,
        root: int,
        services: dict[int, HierarchyService],
        tag: str = "",
    ) -> None:
        self.network = network
        self.root = root
        self.services = services
        self.tag = tag

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: Network,
        root: int = 0,
        settle_time: float = 500.0,
        strict: bool = True,
        tag: str = "",
    ) -> "Hierarchy":
        """Install hierarchy services on every live peer and run the BFS
        flood to quiescence.

        Parameters
        ----------
        network:
            The overlay to build over.  Must be connected among live peers
            if ``strict``.
        root:
            The designated root peer (the paper picks one at random; the
            experiments pass a seeded choice in).
        settle_time:
            Simulated time allotted for the flood to converge.  The flood
            needs ~diameter × latency; the default is generous.
        strict:
            Verify that every live peer attached, and raise
            :class:`~repro.errors.HierarchyError` otherwise.
        """
        if not network.node(root).alive:
            raise HierarchyError(f"designated root {root} is not alive")
        with network.sim.telemetry.span(
            "hierarchy.build", root=root, tag=tag
        ) as span:
            services = {
                peer: HierarchyService(network.node(peer), tag=tag)
                for peer in network.live_peers()
            }
            services[root].become_root(network.next_hierarchy_generation(tag))
            network.sim.run(until=network.sim.now + settle_time)
            hierarchy = cls(network, root, services, tag=tag)
            if strict:
                detached = [
                    peer
                    for peer, service in services.items()
                    if network.node(peer).alive and not service.state.attached
                ]
                if detached:
                    raise HierarchyError(
                        f"{len(detached)} live peers failed to attach "
                        f"(first few: {detached[:5]}); is the overlay connected?"
                    )
            span["height"] = hierarchy.height()
            span["participants"] = len(hierarchy.participants())
        return hierarchy

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_of(self, peer: int) -> HierarchyState:
        """The hierarchy state of one peer."""
        service = self.services.get(peer)
        if service is None:
            raise HierarchyError(f"peer {peer} is not participating in the hierarchy")
        return service.state

    def depth_of(self, peer: int) -> int:
        """Depth of one peer (``INFINITE_DEPTH`` if detached)."""
        return self.state_of(peer).depth

    def children_of(self, peer: int) -> set[int]:
        """Current downstream neighbours of a peer."""
        return set(self.state_of(peer).downstream)

    def parent_of(self, peer: int) -> int | None:
        """Current upstream neighbour of a peer (None for the root)."""
        return self.state_of(peer).upstream

    def role_of(self, peer: int) -> NodeRole:
        """Role of one peer."""
        return self.state_of(peer).role

    @property
    def generation(self) -> int:
        """The tree's current generation — the root's fencing epoch."""
        return self.state_of(self.root).generation

    def generation_of(self, peer: int) -> int:
        """Fencing epoch of one peer (0 when the peer holds no state)."""
        service = self.services.get(peer)
        return 0 if service is None else service.state.generation

    def participants(self) -> list[int]:
        """Live, attached peers — the peers any aggregation will involve."""
        return [
            peer
            for peer, service in self.services.items()
            if self.network.node(peer).alive and service.state.attached
        ]

    def leaves(self) -> list[int]:
        """Live peers with no children."""
        return [p for p in self.participants() if self.role_of(p) == NodeRole.LEAF]

    def reachable_participants(self) -> list[int]:
        """Peers whose tree path to the root passes only live peers — the
        peers whose contributions an aggregation started *now* can reach.

        Differs from :meth:`participants` when an internal node has died
        and repair has not (yet) re-attached its subtree: those
        descendants are live and attached by their own bookkeeping but
        cut off from the root.
        """
        if not self.network.node(self.root).alive:
            return []
        reached = []
        stack = [self.root]
        seen = {self.root}
        while stack:
            peer = stack.pop()
            reached.append(peer)
            for child in sorted(self.children_of(peer)):
                if child not in seen and self.network.node(child).alive:
                    seen.add(child)
                    stack.append(child)
        return sorted(reached)

    def height(self) -> int:
        """Maximum depth over attached live peers."""
        depths = [self.depth_of(p) for p in self.participants()]
        return max(depths, default=0)
