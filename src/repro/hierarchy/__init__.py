"""The aggregation hierarchy (Section III-A of the paper).

Peers participating in netFilter organize into a BFS hierarchy rooted at a
designated peer: the root's immediate neighbours sit at depth 1, their
not-yet-attached neighbours at depth 2, and so on.  Aggregates flow up this
tree (convergecast) and heavy-group identifiers flow down (broadcast).

* :mod:`repro.hierarchy.roles` — per-node hierarchy state and roles.
* :mod:`repro.hierarchy.builder` — distributed BFS construction, plus the
  :class:`~repro.hierarchy.builder.Hierarchy` facade the protocols use.
* :mod:`repro.hierarchy.maintenance` — heartbeat-driven repair after
  join/leave/failure (depth ← ∞ invalidation, reattachment).
* :mod:`repro.hierarchy.monitor` — invariant checks and tree statistics.
"""

from repro.hierarchy.builder import Hierarchy, HierarchyService
from repro.hierarchy.generation import NO_GENERATION, fence_stale, is_stale
from repro.hierarchy.maintenance import MaintenanceService, enable_maintenance
from repro.hierarchy.monitor import HierarchyStats, check_invariants, tree_stats
from repro.hierarchy.multi import MultiHierarchy
from repro.hierarchy.roles import HierarchyState, NodeRole
from repro.hierarchy.root_selection import (
    central_root,
    failover_successor,
    most_stable_root,
    random_root,
)

__all__ = [
    "Hierarchy",
    "HierarchyService",
    "HierarchyState",
    "HierarchyStats",
    "MaintenanceService",
    "MultiHierarchy",
    "NO_GENERATION",
    "NodeRole",
    "central_root",
    "check_invariants",
    "enable_maintenance",
    "failover_successor",
    "fence_stale",
    "is_stale",
    "most_stable_root",
    "random_root",
    "tree_stats",
]
