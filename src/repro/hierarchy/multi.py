"""Multiple redundant hierarchies (Section III-A.1).

"the hierarchy is still vulnerable to single point of failure.  We can
construct multiple hierarchies to alleviate this issue" — this module
implements exactly that: ``k`` independently-rooted hierarchies coexist
over one overlay (their protocol messages are kept apart by payload
tagging), each with its own aggregation engine, and a protocol run fails
over to the next hierarchy when the current root is down.

Redundant hierarchies and the repair protocol of
:mod:`repro.hierarchy.maintenance` are alternative answers to churn: the
repair protocol heals one hierarchy in place — including *in-tree root
failover*, where a deterministic successor promotes itself under a new
generation when the root dies (see
:func:`~repro.hierarchy.root_selection.failover_successor`) — while
redundancy gives instant failover at ``k`` times the build cost.  The
heartbeat service is a per-node singleton, so in-place maintenance
attaches to at most one of the hierarchies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar

from repro.errors import HierarchyError
from repro.hierarchy.builder import Hierarchy
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.aggregation.hierarchical import AggregationEngine

T = TypeVar("T")


class MultiHierarchy:
    """``k`` independently-rooted hierarchies with failover.

    Examples
    --------
    >>> # see tests/hierarchy/test_multi.py for an executable example
    """

    def __init__(
        self, hierarchies: list[Hierarchy], engines: "list[AggregationEngine]"
    ) -> None:
        if not hierarchies:
            raise HierarchyError("need at least one hierarchy")
        if len(hierarchies) != len(engines):
            raise HierarchyError("one engine per hierarchy required")
        self.hierarchies = hierarchies
        self.engines = engines

    @classmethod
    def build(
        cls,
        network: Network,
        roots: list[int],
        settle_time: float = 500.0,
        child_timeout: float = 300.0,
    ) -> "MultiHierarchy":
        """Build one hierarchy per root (roots must be distinct).

        Each instance is tagged ``h0, h1, ...`` so its BUILD/aggregation
        traffic is independent of the others'.
        """
        from repro.aggregation.hierarchical import AggregationEngine

        if len(set(roots)) != len(roots):
            raise HierarchyError(f"roots must be distinct, got {roots}")
        hierarchies = [
            Hierarchy.build(
                network, root=root, settle_time=settle_time, tag=f"h{index}"
            )
            for index, root in enumerate(roots)
        ]
        engines = [
            AggregationEngine(hierarchy, child_timeout=child_timeout)
            for hierarchy in hierarchies
        ]
        return cls(hierarchies, engines)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def live_engines(self) -> "list[AggregationEngine]":
        """Engines whose hierarchy root is currently alive, primary first."""
        return [
            engine
            for engine, hierarchy in zip(self.engines, self.hierarchies)
            if hierarchy.network.node(hierarchy.root).alive
        ]

    def primary(self) -> "AggregationEngine":
        """The first engine with a live root.

        Raises
        ------
        HierarchyError
            If every root is down.
        """
        live = self.live_engines()
        if not live:
            raise HierarchyError("all hierarchy roots are down")
        return live[0]

    def run_with_failover(self, protocol: "Callable[[AggregationEngine], T]") -> T:
        """Run ``protocol(engine)`` on the first hierarchy that works.

        A hierarchy is skipped when its root is dead or the protocol
        raises :class:`~repro.errors.ReproError` on it (e.g. the root died
        mid-run); the next hierarchy is tried.
        """
        from repro.errors import ReproError

        last_error: ReproError | None = None
        for engine in self.live_engines():
            try:
                return protocol(engine)
            except ReproError as error:  # root died mid-run: fail over
                last_error = error
        raise HierarchyError(
            "no hierarchy could complete the protocol"
        ) from last_error
