"""netfilter-p2p: a reproduction of *Identifying Frequent Items in P2P
Systems* (Mei Li, ICDCS 2008).

The library implements the **netFilter** two-phase in-network filtering
protocol for the IFI (Identifying Frequent Items) problem, together with
every substrate it runs on: a deterministic discrete-event engine, an
unstructured P2P overlay with heartbeats and churn, a BFS aggregation
hierarchy with repair, hierarchical and gossip aggregate computation, the
naive full-collection baseline, the paper's analytic cost model and
optimal-setting formulas, in-network parameter estimation by branch
sampling, workload generators (including the six Table I applications),
and an experiment harness regenerating every figure of the evaluation.

Quickstart
----------
>>> from repro import (Simulation, Network, Topology, Workload, Hierarchy,
...                    AggregationEngine, NetFilter, NetFilterConfig)
>>> sim = Simulation(seed=7)
>>> topology = Topology.random_connected(100, 4.0, sim.rng.stream("topology"))
>>> network = Network(sim, topology)
>>> workload = Workload.zipf(n_items=2000, n_peers=100, skew=1.0,
...                          rng=sim.rng.stream("workload"))
>>> network.assign_items(workload.item_sets)
>>> hierarchy = Hierarchy.build(network, root=0)
>>> engine = AggregationEngine(hierarchy)
>>> config = NetFilterConfig(filter_size=50, num_filters=3, threshold_ratio=0.01)
>>> result = NetFilter(config).run(engine)
>>> bool((result.frequent.values >= result.threshold).all())
True
"""

from repro.aggregation import AggregationEngine, GossipAggregation, GossipConfig
from repro.core import (
    ApproximateConfig,
    ApproximateIFIProtocol,
    ContinuousNetFilter,
    CountMinSketch,
    FilterBank,
    GossipNetFilter,
    GossipNetFilterConfig,
    IfiRequest,
    MultiRequestCoordinator,
    NaiveProtocol,
    NaiveResult,
    NetFilter,
    NetFilterConfig,
    NetFilterResult,
    OptimalSettings,
    ParameterEstimates,
    ParameterEstimator,
    SamplingConfig,
    derive_optimal_settings,
    oracle_frequent_items,
)
from repro.hierarchy import Hierarchy, check_invariants, tree_stats
from repro.items import LocalItemSet
from repro.metrics import CostAccounting, CostBreakdown, MetricsRegistry
from repro.net import (
    CostCategory,
    HeartbeatConfig,
    Network,
    SizeModel,
    Topology,
    TransportConfig,
)
from repro.net.churn import ChurnConfig, ChurnProcess
from repro.sim import Simulation
from repro.workload import Workload, ZipfStream

__version__ = "1.0.0"

__all__ = [
    "AggregationEngine",
    "ApproximateConfig",
    "ApproximateIFIProtocol",
    "ChurnConfig",
    "ContinuousNetFilter",
    "CountMinSketch",
    "GossipNetFilter",
    "GossipNetFilterConfig",
    "ZipfStream",
    "ChurnProcess",
    "CostAccounting",
    "CostBreakdown",
    "CostCategory",
    "FilterBank",
    "GossipAggregation",
    "GossipConfig",
    "HeartbeatConfig",
    "Hierarchy",
    "IfiRequest",
    "LocalItemSet",
    "MetricsRegistry",
    "MultiRequestCoordinator",
    "NaiveProtocol",
    "NaiveResult",
    "NetFilter",
    "NetFilterConfig",
    "NetFilterResult",
    "Network",
    "OptimalSettings",
    "ParameterEstimates",
    "ParameterEstimator",
    "SamplingConfig",
    "Simulation",
    "SizeModel",
    "Topology",
    "TransportConfig",
    "Workload",
    "check_invariants",
    "derive_optimal_settings",
    "oracle_frequent_items",
    "tree_stats",
    "__version__",
]
