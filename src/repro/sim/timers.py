"""Timers built on top of the event loop.

The heartbeat protocol of Section III-A.3 needs periodic timers with a
little jitter (so that a thousand peers do not all send heartbeats on the
same tick), and the failure detector needs a re-armable one-shot timeout.
Both are provided here so protocol code never touches the event heap
directly.

Both timers are engineered for the failure-detector workload, where
:meth:`Timeout.reset` runs once per received heartbeat: a reset does not
cancel-and-reschedule a heap event — it just moves a deadline field, and
the already-scheduled wake-up re-arms itself lazily when it fires and
finds the deadline moved (see docs/PERFORMANCE.md).  Observable firing
times are exactly those of the eager implementation; only internal no-op
wake-ups differ.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulation


class PeriodicTimer:
    """Fires ``callback()`` every ``interval`` time units until stopped.

    Parameters
    ----------
    sim:
        The owning simulation.
    interval:
        Base period; must be positive.
    callback:
        Invoked with no arguments on every tick.
    jitter:
        If non-zero, each tick is displaced by a uniform offset in
        ``[-jitter, +jitter]`` drawn from the simulation's ``"timers"``
        random stream.  Jitter never reorders ticks (it is clamped so the
        next tick stays in the future).
    start_immediately:
        If ``True`` the first tick happens after one (jittered) interval as
        soon as the timer is constructed; otherwise call :meth:`start`.
    """

    __slots__ = ("_sim", "_interval", "_jitter", "_callback", "_running", "_epoch")

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        start_immediately: bool = True,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        if jitter < 0 or jitter >= interval:
            raise SimulationError(
                f"jitter must satisfy 0 <= jitter < interval, got {jitter}"
            )
        self._sim = sim
        self._interval = float(interval)
        self._jitter = float(jitter)
        self._callback = callback
        self._running = False
        # Bumped on every stop; a tick event carries the epoch it was
        # armed in and no-ops if the timer was stopped (or stop/started)
        # since.  This replaces per-tick EventHandle allocation + cancel.
        self._epoch = 0
        if start_immediately:
            self.start()

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._running

    def start(self) -> None:
        """Arm the timer.  Idempotent."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm the timer.  Idempotent.

        The in-flight tick event is left to drain as a no-op rather than
        cancelled (it holds no resources beyond its heap slot)."""
        if self._running:
            self._running = False
            self._epoch += 1

    def _arm(self) -> None:
        delay = self._interval
        if self._jitter > 0.0:
            rng = self._sim.rng.stream("timers")
            delay += float(rng.uniform(-self._jitter, self._jitter))
            delay = max(delay, 1e-9)
        self._sim.post(delay, self._tick, self._epoch)

    def _tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self._running:
            return
        self._callback()
        if self._running and epoch == self._epoch:  # callback may have stopped us
            if self._jitter == 0.0:
                # Jitter-free re-arm with sim.post inlined: one frame per
                # tick matters with thousands of heartbeat timers running.
                sim = self._sim
                heapq.heappush(
                    sim._heap,
                    (sim._now + self._interval, next(sim._seq), self._tick, (epoch,)),
                )
            else:
                self._arm()


class Timeout:
    """A re-armable one-shot timeout (the failure-detector primitive).

    ``reset()`` pushes the deadline out by the full duration; ``cancel()``
    disarms it.  The callback fires at most once per arm.

    Resets are O(1) and touch no heap state in the common case: the
    deadline is a plain float, and the pending wake-up event re-arms
    itself at the new deadline when it fires early.  A wake-up is only
    scheduled when none is pending, or when a reset pulls the deadline
    *before* every pending wake-up (possible with an explicit shorter
    ``duration``).
    """

    __slots__ = ("_sim", "_duration", "_callback", "_deadline", "_wakeups")

    def __init__(
        self, sim: Simulation, duration: float, callback: Callable[[], None]
    ) -> None:
        if duration <= 0:
            raise SimulationError(f"timeout duration must be positive, got {duration}")
        self._sim = sim
        self._duration = float(duration)
        self._callback = callback
        #: Absolute deadline, or None while disarmed.
        self._deadline: float | None = None
        #: Times of in-flight wake-up events, ascending.  Wake-ups fire in
        #: time order, so the firing one is always ``_wakeups[0]``.
        self._wakeups: list[float] = []

    @property
    def armed(self) -> bool:
        """Whether a deadline is currently pending."""
        return self._deadline is not None

    def reset(self, duration: float | None = None) -> None:
        """(Re-)arm the timeout ``duration`` from now.

        ``duration`` overrides the configured default for this arm only —
        the adaptive failure detector stretches a watchdog to its current
        suspicion deadline without rebuilding the :class:`Timeout`.
        """
        if duration is None:
            duration = self._duration
        elif duration <= 0:
            raise SimulationError(
                f"timeout duration must be positive, got {duration}"
            )
        else:
            duration = float(duration)
        deadline = self._sim._now + duration
        self._deadline = deadline
        wakeups = self._wakeups
        if not wakeups:
            wakeups.append(deadline)
            self._sim.post(duration, self._wake)
        elif deadline < wakeups[0]:
            # Deadline pulled before every pending wake-up: need an
            # earlier one.  (Extensions — the common case — fall through:
            # the pending wake-up re-arms lazily.)
            wakeups.insert(0, deadline)
            self._sim.post(duration, self._wake)

    def cancel(self) -> None:
        """Disarm without firing.  Idempotent.

        In-flight wake-ups are left to drain as no-ops."""
        self._deadline = None

    def _wake(self) -> None:
        self._wakeups.pop(0)
        deadline = self._deadline
        if deadline is None:
            return  # cancelled (or already fired) since this was scheduled
        now = self._sim._now
        if now >= deadline:
            self._deadline = None
            self._callback()
        elif not self._wakeups:
            # Deadline moved out past this wake-up and no later wake-up is
            # pending: chase it.
            self._wakeups.append(deadline)
            self._sim.post(deadline - now, self._wake)
        # else: a later pending wake-up (<= deadline) takes over.
