"""Timers built on top of the event loop.

The heartbeat protocol of Section III-A.3 needs periodic timers with a
little jitter (so that a thousand peers do not all send heartbeats on the
same tick), and the failure detector needs a re-armable one-shot timeout.
Both are provided here so protocol code never touches the event heap
directly.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.events import EventHandle


class PeriodicTimer:
    """Fires ``callback()`` every ``interval`` time units until stopped.

    Parameters
    ----------
    sim:
        The owning simulation.
    interval:
        Base period; must be positive.
    callback:
        Invoked with no arguments on every tick.
    jitter:
        If non-zero, each tick is displaced by a uniform offset in
        ``[-jitter, +jitter]`` drawn from the simulation's ``"timers"``
        random stream.  Jitter never reorders ticks (it is clamped so the
        next tick stays in the future).
    start_immediately:
        If ``True`` the first tick happens after one (jittered) interval as
        soon as the timer is constructed; otherwise call :meth:`start`.
    """

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        start_immediately: bool = True,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        if jitter < 0 or jitter >= interval:
            raise SimulationError(
                f"jitter must satisfy 0 <= jitter < interval, got {jitter}"
            )
        self._sim = sim
        self._interval = float(interval)
        self._jitter = float(jitter)
        self._callback = callback
        self._handle: EventHandle | None = None
        self._running = False
        if start_immediately:
            self.start()

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._running

    def start(self) -> None:
        """Arm the timer.  Idempotent."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _arm(self) -> None:
        delay = self._interval
        if self._jitter > 0.0:
            rng = self._sim.rng.stream("timers")
            delay += float(rng.uniform(-self._jitter, self._jitter))
            delay = max(delay, 1e-9)
        self._handle = self._sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # callback may have stopped us
            self._arm()


class Timeout:
    """A re-armable one-shot timeout (the failure-detector primitive).

    ``reset()`` pushes the deadline out by the full duration; ``cancel()``
    disarms it.  The callback fires at most once per arm.
    """

    def __init__(
        self, sim: Simulation, duration: float, callback: Callable[[], None]
    ) -> None:
        if duration <= 0:
            raise SimulationError(f"timeout duration must be positive, got {duration}")
        self._sim = sim
        self._duration = float(duration)
        self._callback = callback
        self._handle: EventHandle | None = None

    @property
    def armed(self) -> bool:
        """Whether a deadline is currently pending."""
        return self._handle is not None and not self._handle.cancelled

    def reset(self, duration: float | None = None) -> None:
        """(Re-)arm the timeout ``duration`` from now.

        ``duration`` overrides the configured default for this arm only —
        the adaptive failure detector stretches a watchdog to its current
        suspicion deadline without rebuilding the :class:`Timeout`.
        """
        if duration is not None and duration <= 0:
            raise SimulationError(
                f"timeout duration must be positive, got {duration}"
            )
        self.cancel()
        self._handle = self._sim.schedule(
            self._duration if duration is None else float(duration), self._fire
        )

    def cancel(self) -> None:
        """Disarm without firing.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
