"""Event objects for the discrete-event engine.

Events are ordered by ``(time, sequence_number)`` so that two events
scheduled for the same instant fire in scheduling order.  This determinism
matters: the whole evaluation of the paper is reproduced from fixed seeds,
and a heap that broke ties arbitrarily would make runs non-repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulation.schedule`
    and should not normally be constructed by user code.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps ``cancel`` O(1), which matters for failure-detector
    timers that are re-armed on every heartbeat.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulated time at which the event is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
