"""Event objects for the discrete-event engine.

Events are ordered by ``(time, sequence_number)`` so that two events
scheduled for the same instant fire in scheduling order.  This determinism
matters: the whole evaluation of the paper is reproduced from fixed seeds,
and a heap that broke ties arbitrarily would make runs non-repeatable.

Both classes here are deliberately *not* dataclasses: a dataclass
``__init__`` and its tuple-building ``__lt__`` cost roughly a microsecond
per event, and at production scale the engine creates millions of them.
:class:`Event` instances are recycled through the simulation's free-list
pool (see :class:`~repro.sim.engine.Simulation`); the ``generation``
counter fences stale :class:`EventHandle` objects off their recycled
successors — a handle to an event that already fired can never cancel
the unrelated event that happens to reuse the same object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulation


def _noop() -> None:  # pragma: no cover - placeholder for recycled events
    """Callback installed on pooled events between uses."""


class Event:
    """A single scheduled callback.

    Instances are created (and recycled) by
    :meth:`repro.sim.engine.Simulation.schedule` and should not normally
    be constructed by user code.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "generation")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: Bumped every time this object is released back to the event
        #: pool; handles remember the generation they were issued for.
        self.generation = 0

    def __lt__(self, other: "Event") -> bool:
        # Manual comparison instead of dataclass(order=True): the heap
        # performs O(log n) comparisons per push/pop and the generated
        # dataclass __lt__ allocates two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps ``cancel`` O(1), which matters for failure-detector
    timers that are re-armed on every heartbeat.  (The engine compacts the
    heap when cancelled entries dominate it; see
    :attr:`~repro.sim.engine.Simulation.live_events`.)

    Handles are generation-fenced against the event pool: once the
    underlying event has fired (and been recycled), :meth:`cancel` is a
    guaranteed no-op on whatever event reuses the object.
    """

    __slots__ = ("_sim", "_event", "_generation", "_time", "_cancelled")

    def __init__(self, sim: "Simulation", event: Event) -> None:
        self._sim = sim
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._cancelled = False

    @property
    def time(self) -> float:
        """The simulated time at which the event is (was) due to fire."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent, and a no-op once
        the event has already fired (even if the event object has since
        been recycled for an unrelated schedule)."""
        if self._cancelled:
            return
        self._cancelled = True
        event = self._event
        if event.generation == self._generation and not event.cancelled:
            event.cancelled = True
            self._sim._note_cancelled()
