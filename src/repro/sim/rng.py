"""Named, reproducible random streams.

Distributed-systems simulations die by correlated randomness: if the churn
process and the workload generator share one generator, adding a feature to
one silently reshuffles the other and every recorded experiment changes.
The registry hands out an independent :class:`numpy.random.Generator` per
*name*, each derived deterministically from the master seed, so components
are statistically independent and individually reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """A factory of independent, deterministic random streams.

    Streams are keyed by name.  Requesting the same name twice returns the
    same generator instance; two registries built from the same master seed
    produce identical streams for identical names.

    Examples
    --------
    >>> a = RngRegistry(42).stream("workload")
    >>> b = RngRegistry(42).stream("workload")
    >>> bool(a.integers(0, 1 << 30) == b.integers(0, 1 << 30))
    True
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Derive a child seed from (master seed, name).  crc32 is stable
            # across processes and Python versions, unlike hash().
            child = np.random.SeedSequence(
                [self._seed, zlib.crc32(name.encode("utf-8"))]
            )
            generator = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry seeded from (master seed, name).

        Used by experiment sweeps to give every trial its own independent
        but reproducible universe of streams.
        """
        return RngRegistry(
            (self._seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (1 << 63)
        )
