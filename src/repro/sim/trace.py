"""Structured tracing and counters.

Protocols emit trace records (``tracer.emit("hierarchy.repair", peer=12)``)
instead of printing; tests subscribe to assert on protocol behaviour and
experiments read the counters.  Recording full records is opt-in because a
million-message run should not accumulate a million dictionaries by default.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class TraceRecord:
    """One emitted trace event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Sink for structured trace events.

    Examples
    --------
    >>> tracer = Tracer()
    >>> tracer.emit(0.0, "msg.sent", size=4)
    >>> tracer.counters["msg.sent"]
    1
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self._subscribers: dict[str, list[Callable[[TraceRecord], None]]] = {}
        self._records: list[TraceRecord] | None = None

    def start_recording(self) -> None:
        """Keep every subsequent record in memory (for tests)."""
        self._records = []

    def stop_recording(self) -> list[TraceRecord]:
        """Stop keeping records and return those captured so far."""
        records = self._records or []
        self._records = None
        return records

    @property
    def records(self) -> list[TraceRecord]:
        """Records captured since :meth:`start_recording` (empty if not
        recording)."""
        return list(self._records or [])

    def subscribe(self, kind: str, handler: Callable[[TraceRecord], None]) -> None:
        """Invoke ``handler`` for every record of the given ``kind``.

        Subscribing to the empty string receives every record.
        """
        self._subscribers.setdefault(kind, []).append(handler)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one trace event."""
        self.counters[kind] += 1
        needs_record = (
            self._records is not None
            or kind in self._subscribers
            or "" in self._subscribers
        )
        if not needs_record:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self._records is not None:
            self._records.append(record)
        for handler in self._subscribers.get(kind, ()):
            handler(record)
        for handler in self._subscribers.get("", ()):
            handler(record)
