"""Structured tracing and counters.

Protocols emit trace records (``tracer.emit("hierarchy.repair", peer=12)``)
instead of printing; tests subscribe to assert on protocol behaviour and
experiments read the counters.  Recording full records is opt-in because a
million-message run should not accumulate a million dictionaries by default.

The tracer is on the simulation hot path, so its quiet configuration is
engineered to cost almost nothing:

* :attr:`Tracer.active` is a compile-once predicate — recomputed only when
  recording starts/stops or a subscriber is added/removed, never per emit.
  Hot call sites check it before building per-event field dicts.
* Per-kind handler chains are compiled into a dispatch cache on first
  emit of each kind, so a steady-state emit does one dict lookup instead
  of three.
* Components that count at very high frequency (the transport) keep plain
  integer accumulators and register a *flush hook*; reading
  :attr:`Tracer.counters` flushes those accumulators in, so readers always
  see exact totals while the hot path never touches the ``Counter``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One emitted trace event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Sink for structured trace events.

    Examples
    --------
    >>> tracer = Tracer()
    >>> tracer.emit(0.0, "msg.sent", size=4)
    >>> tracer.counters["msg.sent"]
    1
    """

    def __init__(self) -> None:
        self._counters: Counter[str] = Counter()
        self._subscribers: dict[str, list[Callable[[TraceRecord], None]]] = {}
        self._records: list[TraceRecord] | None = None
        #: Per-kind compiled handler chains (kind-specific plus wildcard),
        #: built lazily and invalidated whenever the subscriber table
        #: changes.
        self._dispatch: dict[str, tuple[Callable[[TraceRecord], None], ...]] = {}
        self._flush_hooks: list[Callable[[], None]] = []
        #: True while anything (recording or a subscriber) consumes full
        #: records.  Hot paths must check this before building expensive
        #: per-event detail; when False, an emit is one counter increment.
        self.active: bool = False

    def _update_active(self) -> None:
        self.active = self._records is not None or bool(self._subscribers)
        self._dispatch.clear()

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Counter[str]:
        """Exact per-kind emit counts.

        Reading this flushes every registered accumulator hook first, so
        the totals include counts taken on the quiet fast path.  The
        returned object is the live ``Counter`` (not a copy): callers on
        hot paths may increment it directly via :meth:`count`.
        """
        for hook in self._flush_hooks:
            hook()
        return self._counters

    def count(self, kind: str, n: int = 1) -> None:
        """Add ``n`` to a counter without building a trace record.

        The quiet-path companion to :meth:`emit`: call it when
        :attr:`active` is ``False`` and the event carries no fields worth
        recording.
        """
        self._counters[kind] += n

    def register_flush(self, hook: Callable[[], None]) -> None:
        """Register an accumulator flush hook.

        The hook must move privately accumulated counts into this tracer
        (via :meth:`count`) and zero its accumulators; it runs every time
        :attr:`counters` is read and on :meth:`reset`.  Hooks survive
        :meth:`reset` — they are structural wiring, like the component
        that registered them.
        """
        self._flush_hooks.append(hook)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start_recording(self) -> None:
        """Keep every subsequent record in memory (for tests)."""
        self._records = []
        self._update_active()

    def stop_recording(self) -> list[TraceRecord]:
        """Stop keeping records and return those captured so far."""
        records = self._records or []
        self._records = None
        self._update_active()
        return records

    @property
    def records(self) -> list[TraceRecord]:
        """Records captured since :meth:`start_recording` (empty if not
        recording)."""
        return list(self._records or [])

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, kind: str, handler: Callable[[TraceRecord], None]) -> None:
        """Invoke ``handler`` for every record of the given ``kind``.

        Subscribing to the empty string receives every record.
        """
        self._subscribers.setdefault(kind, []).append(handler)
        self._update_active()

    def unsubscribe(self, kind: str, handler: Callable[[TraceRecord], None]) -> None:
        """Remove a handler previously registered with :meth:`subscribe`.

        Unknown ``(kind, handler)`` pairs are ignored so teardown code can
        call this unconditionally.
        """
        handlers = self._subscribers.get(kind)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._subscribers[kind]
        self._update_active()

    def reset(self) -> None:
        """Forget all counters, captured records, and subscribers, and
        invalidate the compiled dispatch/active caches.

        Lets experiment sweeps reuse one simulation factory without
        telemetry state leaking between runs.  Flush hooks run first (so
        component accumulators are zeroed along with the counters) and
        stay registered afterwards.
        """
        for hook in self._flush_hooks:
            hook()
        self._counters.clear()
        self._subscribers.clear()
        self._records = None
        self._update_active()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one trace event."""
        self._counters[kind] += 1
        if not self.active:
            return
        handlers = self._dispatch.get(kind)
        if handlers is None:
            handlers = tuple(self._subscribers.get(kind, ())) + tuple(
                self._subscribers.get("", ())
            )
            self._dispatch[kind] = handlers
        records = self._records
        if records is None and not handlers:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if records is not None:
            records.append(record)
        for handler in handlers:
            handler(record)
