"""Structured tracing and counters.

Protocols emit trace records (``tracer.emit("hierarchy.repair", peer=12)``)
instead of printing; tests subscribe to assert on protocol behaviour and
experiments read the counters.  Recording full records is opt-in because a
million-message run should not accumulate a million dictionaries by default.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class TraceRecord:
    """One emitted trace event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Sink for structured trace events.

    Examples
    --------
    >>> tracer = Tracer()
    >>> tracer.emit(0.0, "msg.sent", size=4)
    >>> tracer.counters["msg.sent"]
    1
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self._subscribers: dict[str, list[Callable[[TraceRecord], None]]] = {}
        self._records: list[TraceRecord] | None = None
        #: True while anything (recording or a subscriber) consumes full
        #: records.  Hot paths may check this before building expensive
        #: per-event detail; when False, an emit is one counter increment.
        self.active: bool = False

    def _update_active(self) -> None:
        self.active = self._records is not None or bool(self._subscribers)

    def start_recording(self) -> None:
        """Keep every subsequent record in memory (for tests)."""
        self._records = []
        self._update_active()

    def stop_recording(self) -> list[TraceRecord]:
        """Stop keeping records and return those captured so far."""
        records = self._records or []
        self._records = None
        self._update_active()
        return records

    @property
    def records(self) -> list[TraceRecord]:
        """Records captured since :meth:`start_recording` (empty if not
        recording)."""
        return list(self._records or [])

    def subscribe(self, kind: str, handler: Callable[[TraceRecord], None]) -> None:
        """Invoke ``handler`` for every record of the given ``kind``.

        Subscribing to the empty string receives every record.
        """
        self._subscribers.setdefault(kind, []).append(handler)
        self._update_active()

    def unsubscribe(self, kind: str, handler: Callable[[TraceRecord], None]) -> None:
        """Remove a handler previously registered with :meth:`subscribe`.

        Unknown ``(kind, handler)`` pairs are ignored so teardown code can
        call this unconditionally.
        """
        handlers = self._subscribers.get(kind)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._subscribers[kind]
        self._update_active()

    def reset(self) -> None:
        """Forget all counters, captured records, and subscribers.

        Lets experiment sweeps reuse one simulation factory without
        telemetry state leaking between runs.
        """
        self.counters.clear()
        self._subscribers.clear()
        self._records = None
        self._update_active()

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one trace event."""
        self.counters[kind] += 1
        if not self.active:
            return
        if (
            self._records is None
            and kind not in self._subscribers
            and "" not in self._subscribers
        ):
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self._records is not None:
            self._records.append(record)
        for handler in self._subscribers.get(kind, ()):
            handler(record)
        for handler in self._subscribers.get("", ()):
            handler(record)
