"""Discrete-event simulation engine.

This package is the bottom layer of the reproduction: a small, deterministic
discrete-event engine on which the P2P substrate (:mod:`repro.net`), the
aggregation hierarchy (:mod:`repro.hierarchy`) and the netFilter protocols
(:mod:`repro.core`) are built.

The engine is intentionally minimal — an event heap with a clock — because
the paper's evaluation metric is *bytes propagated per peer*, not wall-clock
latency.  Simulated time is still fully supported (transports add latency,
heartbeats are periodic, failure detection uses timeouts) so that the
hierarchy-maintenance protocol of Section III-A.3 can be exercised
faithfully.

Public API
----------

:class:`~repro.sim.engine.Simulation`
    The event loop: ``schedule``/``schedule_at``, ``run``, ``now``.
:class:`~repro.sim.events.EventHandle`
    Returned by ``schedule``; supports cancellation.
:class:`~repro.sim.timers.PeriodicTimer`
    Repeating timer with optional jitter (used for heartbeats).
:class:`~repro.sim.rng.RngRegistry`
    Named, reproducible random streams derived from one master seed.
:class:`~repro.sim.trace.Tracer`
    Structured trace/counter sink for tests and experiments.
"""

from repro.sim.engine import Simulation
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "RngRegistry",
    "Simulation",
    "TraceRecord",
    "Tracer",
]
