"""The discrete-event loop.

A :class:`Simulation` owns the clock, the event heap, the master random
seed (see :mod:`repro.sim.rng`) and a per-run
:class:`~repro.telemetry.core.Telemetry` object (tracer + metrics registry
+ cost accounting + optional JSONL sink).  Every other component of the
library receives the simulation object and schedules its work through it;
nothing in the library keeps its own notion of time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.trace import Tracer
    from repro.telemetry.core import Telemetry


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Master seed for every random stream used during the run.  Two
        simulations built with the same seed and the same scenario replay
        the exact same sequence of events.

    Examples
    --------
    >>> sim = Simulation(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, seed: int | None = 0) -> None:
        # Deferred import: telemetry pulls in the metrics package, whose
        # accounting module reaches back into repro.net while this module
        # is still mid-import — at construction time the cycle is gone.
        from repro.telemetry.core import Telemetry

        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed)
        self.telemetry: Telemetry = Telemetry(self)
        #: The telemetry tracer, aliased here because every protocol emits
        #: through ``sim.trace``.
        self.trace: Tracer = self.telemetry.tracer

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending events
        already due now)."""
        return self.schedule_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns
        -------
        bool
            ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for runaway protocols: stop after this many events.

        Returns
        -------
        int
            Number of events fired.
        """
        if self._running:
            raise SimulationError("simulation is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    self._now = until
                    break
                if self.step():
                    fired += 1
            else:
                # Heap drained (or stop() called): advance to `until` so that
                # repeated run(until=...) calls observe a monotone clock.
                if until is not None and until > self._now and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the in-flight
        event completes."""
        self._stopped = True
