"""The discrete-event loop.

A :class:`Simulation` owns the clock, the event heap, the master random
seed (see :mod:`repro.sim.rng`) and a per-run
:class:`~repro.telemetry.core.Telemetry` object (tracer + metrics registry
+ cost accounting + optional JSONL sink).  Every other component of the
library receives the simulation object and schedules its work through it;
nothing in the library keeps its own notion of time.

The hot path is engineered for throughput (see docs/PERFORMANCE.md):

* :meth:`post` (fire-and-forget, the overwhelming majority of traffic)
  pushes a bare ``(time, seq, callback, args)`` tuple — no event object at
  all.  Heap ordering is decided entirely by the unique ``(time, seq)``
  prefix, so cancellable 3-tuples and posted 4-tuples coexist in one heap;
* cancellable events are ``__slots__``-only objects recycled through a
  free-list pool, so steady-state scheduling allocates nothing;
* cancellation is lazy, but the heap is compacted in place once cancelled
  entries make up at least half of it (heartbeat/failure-detector churn
  would otherwise bloat the heap for the whole run);
* :meth:`run` without ``until``/``max_events`` takes a fast inner loop
  with hoisted lookups and no bound checks;
* :meth:`post` schedules fire-and-forget work without building an
  :class:`~repro.sim.events.EventHandle`.

None of this changes observable behaviour: event order is still strictly
``(time, scheduling order)`` and same-seed runs replay bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventHandle, _noop
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.trace import Tracer
    from repro.telemetry.core import Telemetry

#: Heaps smaller than this are never compacted — rebuilding a tiny heap
#: costs more than lazily skipping its cancelled entries.
_COMPACT_MIN_HEAP = 64

#: Upper bound on the free list, so one transient burst of events cannot
#: pin its peak memory for the rest of the process.
_POOL_CAP = 65536


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Master seed for every random stream used during the run.  Two
        simulations built with the same seed and the same scenario replay
        the exact same sequence of events.

    Examples
    --------
    >>> sim = Simulation(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_running",
        "_stopped",
        "_pool",
        "_cancelled_in_heap",
        "_compactions",
        "rng",
        "telemetry",
        "trace",
    )

    def __init__(self, seed: int | None = 0) -> None:
        # Deferred import: telemetry pulls in the metrics package, whose
        # accounting module reaches back into repro.net while this module
        # is still mid-import — at construction time the cycle is gone.
        from repro.telemetry.core import Telemetry

        self._now: float = 0.0
        # Heap entries are tuples — (time, seq, event) for cancellable
        # work, (time, seq, callback, args) for fire-and-forget posts.
        # Tuple comparison is C-level, and the globally unique (time, seq)
        # prefix always decides, so elements past index 1 are never
        # compared and the two shapes can share the heap.
        self._heap: list[tuple[Any, ...]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._pool: list[Event] = []
        self._cancelled_in_heap = 0
        self._compactions = 0
        self.rng = RngRegistry(seed)
        self.telemetry: Telemetry = Telemetry(self)
        #: The telemetry tracer, aliased here because every protocol emits
        #: through ``sim.trace``.
        self.trace: Tracer = self.telemetry.tracer

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Size of the event heap, *including* lazily-cancelled entries
        that will be skipped when popped.  For the number of events that
        will actually fire, use :attr:`live_events`."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Number of scheduled events that are still going to fire
        (heap size minus cancelled-but-not-yet-popped entries)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_compactions(self) -> int:
        """How many times the heap has been compacted (diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return EventHandle(self, self._push(self._now + delay, callback, args))

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return EventHandle(self, self._push(time, callback, args))

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget scheduling: like :meth:`schedule` but without
        building a cancellation handle.  The hot-path variant for work
        that is never cancelled (message deliveries, one-shot protocol
        steps).

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Posted work has no handle, so it can never be cancelled: push a
        # bare 4-tuple and skip the event object entirely.
        time = self._now + delay
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending events
        already due now)."""
        return self.schedule_at(self._now, callback, *args)

    def _push(
        self, time: float, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> Event:
        """Take an event from the pool (or allocate one) and heap-push it."""
        seq = next(self._seq)
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` when a live heap entry is
        cancelled; compacts the heap once cancelled entries dominate."""
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 >= len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap, in place.

        In place matters: :meth:`run` loops hold a local reference to the
        heap list, so the list object must survive compaction.
        """
        heap = self._heap
        pool = self._pool
        # Posted 4-tuples have no cancellation flag and always survive.
        live = [
            entry for entry in heap if len(entry) == 4 or not entry[2].cancelled
        ]
        for entry in heap:
            if len(entry) == 4:
                continue
            event = entry[2]
            if event.cancelled:
                event.generation += 1
                event.callback = _noop
                event.args = ()
                if len(pool) < _POOL_CAP:
                    pool.append(event)
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns
        -------
        bool
            ``True`` if an event fired, ``False`` if the heap is empty.
        """
        heap = self._heap
        pool = self._pool
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                # Posted fire-and-forget work: nothing to recycle.
                self._now = entry[0]
                entry[2](*entry[3])
                return True
            event = entry[2]
            if event.cancelled:
                self._cancelled_in_heap -= 1
                event.generation += 1
                event.callback = _noop
                event.args = ()
                if len(pool) < _POOL_CAP:
                    pool.append(event)
                continue
            self._now = entry[0]
            callback = event.callback
            args = event.args
            # Recycle before firing so a schedule made inside the callback
            # can reuse the object; handles are generation-fenced.
            event.generation += 1
            event.callback = _noop
            event.args = ()
            if len(pool) < _POOL_CAP:
                pool.append(event)
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire.  ``None`` runs to exhaustion.
            The clock always ends at ``max(now, until)`` even when the
            heap drains early, so repeated ``run(until=...)`` calls
            observe a monotone clock.
        max_events:
            Safety valve for runaway protocols: stop after this many events.

        Returns
        -------
        int
            Number of events fired.
        """
        if self._running:
            raise SimulationError("simulation is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            if until is None and max_events is None:
                return self._run_fast()
            return self._run_bounded(until, max_events)
        finally:
            self._running = False

    def _run_fast(self) -> int:
        """The unbounded inner loop: no ``until``/``max_events`` checks,
        all lookups hoisted.  Semantically identical to the bounded loop
        with both bounds unset."""
        heap = self._heap
        pool = self._pool
        pop = heapq.heappop
        fired = 0
        while heap and not self._stopped:
            entry = pop(heap)
            if len(entry) == 4:
                # Posted fire-and-forget work — the common case on the hot
                # path (deliveries, timer ticks): no cancellation check,
                # nothing to recycle.
                self._now = entry[0]
                entry[2](*entry[3])
                fired += 1
                continue
            event = entry[2]
            if event.cancelled:
                self._cancelled_in_heap -= 1
                event.generation += 1
                event.callback = _noop
                event.args = ()
                if len(pool) < _POOL_CAP:
                    pool.append(event)
                continue
            self._now = entry[0]
            callback = event.callback
            args = event.args
            event.generation += 1
            event.callback = _noop
            event.args = ()
            if len(pool) < _POOL_CAP:
                pool.append(event)
            callback(*args)
            fired += 1
        return fired

    def _run_bounded(self, until: float | None, max_events: int | None) -> int:
        fired = 0
        while self._heap and not self._stopped:
            if max_events is not None and fired >= max_events:
                break
            entry = self._heap[0]
            if len(entry) == 3 and entry[2].cancelled:
                heapq.heappop(self._heap)
                nxt = entry[2]
                self._cancelled_in_heap -= 1
                nxt.generation += 1
                nxt.callback = _noop
                nxt.args = ()
                if len(self._pool) < _POOL_CAP:
                    self._pool.append(nxt)
                continue
            if until is not None and entry[0] > until:
                self._now = until
                break
            if self.step():
                fired += 1
        else:
            # Heap drained (or stop() called): advance to `until` so that
            # repeated run(until=...) calls observe a monotone clock.
            if until is not None and until > self._now and not self._stopped:
                self._now = until
        return fired

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the in-flight
        event completes."""
        self._stopped = True
