"""Concurrent IFI requests sharing one netFilter run (Section III-A.1).

Multiple peers may simultaneously ask for frequent items with different
thresholds.  Rather than one hierarchy and one netFilter per request, the
paper routes every request to the root, runs netFilter once with the
*minimum* requested threshold, and carves each requester's answer out of
the resulting superset (items frequent at ``t_min`` include items frequent
at any larger ``t``).

The implementation is message-real: requests hop upstream along the tree
(recording their route), results are source-routed back down, and every
hop is charged to the ``CONTROL`` category (the paper does not price this
traffic in any reported component).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable

from repro.aggregation.hierarchical import AggregationEngine
from repro.core.config import NetFilterConfig, ceil_threshold
from repro.core.netfilter import NetFilter, NetFilterResult
from repro.errors import ProtocolError, RequestTimeoutError
from repro.items.itemset import LocalItemSet
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.wire import CostCategory, SizeModel

#: Networks that already carry a coordinator's handler registrations.
#: ``Node.register_handler`` refuses silent replacement, so a second
#: coordinator on the same network would die halfway through its handler
#: loop with a confusing per-node error; this guard turns it into one
#: clear :class:`ProtocolError` before anything is touched.
_ATTACHED_NETWORKS: "weakref.WeakSet[Network]" = weakref.WeakSet()


@dataclass(frozen=True)
class IfiRequest:
    """One peer's request for the frequent items at its threshold ratio."""

    requester: int
    threshold_ratio: float

    def __post_init__(self) -> None:
        if not 0 < self.threshold_ratio <= 1:
            raise ProtocolError(
                f"threshold_ratio must be in (0, 1], got {self.threshold_ratio}"
            )


@register_payload
@dataclass(frozen=True, eq=False)
class RequestPayload(Payload):
    """A request hopping toward the root, recording its route."""

    threshold_ratio: float
    route: tuple[int, ...]
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@register_payload
@dataclass(frozen=True, eq=False)
class ResultPayload(Payload):
    """A requester's answer, source-routed back along the recorded route."""

    items: LocalItemSet
    remaining_route: tuple[int, ...]
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.pair_bytes * len(self.items)


class MultiRequestCoordinator:
    """Routes concurrent requests to the root and shares one netFilter run.

    Parameters
    ----------
    engine:
        The aggregation engine (and hierarchy) to run over.
    config:
        Filter settings for the shared run.  The threshold fields of the
        config are ignored — the minimum requested ratio is used.
    """

    def __init__(self, engine: AggregationEngine, config: NetFilterConfig) -> None:
        network = engine.network
        if network in _ATTACHED_NETWORKS:
            raise ProtocolError(
                "a MultiRequestCoordinator already owns the request/result "
                "handlers of this network; reuse the existing coordinator "
                "instead of constructing a second one"
            )
        self.engine = engine
        self.config = config
        self._pending_at_root: list[RequestPayload] = []
        self._delivered: dict[int, LocalItemSet] = {}
        for peer in engine.hierarchy.participants():
            node = network.node(peer)
            node.register_handler(RequestPayload, self._make_request_handler(peer))
            node.register_handler(ResultPayload, self._make_result_handler(peer))
        _ATTACHED_NETWORKS.add(network)

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------
    def _make_request_handler(self, peer: int) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            payload = message.payload
            assert isinstance(payload, RequestPayload)
            self._relay_request(peer, payload)

        return handle

    def _relay_request(self, peer: int, payload: RequestPayload) -> None:
        hierarchy = self.engine.hierarchy
        if peer == hierarchy.root:
            self._pending_at_root.append(payload)
            return
        parent = hierarchy.parent_of(peer)
        if parent is None:
            raise ProtocolError(f"peer {peer} has no route to the root")
        self.engine.network.node(peer).send(
            parent,
            RequestPayload(
                threshold_ratio=payload.threshold_ratio,
                route=payload.route + (peer,),
            ),
        )

    def _make_result_handler(self, peer: int) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            payload = message.payload
            assert isinstance(payload, ResultPayload)
            if not payload.remaining_route:
                self._delivered[peer] = payload.items
                return
            next_hop = payload.remaining_route[-1]
            self.engine.network.node(peer).send(
                next_hop,
                ResultPayload(
                    items=payload.items,
                    remaining_route=payload.remaining_route[:-1],
                ),
            )

        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _arrived_requesters(self) -> set[int]:
        """Requesters whose request payloads have reached the root.  The
        first route hop is the requester itself; an empty route means the
        root asked for itself."""
        root = self.engine.hierarchy.root
        return {
            payload.route[0] if payload.route else root
            for payload in self._pending_at_root
        }

    def _await(
        self,
        done: Callable[[], bool],
        deadline: float,
        stage: str,
        missing: Callable[[], list[int]],
    ) -> None:
        """Drive the simulation until ``done()``; raise a typed timeout —
        naming the peers still owed traffic — when the deadline passes or
        the event queue drains first (a drained queue means the missing
        messages are gone, not merely late)."""
        sim = self.engine.sim
        while not done():
            if sim.now >= deadline:
                raise RequestTimeoutError(
                    f"{stage} timed out at t={sim.now:g}: still missing "
                    f"peers {missing()}"
                )
            if not sim.step():
                raise RequestTimeoutError(
                    f"{stage}: event queue drained at t={sim.now:g} with "
                    f"peers {missing()} still missing (traffic lost)"
                )

    def run(
        self, requests: list[IfiRequest], timeout: float = 600.0
    ) -> tuple[dict[int, LocalItemSet], NetFilterResult]:
        """Serve all requests with one shared netFilter run.

        Parameters
        ----------
        requests:
            The concurrent requests to serve.
        timeout:
            Simulated-time budget for *each* wire stage (request routing
            to the root, result delivery back).  A stage that misses it
            raises :class:`~repro.errors.RequestTimeoutError` naming the
            peers whose traffic never arrived, instead of spinning the
            event loop.

        Returns
        -------
        tuple
            ``(answers, shared_result)`` where ``answers[requester]`` is
            that requester's frequent-item set at *its* threshold, and
            ``shared_result`` is the underlying netFilter run at the
            minimum threshold.
        """
        if not requests:
            raise ProtocolError("no requests to serve")
        if timeout <= 0:
            raise ProtocolError(f"timeout must be positive, got {timeout}")
        engine = self.engine
        sim = engine.sim
        hierarchy = engine.hierarchy
        network = engine.network
        requesters = {request.requester for request in requests}

        # 1. Every requester fires its request toward the root.
        self._pending_at_root.clear()
        self._delivered.clear()
        for request in requests:
            payload = RequestPayload(
                threshold_ratio=request.threshold_ratio, route=()
            )
            self._relay_request(request.requester, payload)
        expected = len(requests)
        self._await(
            done=lambda: len(self._pending_at_root) >= expected,
            deadline=sim.now + timeout,
            stage="request routing",
            missing=lambda: sorted(requesters - self._arrived_requesters()),
        )

        # 2. One netFilter run at the minimum threshold ratio.
        min_ratio = min(p.threshold_ratio for p in self._pending_at_root)
        shared_config = NetFilterConfig(
            filter_size=self.config.filter_size,
            num_filters=self.config.num_filters,
            threshold_ratio=min_ratio,
            hash_seed=self.config.hash_seed,
        )
        shared_result = NetFilter(shared_config).run(engine)

        # 3. Carve out and deliver each requester's subset.
        for payload in self._pending_at_root:
            threshold = ceil_threshold(
                payload.threshold_ratio, shared_result.grand_total
            )
            subset = shared_result.frequent.filter_values(threshold)
            if not payload.route:
                # The root asked for itself.
                self._delivered[hierarchy.root] = subset
                continue
            next_hop = payload.route[-1]
            network.node(hierarchy.root).send(
                next_hop,
                ResultPayload(items=subset, remaining_route=payload.route[:-1]),
            )
        self._await(
            done=lambda: len(self._delivered) >= len(requesters),
            deadline=sim.now + timeout,
            stage="result delivery",
            missing=lambda: sorted(requesters - set(self._delivered)),
        )
        return dict(self._delivered), shared_result
