"""In-network parameter estimation by branch sampling (Section IV-E).

To set ``g`` and ``f`` optimally, the root needs ``v̄``, ``v̄_light``,
``n`` and ``r`` — none of which it can know exactly without paying the
naive cost.  The paper samples instead: a few random *branches* of the
hierarchy (root-to-leaf paths) are selected; every peer on a sampled
branch samples a few of its local items; the aggregates of the sampled
items *over the sampled peers* are collected; and the global value of
sampled item ``i`` is estimated by mass-scaling (the text before
Formula 7):

    v̂_i = v'_i · v / Σ_j v'_j

From the ``x`` distinct sampled items the paper then takes

* **Formula 8**: ``v̄̂ = Σ v̂_i / x``
* **Formula 7**: ``v̄̂_light = Σ_{v̂_i < t} v̂_i / |{i : v̂_i < t}|``

For ``n̂`` and ``r̂`` the paper defers to its unavailable complete version
("obtained in similar fashion"), so this module documents its
substitutions explicitly:

* ``r̂`` — the count of sampled items with ``v̂_i ≥ t``.  Heavy items
  appear in virtually every peer's local set, so a heavy item is captured
  by any non-trivial sample with high probability; no scale-up is applied.
* ``n̂`` — a Chapman capture-recapture estimate: the sampled peers are
  split into two halves, and ``n̂ = (x₁+1)(x₂+1)/(x₁₂+1) - 1`` from the
  distinct-item counts of the halves and their overlap.  Popularity-biased
  capture makes this an underestimate on skewed data; the ablation bench
  quantifies the bias against the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.combiners import KeyedSumCombiner
from repro.aggregation.hierarchical import AggregationEngine
from repro.aggregation.spec import AggregateSpec
from repro.core.netfilter import totals_spec
from repro.core.optimizer import ParameterEstimates
from repro.errors import ProtocolError
from repro.items.itemset import LocalItemSet
from repro.net.node import Node
from repro.net.wire import CostCategory


@dataclass(frozen=True)
class SamplingConfig:
    """How much to sample.

    Attributes
    ----------
    n_branches:
        Random root-to-leaf paths whose peers participate.
    items_per_peer:
        Local items each sampled peer contributes (uniform without
        replacement from its local set).
    """

    n_branches: int = 4
    items_per_peer: int = 50

    def __post_init__(self) -> None:
        if self.n_branches <= 0:
            raise ProtocolError("n_branches must be positive")
        if self.items_per_peer <= 0:
            raise ProtocolError("items_per_peer must be positive")


class ParameterEstimator:
    """Runs the Section IV-E sampling protocol over a hierarchy.

    The collection itself reuses the aggregation engine with a keyed-sum
    spec whose contribution is non-empty only on sampled peers; its bytes
    are charged to the ``SAMPLING`` category.
    """

    def __init__(self, engine: AggregationEngine, config: SamplingConfig | None = None) -> None:
        self.engine = engine
        self.config = config or SamplingConfig()

    # ------------------------------------------------------------------
    # Branch selection
    # ------------------------------------------------------------------
    def select_sampled_peers(self) -> set[int]:
        """Union of the peers on ``n_branches`` random root-to-leaf paths."""
        hierarchy = self.engine.hierarchy
        rng = self.engine.sim.rng.stream("sampling.branches")
        leaves = hierarchy.leaves()
        if not leaves:
            return {hierarchy.root}
        sampled: set[int] = set()
        picks = min(self.config.n_branches, len(leaves))
        chosen = rng.choice(len(leaves), size=picks, replace=False)
        for index in np.atleast_1d(chosen):
            peer: int | None = leaves[int(index)]
            while peer is not None:
                sampled.add(peer)
                peer = hierarchy.parent_of(peer)
        return sampled

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _sampling_spec(self, sampled_peers: set[int]) -> AggregateSpec:
        items_per_peer = self.config.items_per_peer
        sim = self.engine.sim

        def contribute(node: Node, _: Any) -> LocalItemSet:
            if node.peer_id not in sampled_peers or len(node.items) == 0:
                return LocalItemSet.empty()
            rng = sim.rng.stream(f"sampling.peer.{node.peer_id}")
            count = min(items_per_peer, len(node.items))
            picked = rng.choice(len(node.items), size=count, replace=False)
            picked = np.sort(np.atleast_1d(picked))
            return LocalItemSet(node.items.ids[picked], node.items.values[picked])

        return AggregateSpec(
            name="sampling.collect",
            combiner=KeyedSumCombiner(),
            contribute=contribute,
            up_category=CostCategory.SAMPLING,
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def run(self, threshold_ratio: float) -> ParameterEstimates:
        """Sample, collect, and estimate (v̄, v̄_light, n, r)."""
        engine = self.engine
        grand_total, _ = engine.run(totals_spec())
        threshold = threshold_ratio * grand_total

        sampled_peers = self.select_sampled_peers()
        collected: LocalItemSet = engine.run(self._sampling_spec(sampled_peers))
        if len(collected) == 0:
            raise ProtocolError("sampling collected no items; increase the sample")

        sampled_mass = float(collected.values.sum())
        estimated_values = (
            collected.values.astype(np.float64) * float(grand_total) / sampled_mass
        )

        mean_value = float(estimated_values.mean())  # Formula 8
        light = estimated_values[estimated_values < threshold]
        mean_light = float(light.mean()) if light.size else mean_value  # Formula 7
        heavy_count = float(np.count_nonzero(estimated_values >= threshold))

        n_estimate = self._estimate_universe_size(sampled_peers)
        return ParameterEstimates(
            n_items=n_estimate,
            heavy_count=heavy_count,
            mean_value=mean_value,
            mean_light_value=mean_light,
            source=(
                f"sampling(branches={self.config.n_branches}, "
                f"items/peer={self.config.items_per_peer})"
            ),
        )

    def _estimate_universe_size(self, sampled_peers: set[int]) -> float:
        """Chapman capture-recapture over two halves of the sampled peers.

        Uses the *full local sets* of the sampled peers (ids only — this
        is local bookkeeping at the root's behest; the collected sample
        above is what travelled the network).  See the module docstring
        for the substitution rationale.
        """
        network = self.engine.network
        peers = sorted(sampled_peers)
        half = max(len(peers) // 2, 1)
        first = peers[:half]
        second = peers[half:] or first
        ids_first = np.unique(
            np.concatenate(
                [network.node(p).items.ids for p in first]
                or [np.empty(0, dtype=np.int64)]
            )
        )
        ids_second = np.unique(
            np.concatenate(
                [network.node(p).items.ids for p in second]
                or [np.empty(0, dtype=np.int64)]
            )
        )
        overlap = np.intersect1d(ids_first, ids_second, assume_unique=True)
        chapman = (
            (ids_first.size + 1) * (ids_second.size + 1) / (overlap.size + 1) - 1
        )
        observed = float(np.union1d(ids_first, ids_second).size)
        return max(chapman, observed)
