"""The analytic cost model (Section IV-A, IV-B).

These formulas *predict* per-peer communication cost; the simulator
*measures* it.  Keeping both lets the tests and the ablation benches check
the paper's analysis against the implementation:

* **Formula 1** (netFilter):
  ``C_filter = s_a·f·g + s_g·f·w + (s_a+s_i)·(r+fp)``
* **Formula 2** (naive):
  ``(s_a+s_i)·o ≤ C_naive ≤ (s_a+s_i)·o·(h-1)``
* **Formula 5** (simplified, used to derive f_opt):
  ``C_filter ≈ s_a·f·g + (s_a+s_i)·(r+fp₂)``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import expected_heterogeneous_false_positives
from repro.errors import ConfigurationError
from repro.net.wire import SizeModel


@dataclass(frozen=True)
class PredictedCost:
    """Predicted per-peer byte costs of one netFilter run (Formula 1)."""

    filtering: float
    dissemination: float
    aggregation: float

    @property
    def total(self) -> float:
        """Sum of the three components."""
        return self.filtering + self.dissemination + self.aggregation


def netfilter_cost(
    filter_size: int,
    num_filters: int,
    heavy_groups_per_filter: float,
    heavy_count: float,
    false_positives: float,
    size_model: SizeModel | None = None,
) -> PredictedCost:
    """Formula 1 with explicit ``w`` (heavy groups per filter), ``r`` and
    ``fp``.

    The paper writes the dissemination term as ``s_g · f · w``; ``w`` here
    is the per-filter heavy-group count, so ``f · w`` is the total number
    of disseminated identifiers.
    """
    model = size_model or SizeModel()
    if filter_size <= 0 or num_filters <= 0:
        raise ConfigurationError("filter_size and num_filters must be positive")
    return PredictedCost(
        filtering=model.aggregate_bytes * num_filters * filter_size,
        dissemination=model.group_id_bytes * num_filters * heavy_groups_per_filter,
        aggregation=model.pair_bytes * (heavy_count + false_positives),
    )


def simplified_netfilter_cost(
    filter_size: int,
    num_filters: int,
    n_items: float,
    heavy_count: float,
    size_model: SizeModel | None = None,
) -> float:
    """Formula 5: dissemination dropped (``w << g``), ``fp`` replaced by
    the Formula-4 prediction of heterogeneous false positives."""
    model = size_model or SizeModel()
    fp2 = expected_heterogeneous_false_positives(
        n_items, heavy_count, filter_size, num_filters
    )
    return (
        model.aggregate_bytes * num_filters * filter_size
        + model.pair_bytes * (heavy_count + fp2)
    )


def naive_cost_bounds(
    distinct_per_peer: float,
    hierarchy_height: int,
    size_model: SizeModel | None = None,
) -> tuple[float, float]:
    """Formula 2: lower and upper bound on the naive per-peer cost.

    Parameters
    ----------
    distinct_per_peer:
        ``o`` — mean distinct items in a peer's local set.
    hierarchy_height:
        ``h`` — the hierarchy height.
    """
    model = size_model or SizeModel()
    if distinct_per_peer < 0:
        raise ConfigurationError("distinct_per_peer must be non-negative")
    if hierarchy_height < 1:
        raise ConfigurationError("hierarchy_height must be at least 1")
    low = model.pair_bytes * distinct_per_peer
    high = model.pair_bytes * distinct_per_peer * max(hierarchy_height - 1, 1)
    return low, high
