"""Centralized ground truth.

The oracle computes ``IFI(A, t)`` by merging every live peer's local item
set in one process — the definition from Section I, with none of the
protocol machinery.  Tests assert that netFilter's distributed answer is
*identical* to the oracle's for every configuration, which is the paper's
central exactness claim (no false positives, no false negatives, exact
values).
"""

from __future__ import annotations

from repro.items.itemset import LocalItemSet
from repro.net.network import Network


def oracle_global_values(network: Network) -> LocalItemSet:
    """Exact global value of every item held by any live peer."""
    return LocalItemSet.merge_many(
        [network.node(peer).items for peer in network.live_peers()]
    )


def oracle_frequent_items(network: Network, threshold: int) -> LocalItemSet:
    """Exact ``IFI(A, t)`` over the live population.

    Parameters
    ----------
    network:
        The network whose peers hold the data.
    threshold:
        The absolute threshold ``t``.

    Returns
    -------
    LocalItemSet
        Frequent item ids with their exact global values.
    """
    return oracle_global_values(network).filter_values(threshold)
