"""Count-Min sketches.

The linear-sketch workhorse behind the *approximate* distributed
frequent-item techniques the paper positions itself against ([9], [12] in
its related work; footnote 5 discusses their ``O(a/ε)`` cost).  A
Count-Min sketch with width ``w = ⌈e/ε⌉`` and depth ``d = ⌈ln(1/δ)⌉``
over-estimates any item's value by at most ``ε·v`` with probability at
least ``1-δ``, never under-estimates, and — being linear — merges by
element-wise addition, i.e. it aggregates hierarchically with the same
vector-sum machinery as netFilter's phase 1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.filters import splitmix64
from repro.errors import ConfigurationError
from repro.items.itemset import LocalItemSet
from repro.net.wire import SizeModel


class CountMinSketch:
    """A Count-Min sketch over item ids.

    Parameters
    ----------
    width:
        Counters per row (``w``); the over-estimate bound is ``e/w`` of
        the total mass per row.
    depth:
        Independent hash rows (``d``); the failure probability is
        ``e^-d``.
    seed:
        Seed for the per-row hash salts — all peers must share it, just
        like netFilter's filter-bank seed.

    Examples
    --------
    >>> sketch = CountMinSketch(width=64, depth=3, seed=1)
    >>> sketch.add(LocalItemSet.from_pairs({5: 10, 9: 2}))
    >>> bool(sketch.estimate(np.array([5]))[0] >= 10)
    True
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width <= 0 or depth <= 0:
            raise ConfigurationError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._salts = rng.integers(0, 1 << 63, size=depth, dtype=np.int64)
        self.counts = np.zeros((depth, width), dtype=np.int64)

    @classmethod
    def from_error(cls, epsilon: float, delta: float, seed: int = 0) -> "CountMinSketch":
        """Size the sketch for over-estimate ``ε·(total mass)`` with
        probability ``1-δ``: ``w = ⌈e/ε⌉``, ``d = ⌈ln(1/δ)⌉``."""
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(depth, 1), seed=seed)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _row_positions(self, item_ids: np.ndarray) -> np.ndarray:
        """Shape (depth, len(ids)): the counter index per row per item."""
        item_ids = np.asarray(item_ids, dtype=np.int64).astype(np.uint64)
        positions = np.empty((self.depth, item_ids.size), dtype=np.int64)
        for row, salt in enumerate(self._salts):
            mixed = splitmix64(item_ids ^ np.uint64(salt))
            positions[row] = (mixed % np.uint64(self.width)).astype(np.int64)
        return positions

    # ------------------------------------------------------------------
    # Updates and queries
    # ------------------------------------------------------------------
    def add(self, item_set: LocalItemSet) -> None:
        """Fold a local item set into the sketch."""
        if len(item_set) == 0:
            return
        positions = self._row_positions(item_set.ids)
        weights = item_set.values.astype(np.float64)
        for row in range(self.depth):
            self.counts[row] += np.bincount(
                positions[row], weights=weights, minlength=self.width
            ).astype(np.int64)

    def estimate(self, item_ids: np.ndarray) -> np.ndarray:
        """Upper-bound estimates (min over rows) for the given ids."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if item_ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        positions = self._row_positions(item_ids)
        per_row = np.stack(
            [self.counts[row][positions[row]] for row in range(self.depth)]
        )
        return per_row.min(axis=0)

    # ------------------------------------------------------------------
    # Linearity (what makes hierarchical aggregation work)
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        """Flatten to a ``depth·width`` vector for vector-sum aggregation."""
        return self.counts.reshape(-1).copy()

    @classmethod
    def from_vector(
        cls, vector: np.ndarray, width: int, depth: int, seed: int
    ) -> "CountMinSketch":
        """Rebuild a sketch from an aggregated flat vector."""
        vector = np.asarray(vector, dtype=np.int64)
        if vector.shape != (width * depth,):
            raise ConfigurationError(
                f"expected a flat vector of {width * depth} counters, "
                f"got shape {vector.shape}"
            )
        sketch = cls(width=width, depth=depth, seed=seed)
        sketch.counts = vector.reshape(depth, width).copy()
        return sketch

    def size_bytes(self, model: SizeModel) -> int:
        """Wire size: one aggregate value per counter."""
        return model.aggregate_bytes * self.width * self.depth
