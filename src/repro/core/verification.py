"""Candidate-set materialization (Section III-C, Algorithm 2).

After candidate filtering, no peer holds the complete candidate set — and
collecting the full item universe to build it centrally would cost as much
as the naive approach.  The paper's key observation: given the list of
heavy item groups, *each peer can materialize its own partial candidate
set* from its local items, and the partial sets merge implicitly during
the phase-2 aggregation.

This module provides :class:`HeavyGroups` (the disseminated heavy-group
lists, which know their wire size: ``s_g`` per identifier) and
:func:`materialize_candidates` (one peer's partial candidate set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import FilterBank
from repro.items.itemset import LocalItemSet
from repro.net.wire import SizeModel


@dataclass(frozen=True, eq=False)
class HeavyGroups:
    """The heavy item groups of every filter, as found by phase 1.

    Attributes
    ----------
    per_filter:
        ``per_filter[i]`` is the array of heavy group ids under filter i.
    """

    per_filter: tuple[np.ndarray, ...]

    @classmethod
    def from_aggregate(
        cls, bank: FilterBank, flat_aggregate: np.ndarray, threshold: float
    ) -> "HeavyGroups":
        """Extract heavy groups from the phase-1 aggregate vector."""
        return cls(
            per_filter=tuple(
                bank.heavy_groups_per_filter(flat_aggregate, threshold)
            )
        )

    @property
    def total_count(self) -> int:
        """Total heavy-group identifiers across filters — the paper's
        ``f · w`` (Section IV-A prices dissemination at ``s_g · f · w``)."""
        return int(sum(groups.size for groups in self.per_filter))

    @property
    def counts(self) -> tuple[int, ...]:
        """Heavy-group count per filter."""
        return tuple(int(groups.size) for groups in self.per_filter)

    def wire_bytes(self, model: SizeModel) -> int:
        """Dissemination payload size: one group id per heavy group."""
        return model.group_id_bytes * self.total_count

    def is_empty(self) -> bool:
        """True when any filter has no heavy group — then *no* item can be
        a candidate (it would need a heavy group under every filter)."""
        return any(groups.size == 0 for groups in self.per_filter)


def materialize_candidates(
    item_set: LocalItemSet, bank: FilterBank, heavy: HeavyGroups
) -> LocalItemSet:
    """One peer's partial candidate set (Algorithm 2, line 2).

    The peer keeps exactly those local items whose group is heavy under
    *every* filter, with their local values — the ``(identifier, local
    value)`` pairs it will propagate in phase 2.
    """
    if len(item_set) == 0 or heavy.is_empty():
        return LocalItemSet.empty()
    mask = bank.candidate_mask(item_set.ids, list(heavy.per_filter))
    return item_set.select(mask)
