"""netFilter configuration.

The two knobs the whole paper revolves around: the filter size ``g``
(item groups per filter) and the number of filters ``f``; plus the
threshold, expressed either as the ratio ``ρ`` of the grand total ``v``
(the paper's formulation, Section IV) or as an absolute value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def ceil_threshold(threshold_ratio: float, grand_total: int | float) -> int:
    """The canonical ratio-to-absolute threshold derivation ``t = ⌈ρ·v⌉``
    (floored at 1 so an empty network still has a meaningful threshold).

    Every layer that turns a ratio into an absolute threshold —
    :meth:`NetFilterConfig.resolve_threshold`, the multi-request carving
    of :mod:`repro.core.requests`, the front door's per-tenant answers —
    must go through this one function, or two layers can disagree on
    item-set membership at the threshold boundary.
    """
    return max(int(-(-threshold_ratio * grand_total // 1)), 1)


@dataclass(frozen=True)
class NetFilterConfig:
    """Parameters of one netFilter run.

    Attributes
    ----------
    filter_size:
        ``g`` — the number of item groups per filter.
    num_filters:
        ``f`` — how many independent hash filters to apply; an item stays
        a candidate only if *all* its groups are heavy (Section III-B.2).
    threshold_ratio:
        ``ρ`` with ``t = ρ · v``.  Mutually exclusive with ``threshold``.
    threshold:
        Absolute threshold ``t``.  Mutually exclusive with
        ``threshold_ratio``.
    hash_seed:
        Seed for the universal hash coefficients, so a configuration is a
        complete, reproducible description of a run.

    Examples
    --------
    >>> cfg = NetFilterConfig(filter_size=100, num_filters=3, threshold_ratio=0.01)
    >>> cfg.filter_size, cfg.num_filters
    (100, 3)
    """

    filter_size: int
    num_filters: int = 1
    threshold_ratio: float | None = None
    threshold: int | None = None
    hash_seed: int = 0

    def __post_init__(self) -> None:
        if self.filter_size <= 0:
            raise ConfigurationError(
                f"filter_size (g) must be positive, got {self.filter_size}"
            )
        if self.num_filters <= 0:
            raise ConfigurationError(
                f"num_filters (f) must be positive, got {self.num_filters}"
            )
        if (self.threshold_ratio is None) == (self.threshold is None):
            raise ConfigurationError(
                "exactly one of threshold_ratio and threshold must be given"
            )
        if self.threshold_ratio is not None and not 0 < self.threshold_ratio <= 1:
            raise ConfigurationError(
                f"threshold_ratio must be in (0, 1], got {self.threshold_ratio}"
            )
        if self.threshold is not None and self.threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive, got {self.threshold}"
            )

    def resolve_threshold(self, grand_total: int) -> int:
        """The absolute threshold ``t`` for a given grand total ``v``."""
        if self.threshold is not None:
            return self.threshold
        assert self.threshold_ratio is not None
        return ceil_threshold(self.threshold_ratio, grand_total)
