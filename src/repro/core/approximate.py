"""Sketch-based *approximate* IFI — the related-work comparator.

The paper's related work ([9], [12]; footnote 5) covers techniques that
return an approximate frequent-item set with an ε error tolerance: false
positives are possible, reported values carry error, and the cost scales
as ``O(a/ε)``.  The paper declines to compare against them quantitatively
because the guarantees differ; this module implements a representative
member of that class so the trade-off can actually be measured (see the
``approximate vs exact`` ablation bench).

Protocol (one hierarchical round trip, like each netFilter phase):

1. *Candidate nomination* — every peer nominates its local items with
   value ≥ t/N.  By pigeonhole, any globally frequent item has local
   value ≥ t/N at some peer, so the nominated union has **no false
   negatives**.  Nominations merge as a keyed union up the tree.
2. *Sketch aggregation* — every peer contributes a Count-Min sketch of
   its full local set; sketches are linear, so a vector-sum convergecast
   yields the sketch of the global values.
3. The root reports every nominated item whose sketch estimate is ≥ t.
   Estimates only over-count (by ≤ ε·v w.h.p.), so the report is a
   **superset** of the exact answer with approximate values — exactly the
   guarantee profile of the ε-tolerant related work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.combiners import KeyedSumCombiner, VectorSumCombiner
from repro.aggregation.hierarchical import AggregationEngine
from repro.aggregation.spec import AggregateSpec
from repro.core.netfilter import totals_spec
from repro.core.sketches import CountMinSketch
from repro.errors import ConfigurationError
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.node import Node
from repro.net.wire import CostCategory


@dataclass(frozen=True)
class ApproximateConfig:
    """Configuration of the approximate protocol.

    Attributes
    ----------
    epsilon:
        Relative over-estimate tolerance: estimates exceed true values by
        at most ``ε·v`` with probability ``1-δ`` per item.
    delta:
        Per-item failure probability of the ε bound.
    threshold_ratio:
        ``ρ`` with ``t = ρ·v``.
    sketch_seed:
        Shared seed for the sketch hash salts.
    """

    epsilon: float = 0.001
    delta: float = 0.05
    threshold_ratio: float = 0.01
    sketch_seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.threshold_ratio <= 1:
            raise ConfigurationError(
                f"threshold_ratio must be in (0, 1], got {self.threshold_ratio}"
            )
        # epsilon/delta are validated by CountMinSketch.from_error.


@dataclass(frozen=True)
class ApproximateResult:
    """Outcome of one approximate-IFI run.

    ``reported`` holds sketch *estimates*, not exact values; it is a
    superset of the exact answer (no false negatives) but may contain
    false positives — compare with
    :class:`~repro.core.netfilter.NetFilterResult`'s exact guarantees.
    """

    reported: LocalItemSet
    threshold: int
    grand_total: int
    breakdown: CostBreakdown
    config: ApproximateConfig

    @property
    def total_cost(self) -> float:
        """Average per-peer bytes of the run."""
        return self.breakdown.sketch


class ApproximateIFIProtocol:
    """A representative ε-tolerant frequent-items protocol."""

    def __init__(self, config: ApproximateConfig) -> None:
        self.config = config
        self._template = CountMinSketch.from_error(
            config.epsilon, config.delta, seed=config.sketch_seed
        )

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    def _nomination_spec(self, local_threshold: float) -> AggregateSpec:
        def contribute(node: Node, _: Any) -> LocalItemSet:
            nominated = node.items.select(node.items.values >= local_threshold)
            # Union semantics: values are irrelevant here (the sketch
            # supplies estimates); normalize to 1 so the merged set is a
            # membership union priced at one pair per nominee.
            return LocalItemSet(nominated.ids, np.ones(len(nominated), dtype=np.int64))

        return AggregateSpec(
            name="approx.nominate",
            combiner=KeyedSumCombiner(),
            contribute=contribute,
            up_category=CostCategory.SKETCH,
        )

    def _sketch_spec(self) -> AggregateSpec:
        width, depth, seed = (
            self._template.width,
            self._template.depth,
            self._template.seed,
        )

        def contribute(node: Node, _: Any) -> np.ndarray:
            sketch = CountMinSketch(width=width, depth=depth, seed=seed)
            sketch.add(node.items)
            return sketch.to_vector()

        return AggregateSpec(
            name="approx.sketch",
            combiner=VectorSumCombiner(width * depth),
            contribute=contribute,
            up_category=CostCategory.SKETCH,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, engine: AggregationEngine) -> ApproximateResult:
        """One approximate-IFI round over the engine's hierarchy."""
        network = engine.network
        before = network.accounting.bytes_by_category()

        grand_total, n_participants = engine.run(totals_spec())
        threshold = max(int(np.ceil(self.config.threshold_ratio * grand_total)), 1)
        local_threshold = threshold / max(float(n_participants), 1.0)

        nominated: LocalItemSet = engine.run(self._nomination_spec(local_threshold))
        flat = engine.run(self._sketch_spec())
        sketch = CountMinSketch.from_vector(
            flat, self._template.width, self._template.depth, self._template.seed
        )

        estimates = sketch.estimate(nominated.ids)
        keep = estimates >= threshold
        reported = LocalItemSet(nominated.ids[keep], estimates[keep])

        after = network.accounting.bytes_by_category()
        population = network.n_peers
        breakdown = CostBreakdown(
            sketch=(
                after.get(CostCategory.SKETCH, 0) - before.get(CostCategory.SKETCH, 0)
            )
            / population,
            control=(
                after.get(CostCategory.CONTROL, 0)
                - before.get(CostCategory.CONTROL, 0)
            )
            / population,
        )
        return ApproximateResult(
            reported=reported,
            threshold=threshold,
            grand_total=int(grand_total),
            breakdown=breakdown,
            config=self.config,
        )
