"""Time-decay semantics for continuous monitoring.

The paper's one-shot query asks "which items are frequent over all data
ever"; a standing monitor (Table I's applications, ROADMAP item 3) asks
"which items are frequent *lately*".  Two standard decay models make
"lately" precise, both folded into the delta-aggregation invariant of
:mod:`repro.core.continuous`:

* **Exponential fading** — every committed count is multiplied by
  ``factor`` per elapsed epoch, so an item's faded value is
  ``sum(factor**age(arrival) * count(arrival))``.  The threshold tracks
  the faded grand total, which the root derives from its own faded
  group-total vector (filter 0 partitions all items, so its slice sums
  every item's faded mass exactly once).
* **Sliding window** — only arrivals committed within the last
  ``window`` epochs count.  Fully integer-exact: the root retires each
  commit's delta vector when it ages out.

Decay is applied **at the root, per commit** — peers ship raw integer
arrival deltas, never faded floats, so tree aggregation stays
order-independent and same-seed replays stay byte-identical.  Arrivals
are dated by the commit that first includes them: data stranded on a
crashed peer starts fading only once a later epoch actually commits it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The two decay models (``DecayConfig.mode`` values).
EXPONENTIAL = "exponential"
WINDOW = "window"


@dataclass(frozen=True)
class DecayConfig:
    """How committed counts age out of a continuous monitor.

    Attributes
    ----------
    mode:
        ``"exponential"`` (fading) or ``"window"`` (sliding window).
    factor:
        Per-epoch retention in fading mode: a count commits with weight 1
        and is worth ``factor**k`` after ``k`` further epochs.
    window:
        Window length in epochs for sliding-window mode: a commit's
        arrivals count for ``window`` epochs, then retire.

    Examples
    --------
    >>> DecayConfig(mode="exponential", factor=0.5).multiplier(3)
    0.125
    >>> DecayConfig(mode="window", window=4).multiplier(3)
    1.0
    """

    mode: str = EXPONENTIAL
    factor: float = 0.9
    window: int = 0

    def __post_init__(self) -> None:
        if self.mode not in (EXPONENTIAL, WINDOW):
            raise ConfigurationError(
                f"decay mode must be {EXPONENTIAL!r} or {WINDOW!r}, got {self.mode!r}"
            )
        if self.mode == EXPONENTIAL and not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                f"fading factor must be in (0, 1), got {self.factor}"
            )
        if self.mode == WINDOW and self.window < 1:
            raise ConfigurationError(
                f"window must be at least 1 epoch, got {self.window}"
            )

    @property
    def exponential(self) -> bool:
        return self.mode == EXPONENTIAL

    @property
    def windowed(self) -> bool:
        return self.mode == WINDOW

    def multiplier(self, epochs: int) -> float:
        """Weight retained by a committed count after ``epochs`` epochs
        (window mode retires by removal, not by weight — always 1.0)."""
        if self.mode == EXPONENTIAL and epochs > 0:
            return float(self.factor**epochs)
        return 1.0
