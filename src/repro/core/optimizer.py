"""Optimal netFilter settings (Section IV-C and IV-D).

Two closed forms from the paper:

* **Formula 3** — the filter size that avoids homogeneous false positives:
  ``g_opt = c + v̄_light / (ρ · v̄)`` with a small positive constant ``c``
  (at this size, at most ``t / v̄_light`` light items land in one group on
  average, so a group of light items alone cannot reach the threshold).
* **Formula 6** — the filter count that balances the marginal filtering
  cost of one more filter (``g · s_a``) against the marginal saving in
  candidate-aggregation cost, reached when the expected heterogeneous
  false positives ``fp₂`` drop to ``g·s_a / (s_a+s_i)``:

  ``f_opt = ⌈ log_{1/(1-(1-1/g)^r)} ((s_a+s_i)·(n-r) / (g·s_a)) ⌉``

with **Formula 4** giving the heterogeneous-false-positive model itself:
``fp₂ = (n-r) · (1 - (1-1/g)^r)^f``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.wire import SizeModel


@dataclass(frozen=True)
class ParameterEstimates:
    """The four quantities the optimal setting needs (Section IV-E).

    Obtained either exactly (from a workload / the oracle) or in-network by
    :class:`~repro.core.sampling.ParameterEstimator`.
    """

    n_items: float
    heavy_count: float
    mean_value: float
    mean_light_value: float
    source: str = "oracle"


@dataclass(frozen=True)
class OptimalSettings:
    """A derived (g, f) pair ready to drop into a
    :class:`~repro.core.config.NetFilterConfig`."""

    filter_size: int
    num_filters: int


#: The paper's "small positive constant" c in Formula 3.  The evaluation
#: finds g_opt = c + 80 ≈ 100 for the default workload, i.e. c ≈ 20.
DEFAULT_SLACK: int = 20


def optimal_filter_size(
    threshold_ratio: float,
    mean_value: float,
    mean_light_value: float,
    slack: int = DEFAULT_SLACK,
) -> int:
    """Formula 3: ``g_opt = c + v̄_light / (ρ · v̄)``.

    Examples
    --------
    >>> optimal_filter_size(0.01, mean_value=10.0, mean_light_value=8.0)
    100
    """
    if not 0 < threshold_ratio <= 1:
        raise ConfigurationError(f"threshold_ratio must be in (0, 1], got {threshold_ratio}")
    if mean_value <= 0:
        raise ConfigurationError(f"mean_value must be positive, got {mean_value}")
    if mean_light_value < 0:
        raise ConfigurationError("mean_light_value must be non-negative")
    return max(1, slack + math.ceil(mean_light_value / (threshold_ratio * mean_value)))


def heterogeneous_collision_probability(filter_size: int, heavy_count: float) -> float:
    """``1 - (1 - 1/g)^r`` — probability that a light item shares its group
    with at least one heavy item under one filter (Section IV-D)."""
    if filter_size <= 0:
        raise ConfigurationError(f"filter_size must be positive, got {filter_size}")
    if heavy_count < 0:
        raise ConfigurationError("heavy_count must be non-negative")
    return 1.0 - (1.0 - 1.0 / filter_size) ** heavy_count


def expected_heterogeneous_false_positives(
    n_items: float, heavy_count: float, filter_size: int, num_filters: int
) -> float:
    """Formula 4: ``fp₂ = (n - r) · (1 - (1 - 1/g)^r)^f``."""
    if num_filters <= 0:
        raise ConfigurationError(f"num_filters must be positive, got {num_filters}")
    collision = heterogeneous_collision_probability(filter_size, heavy_count)
    light = max(n_items - heavy_count, 0.0)
    return light * collision**num_filters


def optimal_filter_count(
    filter_size: int,
    heavy_count: float,
    n_items: float,
    size_model: SizeModel | None = None,
) -> int:
    """Formula 6: the ``f`` at which one more filter costs more than it
    saves.

    Degenerate cases resolve to a single filter: no heavy items means no
    heterogeneous false positives at all, and a collision probability of 1
    means extra filters cannot prune anything.

    Examples
    --------
    >>> optimal_filter_count(filter_size=100, heavy_count=8, n_items=10**5)
    3
    """
    model = size_model or SizeModel()
    if heavy_count <= 0:
        return 1
    collision = heterogeneous_collision_probability(filter_size, heavy_count)
    if collision <= 0.0 or collision >= 1.0:
        return 1
    target = (
        model.pair_bytes * max(n_items - heavy_count, 0.0)
        / (filter_size * model.aggregate_bytes)
    )
    if target <= 1.0:
        return 1
    f_opt = math.ceil(math.log(target) / math.log(1.0 / collision))
    return max(1, f_opt)


def derive_optimal_settings(
    estimates: ParameterEstimates,
    threshold_ratio: float,
    size_model: SizeModel | None = None,
    slack: int = DEFAULT_SLACK,
) -> OptimalSettings:
    """Formulae 3 and 6 together: the paper's recommended (g, f)."""
    filter_size = optimal_filter_size(
        threshold_ratio,
        mean_value=estimates.mean_value,
        mean_light_value=estimates.mean_light_value,
        slack=slack,
    )
    num_filters = optimal_filter_count(
        filter_size,
        heavy_count=estimates.heavy_count,
        n_items=estimates.n_items,
        size_model=size_model,
    )
    return OptimalSettings(filter_size=filter_size, num_filters=num_filters)
