"""The naive baseline (Section IV-B).

Every peer forwards its full local item set up the hierarchy; internal
nodes merge (keyed-sum) what they receive with their own set and forward
the union.  The root ends with the exact global value of *every* item and
filters by the threshold.

This is exact but wasteful — the point of the paper's evaluation (Figures
7 and 8) is that netFilter achieves the same exact answer at a few percent
of this cost.  Note the measured cost is far below the intuitive
``O(n · N)``: a peer only propagates pairs for items with non-zero values
in its subtree, which is what Formula 2 bounds by ``(s_a+s_i)·o·(h-1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.combiners import KeyedSumCombiner
from repro.aggregation.hierarchical import AggregationEngine
from repro.aggregation.spec import AggregateSpec
from repro.core.config import NetFilterConfig
from repro.core.netfilter import totals_spec
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.node import Node
from repro.net.wire import CostCategory


@dataclass(frozen=True)
class NaiveResult:
    """Outcome of one naive-collection run."""

    frequent: LocalItemSet
    all_items: LocalItemSet
    threshold: int
    grand_total: int
    n_participants: int
    breakdown: CostBreakdown
    avg_items_per_peer: float
    #: Simulated time the run took (two convergecasts).
    elapsed_time: float = 0.0
    #: Worst per-phase coverage fraction across the two convergecasts.
    coverage: float = 1.0
    #: Whether both convergecasts covered every live peer (exactness
    #: holds only when they did).
    complete: bool = True

    @property
    def frequent_ids(self) -> np.ndarray:
        """Ids of the reported frequent items, ascending."""
        return self.frequent.ids

    @property
    def total_cost(self) -> float:
        """Average per-peer bytes of the full collection."""
        return self.breakdown.naive

    def __str__(self) -> str:
        return (
            f"NaiveResult({len(self.frequent)} frequent items, "
            f"{self.breakdown.naive:.0f} B/peer)"
        )


def full_collection_spec() -> AggregateSpec:
    """The naive keyed-sum over complete local item sets."""

    def contribute(node: Node, _: Any) -> LocalItemSet:
        return node.items

    return AggregateSpec(
        name="naive.full_collection",
        combiner=KeyedSumCombiner(),
        contribute=contribute,
        up_category=CostCategory.NAIVE,
    )


class NaiveProtocol:
    """Collect every item's global value at the root, then threshold.

    Accepts the same configuration object as :class:`~repro.core.netfilter.NetFilter`
    (only the threshold fields are used) so experiments can swap protocols.
    """

    def __init__(self, config: NetFilterConfig) -> None:
        self.config = config

    def run(self, engine: AggregationEngine) -> NaiveResult:
        """Execute the full collection and return the thresholded answer
        with measured costs."""
        network = engine.network
        accounting = network.accounting
        before = accounting.bytes_by_category()
        started_at = engine.sim.now

        totals_handle = engine.run_session(totals_spec())
        grand_total, n_participants = totals_handle.value
        threshold = self.config.resolve_threshold(int(grand_total))

        collection_handle = engine.run_session(full_collection_spec())
        all_items: LocalItemSet = collection_handle.value
        frequent = all_items.filter_values(threshold)

        after = accounting.bytes_by_category()
        population = network.n_peers
        naive_bytes = after.get(CostCategory.NAIVE, 0) - before.get(
            CostCategory.NAIVE, 0
        )
        control_bytes = after.get(CostCategory.CONTROL, 0) - before.get(
            CostCategory.CONTROL, 0
        )
        breakdown = CostBreakdown(
            naive=naive_bytes / population,
            control=control_bytes / population,
        )
        pairs_sent = naive_bytes / network.size_model.pair_bytes
        return NaiveResult(
            frequent=frequent,
            all_items=all_items,
            threshold=threshold,
            grand_total=int(grand_total),
            n_participants=int(n_participants),
            breakdown=breakdown,
            avg_items_per_peer=pairs_sent / population,
            elapsed_time=engine.sim.now - started_at,
            coverage=min(totals_handle.coverage, collection_handle.coverage),
            complete=totals_handle.complete and collection_handle.complete,
        )
