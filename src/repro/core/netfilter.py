"""The netFilter protocol (Section III, Algorithm 1).

One :meth:`NetFilter.run` performs, over an already-built hierarchy:

0. A combined scalar aggregation for the grand total ``v`` and the
   participant count ``N`` (Section IV: "obtained through simple aggregate
   computation ... combined with other aggregate computation").
1. **Candidate filtering** — a vector-sum aggregation of the ``f·g``
   item-group values; groups with aggregate ≥ t are heavy.
2. **Candidate verification** — the heavy-group lists ride down in the
   phase-2 request (candidate *dissemination*); every peer materializes
   its partial candidate set against them; a keyed-sum convergecast merges
   the partial sets (candidate *aggregation*) so the root ends with the
   exact global value of every candidate; candidates ≥ t are the answer.

The result is exact: no false positives, no false negatives, exact global
values — the properties the oracle-equivalence tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.combiners import (
    KeyedSumCombiner,
    ScalarSumCombiner,
    TupleCombiner,
    VectorSumCombiner,
)
from repro.aggregation.hierarchical import AggregationEngine, SessionHandle
from repro.aggregation.spec import AggregateSpec
from repro.core.config import NetFilterConfig
from repro.core.filters import FilterBank
from repro.core.recovery import RecoveryPolicy
from repro.core.verification import HeavyGroups, materialize_candidates
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel


@dataclass(frozen=True)
class NetFilterResult:
    """Everything one netFilter run produced.

    Attributes
    ----------
    frequent:
        The exact answer: frequent item ids with their exact global values.
    candidates:
        The merged candidate set the root verified (frequent items plus
        the filtering false positives).
    heavy_groups:
        The heavy item groups found by phase 1.
    threshold:
        The absolute threshold ``t`` used.
    grand_total:
        The measured grand total ``v``.
    n_participants:
        Peers that contributed (the aggregated ``N``).
    breakdown:
        Measured per-peer byte costs for this run only.
    avg_candidates_per_peer:
        Measured average number of candidate pairs each peer propagated in
        phase 2 — the y-axis of Figure 5(a)/6(a).
    config:
        The configuration that produced this result.
    """

    frequent: LocalItemSet
    candidates: LocalItemSet
    heavy_groups: HeavyGroups
    threshold: float
    grand_total: int
    n_participants: int
    breakdown: CostBreakdown
    avg_candidates_per_peer: float
    config: NetFilterConfig
    #: Simulated time the whole run took (three convergecasts; with unit
    #: link latency this is a few times the hierarchy height — the
    #: latency face of the hierarchical-vs-gossip trade-off).
    elapsed_time: float = 0.0
    #: Worst per-phase coverage fraction (covered / live peers at phase
    #: start) across the run's three convergecasts.
    coverage: float = 1.0
    #: Whether every phase covered every live peer.  Only a ``complete``
    #: result carries the paper's no-false-negative guarantee; an
    #: incomplete one may have silently pruned a frequent item.
    complete: bool = True
    #: Phase + whole-query re-issues spent getting here.
    reissues: int = 0

    @property
    def frequent_ids(self) -> np.ndarray:
        """Ids of the reported frequent items, ascending."""
        return self.frequent.ids

    @property
    def candidate_count(self) -> int:
        """Distinct candidates verified in phase 2."""
        return len(self.candidates)

    @property
    def false_positive_count(self) -> int:
        """Candidates that verification rejected (``fp`` in the paper —
        false positives *of the candidate set*; the final answer has
        none)."""
        return len(self.candidates) - len(self.frequent)

    def __str__(self) -> str:
        return (
            f"NetFilterResult({len(self.frequent)} frequent items, "
            f"{self.candidate_count} candidates, t={self.threshold}, "
            f"{self.breakdown.total:.0f} B/peer)"
        )


def totals_spec() -> AggregateSpec:
    """The combined (v, N) aggregation of Section IV."""
    return AggregateSpec(
        name="netfilter.totals",
        combiner=TupleCombiner(ScalarSumCombiner(), ScalarSumCombiner()),
        contribute=lambda node, _: (node.items.total_value, 1),
        up_category=CostCategory.CONTROL,
    )


def filtering_spec(bank: FilterBank) -> AggregateSpec:
    """Phase 1: the item-group aggregate vector (costs ``s_a·f·g``/peer)."""

    def contribute(node: Node, _: Any) -> np.ndarray:
        return bank.local_group_aggregates(node.items)

    return AggregateSpec(
        name="netfilter.group_aggregates",
        combiner=VectorSumCombiner(bank.total_groups),
        contribute=contribute,
        up_category=CostCategory.FILTERING,
    )


def verification_spec(bank: FilterBank) -> AggregateSpec:
    """Phase 2: heavy groups ride down in the request (dissemination),
    partial candidate sets merge upward (Algorithm 2)."""

    def contribute(node: Node, heavy: HeavyGroups) -> LocalItemSet:
        partial = materialize_candidates(node.items, bank, heavy)
        sim = node.network.sim
        sim.telemetry.registry.histogram(
            "netfilter.candidates_per_peer", buckets=(0, 1, 4, 16, 64, 256, 1024)
        ).observe(len(partial))
        sim.trace.emit(
            sim.now,
            "verify.materialized",
            peer=node.peer_id,
            candidates=len(partial),
        )
        return partial

    def request_bytes(heavy: HeavyGroups, model: SizeModel) -> int:
        return heavy.wire_bytes(model)

    return AggregateSpec(
        name="netfilter.candidates",
        combiner=KeyedSumCombiner(),
        contribute=contribute,
        up_category=CostCategory.AGGREGATION,
        down_category=CostCategory.DISSEMINATION,
        request_bytes=request_bytes,
    )


class NetFilter:
    """The two-phase in-network filtering protocol.

    Examples
    --------
    See ``examples/quickstart.py`` for an end-to-end run; the essential
    shape is::

        hierarchy = Hierarchy.build(network, root=0)
        engine = AggregationEngine(hierarchy)
        result = NetFilter(NetFilterConfig(filter_size=100, num_filters=3,
                                           threshold_ratio=0.01)).run(engine)
        result.frequent.to_dict()   # {item_id: exact global value}
    """

    def __init__(
        self, config: NetFilterConfig, recovery: RecoveryPolicy | None = None
    ) -> None:
        self.config = config
        self.recovery = recovery

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _attempt(
        self,
        engine: AggregationEngine,
        spec: AggregateSpec,
        request_data: Any = None,
    ) -> SessionHandle:
        """One session attempt that never raises on a dead root: a root
        that is down when the attempt starts yields a synthetic failed
        handle, so the recovery loop can wait for failover and re-aim at
        the promoted root instead of aborting the whole query."""
        if not engine.network.node(engine.hierarchy.root).alive:
            return engine.dead_root_session(spec)
        return engine.run_session(spec, request_data)

    def _run_phase(
        self,
        engine: AggregationEngine,
        spec: AggregateSpec,
        request_data: Any = None,
    ) -> tuple[SessionHandle, int]:
        """Run one aggregation phase; under a recovery policy, re-issue it
        (after a backed-off settle delay) while it stays failed or below
        the coverage floor and budget remains.  Re-issues go to whatever
        ``engine.hierarchy.root`` is *now* — after a root failover that is
        the promoted successor.  Returns the best handle and the re-issues
        spent."""
        handle = self._attempt(engine, spec, request_data)
        reissues = 0
        if self.recovery is None:
            return handle, reissues
        sim = engine.sim
        while (
            handle.failed or handle.coverage < self.recovery.min_coverage
        ) and reissues < self.recovery.max_phase_reissues:
            reissues += 1
            sim.trace.emit(
                sim.now,
                "request.reissued",
                scope="phase",
                spec=spec.name,
                coverage=handle.coverage,
                attempt=reissues,
            )
            sim.telemetry.registry.counter("recovery.phase_reissues").inc()
            sim.run(until=sim.now + self.recovery.delay_for(reissues))
            retry = self._attempt(engine, spec, request_data)
            if not retry.failed and (handle.failed or retry.coverage >= handle.coverage):
                handle = retry
        return handle, reissues

    def run(self, engine: AggregationEngine) -> NetFilterResult:
        """Execute Algorithm 1 over the engine's hierarchy and return the
        exact frequent-item set with measured costs.

        With a :class:`~repro.core.recovery.RecoveryPolicy`, phases whose
        coverage falls below the policy floor are re-issued, and if the
        run still comes back incomplete the whole query is re-run (early
        phases feed later ones — an undercounted grand total corrupts the
        threshold) up to ``max_query_reissues`` times.  A phase that loses
        its *root* mid-flight is re-issued the same way — against whatever
        root the hierarchy has by then, i.e. the failover successor once
        maintenance promotes one.  Without a recovery policy a root loss
        yields an empty result flagged ``complete=False``."""
        result = self._run_once(engine, reissues_so_far=0)
        attempts = 0
        while (
            self.recovery is not None
            and not result.complete
            and attempts < self.recovery.max_query_reissues
        ):
            attempts += 1
            sim = engine.sim
            sim.trace.emit(
                sim.now,
                "request.reissued",
                scope="query",
                coverage=result.coverage,
                attempt=attempts,
            )
            sim.telemetry.registry.counter("recovery.query_reissues").inc()
            sim.run(until=sim.now + self.recovery.delay_for(attempts))
            retry = self._run_once(engine, reissues_so_far=result.reissues + 1)
            if retry.coverage >= result.coverage:
                result = retry
        return result

    def _aborted_result(
        self,
        engine: AggregationEngine,
        before: dict[CostCategory, int],
        started_at: float,
        reissues: int,
    ) -> NetFilterResult:
        """The honest answer when a phase lost its root and the retry
        budget (or the absence of a recovery policy) could not restore it:
        an empty result flagged ``complete=False`` with zero coverage —
        never a silently wrong frequent-item set."""
        network = engine.network
        after = network.accounting.bytes_by_category()
        population = network.n_peers
        delta = {
            category: after.get(category, 0) - before.get(category, 0)
            for category in sorted(set(before) | set(after))
        }
        breakdown = CostBreakdown(
            filtering=delta.get(CostCategory.FILTERING, 0) / population,
            dissemination=delta.get(CostCategory.DISSEMINATION, 0) / population,
            aggregation=delta.get(CostCategory.AGGREGATION, 0) / population,
            control=delta.get(CostCategory.CONTROL, 0) / population,
        )
        return NetFilterResult(
            frequent=LocalItemSet.empty(),
            candidates=LocalItemSet.empty(),
            heavy_groups=HeavyGroups(per_filter=()),
            threshold=0,
            grand_total=0,
            n_participants=0,
            breakdown=breakdown,
            avg_candidates_per_peer=0.0,
            config=self.config,
            elapsed_time=engine.sim.now - started_at,
            coverage=0.0,
            complete=False,
            reissues=reissues,
        )

    def _run_once(
        self, engine: AggregationEngine, reissues_so_far: int
    ) -> NetFilterResult:
        network = engine.network
        telemetry = engine.sim.telemetry
        accounting = network.accounting
        before = accounting.bytes_by_category()
        started_at = engine.sim.now

        phase_handles: list[SessionHandle] = []
        reissues = reissues_so_far

        with telemetry.span("netfilter.run") as run_span:
            # Step 0: grand total v and participant count N.
            with telemetry.span("totals.phase") as span:
                handle, spent = self._run_phase(engine, totals_spec())
                phase_handles.append(handle)
                reissues += spent
                if handle.failed:
                    return self._aborted_result(engine, before, started_at, reissues)
                grand_total, n_participants = handle.value
                threshold = self.config.resolve_threshold(int(grand_total))
                span["participants"] = int(n_participants)

            bank = FilterBank(
                self.config.num_filters, self.config.filter_size, self.config.hash_seed
            )

            # Phase 1: candidate filtering (Algorithm 1, lines 1-3).
            with telemetry.span(
                "filter.phase",
                num_filters=self.config.num_filters,
                filter_size=self.config.filter_size,
            ) as span:
                handle, spent = self._run_phase(engine, filtering_spec(bank))
                phase_handles.append(handle)
                reissues += spent
                if handle.failed:
                    return self._aborted_result(engine, before, started_at, reissues)
                heavy = HeavyGroups.from_aggregate(bank, handle.value, threshold)
                span["heavy_groups"] = heavy.total_count
                telemetry.registry.histogram(
                    "netfilter.heavy_groups", buckets=(0, 1, 4, 16, 64, 256, 1024)
                ).observe(heavy.total_count)
                telemetry.emit(
                    "filter.heavy_groups",
                    total=heavy.total_count,
                    per_filter=list(heavy.counts),
                    threshold=threshold,
                )

            # Phase 2: candidate verification (Algorithm 1, line 4;
            # Algorithm 2).
            with telemetry.span("verify.phase") as span:
                handle, spent = self._run_phase(
                    engine, verification_spec(bank), request_data=heavy
                )
                phase_handles.append(handle)
                reissues += spent
                if handle.failed:
                    return self._aborted_result(engine, before, started_at, reissues)
                candidates: LocalItemSet = handle.value
                frequent = candidates.filter_values(threshold)
                span["candidates"] = len(candidates)
                span["frequent"] = len(frequent)
            run_span["frequent"] = len(frequent)

        after = accounting.bytes_by_category()
        population = network.n_peers
        delta = {
            category: after.get(category, 0) - before.get(category, 0)
            for category in sorted(set(before) | set(after))
        }
        breakdown = CostBreakdown(
            filtering=delta.get(CostCategory.FILTERING, 0) / population,
            dissemination=delta.get(CostCategory.DISSEMINATION, 0) / population,
            aggregation=delta.get(CostCategory.AGGREGATION, 0) / population,
            control=delta.get(CostCategory.CONTROL, 0) / population,
        )
        pairs_sent = delta.get(CostCategory.AGGREGATION, 0) / network.size_model.pair_bytes
        coverage = min(handle.coverage for handle in phase_handles)
        complete = all(handle.complete for handle in phase_handles)
        return NetFilterResult(
            frequent=frequent,
            candidates=candidates,
            heavy_groups=heavy,
            threshold=threshold,
            grand_total=int(grand_total),
            n_participants=int(n_participants),
            breakdown=breakdown,
            avg_candidates_per_peer=pairs_sent / population,
            config=self.config,
            elapsed_time=engine.sim.now - started_at,
            coverage=coverage,
            complete=complete,
            reissues=reissues,
        )
