"""The paper's contribution: the netFilter protocol and its analysis.

* :mod:`repro.core.config` — protocol configuration (filter size ``g``,
  filter count ``f``, threshold ratio ``ρ``).
* :mod:`repro.core.filters` — hash-based item partitioning and the
  multi-filter bank (Section III-B).
* :mod:`repro.core.verification` — heavy-group bookkeeping and candidate
  set materialization (Section III-C, Algorithm 2).
* :mod:`repro.core.netfilter` — the two-phase protocol (Algorithm 1).
* :mod:`repro.core.naive` — the naive full-collection baseline
  (Section IV-B).
* :mod:`repro.core.oracle` — centralized ground truth for exactness tests.
* :mod:`repro.core.optimizer` — optimal ``g`` and ``f`` (Formulae 3-6).
* :mod:`repro.core.sampling` — in-network parameter estimation
  (Section IV-E, Formulae 7-8).
* :mod:`repro.core.cost_model` — the analytic cost model (Formulae 1-2, 5).
* :mod:`repro.core.requests` — concurrent-request sharing via the minimum
  threshold (Section III-A.1).
"""

from repro.core.approximate import (
    ApproximateConfig,
    ApproximateIFIProtocol,
    ApproximateResult,
)
from repro.core.config import NetFilterConfig
from repro.core.continuous import ContinuousNetFilter, EpochReport
from repro.core.cost_model import naive_cost_bounds, netfilter_cost
from repro.core.filters import FilterBank, HashFilter
from repro.core.gossip_netfilter import (
    GossipNetFilter,
    GossipNetFilterConfig,
    GossipNetFilterResult,
)
from repro.core.naive import NaiveProtocol, NaiveResult
from repro.core.netfilter import NetFilter, NetFilterResult
from repro.core.optimizer import (
    OptimalSettings,
    ParameterEstimates,
    derive_optimal_settings,
    expected_heterogeneous_false_positives,
    optimal_filter_count,
    optimal_filter_size,
)
from repro.core.oracle import oracle_frequent_items
from repro.core.requests import IfiRequest, MultiRequestCoordinator
from repro.core.sampling import ParameterEstimator, SamplingConfig
from repro.core.sketches import CountMinSketch
from repro.core.verification import HeavyGroups, materialize_candidates

__all__ = [
    "ApproximateConfig",
    "ApproximateIFIProtocol",
    "ApproximateResult",
    "ContinuousNetFilter",
    "CountMinSketch",
    "EpochReport",
    "FilterBank",
    "GossipNetFilter",
    "GossipNetFilterConfig",
    "GossipNetFilterResult",
    "HashFilter",
    "HeavyGroups",
    "IfiRequest",
    "MultiRequestCoordinator",
    "NaiveProtocol",
    "NaiveResult",
    "NetFilter",
    "NetFilterConfig",
    "NetFilterResult",
    "OptimalSettings",
    "ParameterEstimates",
    "ParameterEstimator",
    "SamplingConfig",
    "derive_optimal_settings",
    "expected_heterogeneous_false_positives",
    "materialize_candidates",
    "naive_cost_bounds",
    "netfilter_cost",
    "optimal_filter_count",
    "optimal_filter_size",
    "oracle_frequent_items",
]
