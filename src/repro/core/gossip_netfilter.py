"""netFilter over gossip aggregation — the paper's stated future work.

Section VI: "In the future, we plan to investigate a fault-tolerant gossip
aggregation that can obtain the precise aggregates from the network and
extend the solutions proposed in this study on gossip aggregation."  This
module is that extension, built from the same two-phase structure with no
hierarchy anywhere:

1. **Candidate filtering** — one push-sum gossip carries the grand total
   ``v`` and the ``f·g`` item-group values in a single vector (initiator-
   weighted, so the requester's ``x/w`` estimates the sums directly).
   Because gossip estimates carry residual error, groups are kept heavy
   if their estimate reaches ``t·(1 - margin)`` — the safety margin turns
   gossip's approximation into a *one-sided* error, preserving netFilter's
   no-false-negative property as long as the margin covers the estimation
   error (tests size it from the convergence theory: error shrinks
   exponentially in rounds).
2. **Dissemination** — the heavy-group lists are flooded over the overlay
   (every peer forwards once), costing ``s_g`` per identifier per edge.
3. **Candidate verification** — peers materialize partial candidate sets
   exactly as in Algorithm 2 and a *keyed* push-sum aggregates them; the
   requester reports candidates whose estimated global value reaches
   ``t·(1 - margin)``, with the estimates as values.

Compared to the hierarchical original: no tree to build or repair and no
root to lose — at the price of `O(rounds)` latency, much higher byte cost,
and approximate reported values.  The ``gossip netFilter vs hierarchical``
ablation quantifies all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.aggregation.gossip import GossipAggregation, GossipConfig
from repro.aggregation.gossip_keyed import KeyedGossipAggregation
from repro.core.filters import FilterBank
from repro.core.verification import HeavyGroups, materialize_candidates
from repro.errors import ConfigurationError
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.wire import CostCategory, SizeModel


@dataclass(frozen=True)
class GossipNetFilterConfig:
    """Configuration of the gossip-based variant.

    Attributes
    ----------
    filter_size, num_filters, threshold_ratio, hash_seed:
        As in :class:`~repro.core.config.NetFilterConfig`.
    rounds:
        Push-sum rounds per phase (error shrinks exponentially with this).
    safety_margin:
        Relative slack on every threshold comparison; must exceed the
        gossip estimation error for the no-false-negative property.
    """

    filter_size: int
    num_filters: int = 1
    threshold_ratio: float = 0.01
    rounds: int = 80
    safety_margin: float = 0.1
    hash_seed: int = 0

    def __post_init__(self) -> None:
        if self.filter_size <= 0 or self.num_filters <= 0:
            raise ConfigurationError("filter_size and num_filters must be positive")
        if not 0 < self.threshold_ratio <= 1:
            raise ConfigurationError("threshold_ratio must be in (0, 1]")
        if self.rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if not 0 <= self.safety_margin < 1:
            raise ConfigurationError("safety_margin must be in [0, 1)")


@dataclass(frozen=True)
class GossipNetFilterResult:
    """Outcome of one gossip netFilter run.

    ``reported`` values are push-sum *estimates* (the margin guarantees a
    superset of the exact answer when it covers the estimation error);
    compare :class:`~repro.core.netfilter.NetFilterResult`'s exactness.
    """

    reported: LocalItemSet
    threshold: int
    grand_total_estimate: float
    heavy_groups: HeavyGroups
    breakdown: CostBreakdown
    rounds: int
    #: Fraction of the total population live when the run started.  Gossip
    #: has no convergecast to count per-peer contributions, so this is a
    #: population-level annotation: peers that were down contributed
    #: nothing to any push-sum round.
    coverage: float = 1.0
    #: Whether every peer in the population was live for the run.
    complete: bool = True

    @property
    def total_cost(self) -> float:
        """Average per-peer bytes: gossip plus flooding."""
        return self.breakdown.gossip + self.breakdown.dissemination


@register_payload
@dataclass(frozen=True, eq=False)
class HeavyGroupFloodPayload(Payload):
    """Heavy-group lists being flooded over the overlay."""

    heavy: HeavyGroups
    category = CostCategory.DISSEMINATION

    def body_bytes(self, model: SizeModel) -> int:
        return self.heavy.wire_bytes(model)


class _Flood:
    """One-shot overlay flood: every peer forwards the payload once."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.received: dict[int, HeavyGroups] = {}
        for peer in network.live_peers():
            network.node(peer).register_handler(
                HeavyGroupFloodPayload, self._make_handler(peer)
            )

    def _make_handler(self, peer: int) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            payload = message.payload
            assert isinstance(payload, HeavyGroupFloodPayload)
            if peer in self.received:
                return  # duplicate — already forwarded
            self.received[peer] = payload.heavy
            node = self.network.node(peer)
            for neighbor in node.neighbors:
                if neighbor != message.sender:
                    node.send(neighbor, payload)

        return handle

    def start(self, origin: int, heavy: HeavyGroups, settle_time: float) -> None:
        self.received[origin] = heavy
        node = self.network.node(origin)
        payload = HeavyGroupFloodPayload(heavy=heavy)
        for neighbor in node.neighbors:
            node.send(neighbor, payload)
        self.network.sim.run(until=self.network.sim.now + settle_time)

    def teardown(self) -> None:
        for peer in self.network.live_peers():
            self.network.node(peer).unregister_handler(HeavyGroupFloodPayload)


class GossipNetFilter:
    """The hierarchy-free netFilter variant."""

    def __init__(self, config: GossipNetFilterConfig) -> None:
        self.config = config

    def run(self, network: Network, requester: int = 0) -> GossipNetFilterResult:
        """Run both phases by gossip, reporting at ``requester``."""
        accounting = network.accounting
        telemetry = network.sim.telemetry
        before = accounting.bytes_by_category()
        live_at_start = network.n_live_peers
        config = self.config
        bank = FilterBank(config.num_filters, config.filter_size, config.hash_seed)
        gossip_config = GossipConfig(rounds=config.rounds)

        # Phase 1: grand total + group aggregates in one vector.
        with telemetry.span(
            "gossip.filter.phase", rounds=config.rounds
        ) as span:
            length = 1 + bank.total_groups
            contributions = {
                peer: np.concatenate(
                    (
                        [float(network.node(peer).items.total_value)],
                        bank.local_group_aggregates(network.node(peer).items),
                    )
                )
                for peer in network.live_peers()
            }
            phase1 = GossipAggregation(
                network, contributions, length, gossip_config, initiator=requester
            )
            phase1.run()
            estimates = phase1.estimate_at(requester)
            grand_total = float(estimates[0])
            threshold = max(int(math.ceil(config.threshold_ratio * grand_total)), 1)
            relaxed = threshold * (1.0 - config.safety_margin)
            group_estimates = estimates[1:]
            heavy = HeavyGroups(
                per_filter=tuple(
                    np.flatnonzero(vector >= relaxed)
                    for vector in [
                        group_estimates[i * config.filter_size : (i + 1) * config.filter_size]
                        for i in range(config.num_filters)
                    ]
                )
            )
            span["heavy_groups"] = heavy.total_count

        # Dissemination: flood the heavy groups.
        with telemetry.span("gossip.flood.phase"):
            flood = _Flood(network)
            flood.start(
                requester, heavy, settle_time=4.0 * network.n_peers**0.5 + 50.0
            )
            flood.teardown()

        # Phase 2: keyed gossip over partial candidate sets (Algorithm 2's
        # materialization, unchanged).
        with telemetry.span("gossip.verify.phase") as span:
            keyed_contributions: dict[int, dict[int, float]] = {}
            for peer in network.live_peers():
                partial = materialize_candidates(network.node(peer).items, bank, heavy)
                keyed_contributions[peer] = {
                    int(item_id): float(value) for item_id, value in partial
                }
            phase2 = KeyedGossipAggregation(
                network, keyed_contributions, initiator=requester, config=gossip_config
            )
            phase2.run()
            candidate_estimates = phase2.estimate_at(requester)
            reported_pairs = {
                item_id: int(round(value))
                for item_id, value in candidate_estimates.items()
                if value >= relaxed
            }
            reported = LocalItemSet.from_pairs(reported_pairs)
            span["reported"] = len(reported_pairs)

        after = accounting.bytes_by_category()
        population = network.n_peers
        breakdown = CostBreakdown(
            gossip=(
                after.get(CostCategory.GOSSIP, 0) - before.get(CostCategory.GOSSIP, 0)
            )
            / population,
            dissemination=(
                after.get(CostCategory.DISSEMINATION, 0)
                - before.get(CostCategory.DISSEMINATION, 0)
            )
            / population,
        )
        return GossipNetFilterResult(
            reported=reported,
            threshold=threshold,
            grand_total_estimate=grand_total,
            heavy_groups=heavy,
            breakdown=breakdown,
            rounds=config.rounds,
            coverage=live_at_start / population if population else 1.0,
            complete=live_at_start == population,
        )
