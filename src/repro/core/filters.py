"""Hash-based item partitioning (Section III-B.1) and multi-filter
pruning (Section III-B.2).

Partitioning items into groups must not require global coordination — no
peer knows the full item universe — so the paper uses hashing: every peer
applies the same hash function(s) to its local items and accumulates local
values per group.

The hash family matters more than the paper lets on.  Item identifiers are
typically *structured* (consecutive integers, address blocks, ...), and a
plain ``(a·x + c) mod g`` maps structured ids onto a strided subset of the
groups whenever ``gcd(a, g) > 1``, concentrating mass in few groups and
wrecking the false-positive analysis.  We therefore hash ids through the
splitmix64 finalizer (a full-avalanche 64-bit mixer) salted per filter:
``h_i(x) = mix64(x XOR salt_i) mod g``.  This behaves like the uniform
random hashing Formula 4 assumes, for any id structure, and is fully
vectorizable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.items.itemset import LocalItemSet


def splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a bijective full-avalanche 64-bit mixer.

    Vectorized over a ``uint64`` array; wraparound arithmetic is the
    intended behaviour.
    """
    z = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        z ^= z >> np.uint64(30)
        z *= np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


class HashFilter:
    """One salted hash function mapping item ids to ``g`` item groups.

    Parameters
    ----------
    n_groups:
        ``g`` — the filter size.
    salt:
        64-bit per-filter salt; two filters with different salts behave as
        independent hash functions (Section III-B.2's requirement).
    """

    def __init__(self, n_groups: int, salt: int) -> None:
        if n_groups <= 0:
            raise ConfigurationError(f"n_groups must be positive, got {n_groups}")
        self.n_groups = n_groups
        self.salt = int(salt) & 0xFFFFFFFFFFFFFFFF

    def group_of(self, item_ids: np.ndarray) -> np.ndarray:
        """Vectorized ``h(x)`` — the group id of each item."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        mixed = splitmix64(item_ids.astype(np.uint64) ^ np.uint64(self.salt))
        return (mixed % np.uint64(self.n_groups)).astype(np.int64)

    def local_group_values(self, item_set: LocalItemSet) -> np.ndarray:
        """A peer's local aggregate per item group: each local item's value
        is added to the group the item hashes to (Section III-B.1)."""
        if len(item_set) == 0:
            return np.zeros(self.n_groups, dtype=np.int64)
        groups = self.group_of(item_set.ids)
        summed = np.bincount(
            groups, weights=item_set.values.astype(np.float64), minlength=self.n_groups
        )
        return summed.astype(np.int64)


class FilterBank:
    """``f`` independent hash filters of size ``g`` (Section III-B.2).

    The bank turns a peer's local item set into one flat ``f·g`` vector of
    local group values (the phase-1 contribution, costing ``s_a · f · g``
    bytes per peer on the wire) and, given the heavy groups, decides which
    local items remain candidates.

    Examples
    --------
    >>> bank = FilterBank(num_filters=2, filter_size=8, hash_seed=3)
    >>> items = LocalItemSet.from_pairs({10: 4, 11: 2})
    >>> bank.local_group_aggregates(items).shape
    (16,)
    >>> int(bank.local_group_aggregates(items).sum())  # mass is conserved per filter
    12
    """

    def __init__(self, num_filters: int, filter_size: int, hash_seed: int = 0) -> None:
        if num_filters <= 0:
            raise ConfigurationError(f"num_filters must be positive, got {num_filters}")
        self.num_filters = num_filters
        self.filter_size = filter_size
        self.hash_seed = hash_seed
        rng = np.random.default_rng(hash_seed)
        self.filters = [
            HashFilter(filter_size, salt=int(rng.integers(0, 1 << 63)))
            for _ in range(num_filters)
        ]

    @property
    def total_groups(self) -> int:
        """``f · g`` — the length of the phase-1 aggregate vector."""
        return self.num_filters * self.filter_size

    # ------------------------------------------------------------------
    # Phase 1: group aggregates
    # ------------------------------------------------------------------
    def local_group_aggregates(self, item_set: LocalItemSet) -> np.ndarray:
        """A peer's phase-1 contribution: the ``f`` per-filter group-value
        vectors, concatenated into one flat ``f·g`` vector."""
        return np.concatenate(
            [f.local_group_values(item_set) for f in self.filters]
        )

    def split_aggregate(self, flat: np.ndarray) -> list[np.ndarray]:
        """Split a flat ``f·g`` aggregate back into per-filter vectors."""
        flat = np.asarray(flat)
        if flat.shape != (self.total_groups,):
            raise ConfigurationError(
                f"aggregate vector must have shape ({self.total_groups},), "
                f"got {flat.shape}"
            )
        return [
            flat[i * self.filter_size : (i + 1) * self.filter_size]
            for i in range(self.num_filters)
        ]

    def heavy_groups_per_filter(
        self, flat_aggregate: np.ndarray, threshold: float
    ) -> list[np.ndarray]:
        """Per filter, the ids of the heavy item groups (aggregate ≥ t)."""
        return [
            np.flatnonzero(vector >= threshold)
            for vector in self.split_aggregate(flat_aggregate)
        ]

    # ------------------------------------------------------------------
    # Phase 2: candidate decision
    # ------------------------------------------------------------------
    def candidate_mask(
        self, item_ids: np.ndarray, heavy_groups: list[np.ndarray]
    ) -> np.ndarray:
        """Which of ``item_ids`` survive all ``f`` filters.

        An item is a candidate iff, for every filter, the group it hashes
        to is heavy (Section III-B.2: Item x survives, Item y is pruned).
        """
        if len(heavy_groups) != self.num_filters:
            raise ConfigurationError(
                f"expected {self.num_filters} heavy-group arrays, "
                f"got {len(heavy_groups)}"
            )
        item_ids = np.asarray(item_ids, dtype=np.int64)
        mask = np.ones(item_ids.shape, dtype=bool)
        for hash_filter, heavy in zip(self.filters, heavy_groups):
            if not mask.any():
                break
            groups = hash_filter.group_of(item_ids)
            heavy_lookup = np.zeros(hash_filter.n_groups, dtype=bool)
            heavy_lookup[np.asarray(heavy, dtype=np.int64)] = True
            mask &= heavy_lookup[groups]
        return mask
