"""Continuous IFI monitoring with delta filtering.

The paper evaluates one-shot queries, but every Table I application is a
standing monitoring task.  Rerunning plain netFilter each epoch repays the
full ``s_a·f·g`` filtering cost every time, even though most item groups
barely move between epochs.  :class:`ContinuousNetFilter` amortizes it:

* Each peer caches the ``f·g`` local group-value vector it last reported
  and, each epoch, ships only the **changed entries** as sparse
  ``(group index, delta)`` pairs — ``s_a + s_g`` bytes per changed group
  instead of ``s_a`` bytes per group, total.  Deltas are signed and sum
  along the tree like any keyed aggregate.
* The root folds the aggregated delta into its running group-total vector
  — which then equals exactly what a full phase 1 would have computed
  (the invariant the tests check), so candidate selection and the
  verification phase (Algorithm 2, unchanged) stay *exact*.

When the per-epoch change rate is low, delta filtering cuts the filtering
cost by the inactivity factor; on the first epoch (everything changed) it
costs up to 2× the dense vector — both effects are visible in the
``continuous monitoring`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aggregation.combiners import KeyedSumCombiner
from repro.aggregation.hierarchical import AggregationEngine
from repro.aggregation.spec import AggregateSpec
from repro.core.config import NetFilterConfig
from repro.core.filters import FilterBank
from repro.core.netfilter import NetFilterResult, totals_spec, verification_spec
from repro.core.verification import HeavyGroups
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel


@dataclass(frozen=True)
class EpochReport:
    """One epoch's outcome: the exact result plus delta statistics."""

    epoch: int
    result: NetFilterResult
    changed_groups: int
    dense_equivalent_bytes: float

    @property
    def filtering_savings(self) -> float:
        """Fraction of the dense phase-1 cost saved this epoch (negative
        on heavy-change epochs — sparse pairs cost 2× per entry)."""
        if self.dense_equivalent_bytes == 0:
            return 0.0
        return 1.0 - self.result.breakdown.filtering / self.dense_equivalent_bytes


class ContinuousNetFilter:
    """Epoch-driven netFilter with sparse delta filtering.

    Drive it externally::

        monitor = ContinuousNetFilter(config, engine)
        for _ in range(epochs):
            stream.apply_to(network)
            report = monitor.run_epoch()

    Parameters
    ----------
    config:
        Filter settings and threshold (resolved against each epoch's
        grand total, so the threshold tracks data growth).
    engine:
        The aggregation engine to run over.
    delta_filtering:
        Disable to rerun dense phase 1 every epoch (the ablation's
        baseline arm).
    """

    def __init__(
        self,
        config: NetFilterConfig,
        engine: AggregationEngine,
        delta_filtering: bool = True,
    ) -> None:
        self.config = config
        self.engine = engine
        self.delta_filtering = delta_filtering
        self.bank = FilterBank(
            config.num_filters, config.filter_size, config.hash_seed
        )
        self.epoch = 0
        self.reports: list[EpochReport] = []
        # Root-side running totals; peer-side caches of last-reported
        # local vectors.  In a real deployment each peer keeps its own
        # cache; the dict here is that per-peer storage.
        self._group_totals = np.zeros(self.bank.total_groups, dtype=np.int64)
        self._peer_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # The sparse delta spec
    # ------------------------------------------------------------------
    def _delta_spec(self) -> AggregateSpec:
        bank = self.bank
        cache = self._peer_cache

        def contribute(node: Node, _: Any) -> LocalItemSet:
            current = bank.local_group_aggregates(node.items)
            previous = cache.get(node.peer_id)
            if previous is None:
                previous = np.zeros(bank.total_groups, dtype=np.int64)
            delta = current - previous
            cache[node.peer_id] = current
            changed = np.flatnonzero(delta)
            return LocalItemSet(changed, delta[changed])

        class _GroupDeltaCombiner(KeyedSumCombiner):
            """Keyed sum whose keys are group indices: priced at
            ``s_a + s_g`` per entry (a group id, not an item id)."""

            def size_bytes(self, value: LocalItemSet, model: SizeModel) -> int:
                return (model.aggregate_bytes + model.group_id_bytes) * len(value)

        return AggregateSpec(
            name="netfilter.group_deltas",
            combiner=_GroupDeltaCombiner(),
            contribute=contribute,
            up_category=CostCategory.FILTERING,
        )

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------
    def run_epoch(self) -> EpochReport:
        """Run one monitoring epoch over the current peer data."""
        from repro.core.netfilter import filtering_spec

        engine = self.engine
        network = engine.network
        accounting = network.accounting
        model = network.size_model
        before = accounting.bytes_by_category()
        started_at = engine.sim.now

        grand_total, n_participants = engine.run(totals_spec())
        threshold = self.config.resolve_threshold(int(grand_total))

        if self.delta_filtering:
            delta: LocalItemSet = engine.run(self._delta_spec())
            dense = np.zeros(self.bank.total_groups, dtype=np.int64)
            if len(delta):
                dense[delta.ids] = delta.values
            self._group_totals = self._group_totals + dense
            changed_groups = len(delta)
        else:
            self._group_totals = np.asarray(
                engine.run(filtering_spec(self.bank)), dtype=np.int64
            )
            changed_groups = self.bank.total_groups
        heavy = HeavyGroups.from_aggregate(self.bank, self._group_totals, threshold)

        candidates: LocalItemSet = engine.run(
            verification_spec(self.bank), request_data=heavy
        )
        frequent = candidates.filter_values(threshold)

        after = accounting.bytes_by_category()
        population = network.n_peers
        diff = {
            category: after.get(category, 0) - before.get(category, 0)
            for category in sorted(set(before) | set(after))
        }
        breakdown = CostBreakdown(
            filtering=diff.get(CostCategory.FILTERING, 0) / population,
            dissemination=diff.get(CostCategory.DISSEMINATION, 0) / population,
            aggregation=diff.get(CostCategory.AGGREGATION, 0) / population,
            control=diff.get(CostCategory.CONTROL, 0) / population,
        )
        result = NetFilterResult(
            frequent=frequent,
            candidates=candidates,
            heavy_groups=heavy,
            threshold=threshold,
            grand_total=int(grand_total),
            n_participants=int(n_participants),
            breakdown=breakdown,
            avg_candidates_per_peer=(
                diff.get(CostCategory.AGGREGATION, 0) / model.pair_bytes / population
            ),
            config=self.config,
            elapsed_time=engine.sim.now - started_at,
        )
        dense_bytes = (
            model.aggregate_bytes
            * self.bank.total_groups
            * (population - 1)
            / population
        )
        report = EpochReport(
            epoch=self.epoch,
            result=result,
            changed_groups=changed_groups,
            dense_equivalent_bytes=dense_bytes,
        )
        self.epoch += 1
        self.reports.append(report)
        self._record_probes(report)
        return report

    def _record_probes(self, report: EpochReport) -> None:
        """Feed the windowed epoch timeseries, when one is enabled.

        Staleness (sim time from epoch start to the exact result),
        changed-group count, frequent-set size, and session coverage land
        as probes in the telemetry epoch grid, so continuous runs can plot
        recall/staleness over time from the ring buffer or the
        ``epoch.snapshot`` trace events.
        """
        epochs = self.engine.sim.telemetry.epochs
        if epochs is None:
            return
        result = report.result
        epochs.record("monitor.staleness", result.elapsed_time)
        epochs.record("monitor.changed_groups", float(report.changed_groups))
        epochs.record("monitor.frequent_items", float(len(result.frequent)))
        epochs.record("monitor.filtering_savings", report.filtering_savings)
