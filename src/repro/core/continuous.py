"""Continuous IFI monitoring with delta filtering and time decay.

The paper evaluates one-shot queries, but every Table I application is a
standing monitoring task.  Rerunning plain netFilter each epoch repays the
full ``s_a·f·g`` filtering cost every time, even though most item groups
barely move between epochs.  :class:`ContinuousNetFilter` amortizes it:

* Each peer keeps a **committed ledger** of what the root has already
  folded in (its raw group vector and item snapshot as of the last epoch
  it participated in) and, each epoch, ships only the arrivals since —
  sparse ``(group index, delta)`` pairs at ``s_a + s_g`` bytes per
  changed group.  Deltas sum along the tree like any keyed aggregate.
* The root folds the aggregated delta into its running group-total vector
  — which then equals exactly what a full phase 1 would have computed —
  so candidate selection and verification (Algorithm 2) stay *exact*.
* On **heavy-change epochs** the sparse pairs would cost more than the
  dense vector (the documented first-epoch 2× penalty), so the monitor
  predicts next epoch's mode from this epoch's changed-group count (an
  exact rider on the phase-1 aggregate) and falls back to a dense phase 1
  when sparse would lose — the first epoch is always dense.

Epochs are **two-phase committed**.  A phase-1 contribution only *stages*
a pending ledger entry; the caller commits the attempt after every phase
completed with full coverage, or abandons it (deadline missed, coverage
short, root lost), in which case nothing moved — neither the root totals
nor any peer cache — so a failed epoch can never poison the delta sum.
The :mod:`repro.service` layer drives exactly that loop with deadlines
and degraded-mode serving.

**Time decay** (:class:`~repro.core.decay.DecayConfig`) redefines the
monitored quantity as exponentially faded or sliding-window counts.
Decay is applied at the root per commit — peers still ship raw arrival
deltas, dated by the commit that first includes them — and the threshold
tracks the faded grand total (the filter-0 slice of the faded group
vector, since each filter partitions all items).  A **dense re-baseline**
(forced by the service after repeated abandons, or by the cost
crossover) re-anchors the root vector to the live participants' full
faded state; peers that were down across a re-baseline detect it from
the epoch request's committed/baseline anchor and **resync** — they
re-ship their entire faded contribution instead of a delta that the
root's vector no longer has a base for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.aggregation.combiners import (
    Combiner,
    KeyedSumCombiner,
    ScalarSumCombiner,
    TupleCombiner,
    VectorSumCombiner,
)
from repro.aggregation.hierarchical import AggregationEngine
from repro.aggregation.spec import AggregateSpec
from repro.core.config import NetFilterConfig
from repro.core.decay import DecayConfig
from repro.core.filters import FilterBank
from repro.core.netfilter import NetFilterResult, totals_spec, verification_spec
from repro.core.verification import HeavyGroups, materialize_candidates
from repro.errors import AggregationError, ConfigurationError
from repro.items.itemset import FadedItemSet, LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel

#: Phase-1 modes an epoch can run in.
SPARSE = "sparse"
DENSE = "dense"
LEGACY_DENSE = "legacy-dense"


def sparse_cheaper_than_dense(
    changed_total: int, participants: int, total_groups: int, model: SizeModel
) -> bool:
    """The cost-crossover predicate for next epoch's phase-1 mode.

    Sparse shipping costs at most ``(s_a + s_g)`` per changed group per
    peer (tree levels above the leaves merge overlapping change sets, so
    this is an upper bound); dense costs ``s_a · f·g`` on each of the
    ``participants - 1`` tree edges.  Predicting from the summed per-peer
    changed counts is exact on a star and conservative (dense-leaning) on
    deeper trees.
    """
    edges = max(participants - 1, 0)
    sparse = (model.aggregate_bytes + model.group_id_bytes) * changed_total
    dense = model.aggregate_bytes * total_groups * edges
    return sparse < dense


@dataclass(frozen=True)
class EpochAnchor:
    """What the phase-1 request carries down the tree (3 aggregate ints):
    the wall epoch being attempted, the root's last committed epoch, and
    its baseline (last dense re-anchor) epoch.  A peer whose ledger
    predates the baseline knows its cached base is gone from the root's
    vector and resyncs."""

    epoch: int
    committed_epoch: int
    baseline_epoch: int


@dataclass(frozen=True)
class EpochReport:
    """One committed epoch's outcome: the result plus delta statistics."""

    epoch: int
    result: NetFilterResult
    changed_groups: int
    dense_equivalent_bytes: float
    #: Phase-1 mode this epoch ran in (sparse / dense / legacy-dense).
    mode: str = SPARSE
    #: Exact sum of per-peer changed-group counts (the crossover rider).
    changed_total: int = 0
    #: The decayed grand total the threshold was resolved against
    #: (equals the raw grand total when no decay is configured).
    faded_total: float = 0.0
    #: Peers that resynced their ledger from the root's committed state.
    resyncs: int = 0

    @property
    def filtering_savings(self) -> float:
        """Fraction of the *current* dense phase-1 cost saved this epoch
        (negative on heavy-change sparse epochs — sparse pairs cost 2×
        per entry).  The baseline is what a dense recompute would cost
        over this epoch's participants — under churn or decay that is the
        honest comparison, not the undecayed full-population vector."""
        if self.dense_equivalent_bytes == 0:
            return 0.0
        return 1.0 - self.result.breakdown.filtering / self.dense_equivalent_bytes


@dataclass
class _PeerLedger:
    """One peer's durable committed state: what of its data the root's
    vector already contains, and (under decay) its own faded history.
    Survives crash + revival, exactly like ``node.items`` does."""

    base_epoch: int = -1
    groups: np.ndarray | None = None
    items: LocalItemSet = field(default_factory=LocalItemSet.empty)
    faded: FadedItemSet | None = None
    window: deque[tuple[int, LocalItemSet]] = field(default_factory=deque)


@dataclass
class _PendingContribution:
    """What one peer staged during a (not yet committed) epoch attempt."""

    groups: np.ndarray
    items: LocalItemSet
    fresh: LocalItemSet
    delta_set: LocalItemSet
    changed: int
    resynced: bool
    faded: FadedItemSet | None


@dataclass
class _FoldPreview:
    """The root-side fold of one attempt's phase-1 aggregate, computed
    without touching committed state (applied only on commit)."""

    group_totals: np.ndarray
    dense_delta: np.ndarray | None
    changed_groups: int
    changed_total: int
    faded_total: float
    threshold: float
    grand_total: float
    expired: int


class _GroupDeltaCombiner(KeyedSumCombiner):
    """Keyed sum whose keys are group indices: priced at ``s_a + s_g``
    per entry (a group id, not an item id)."""

    def size_bytes(self, value: LocalItemSet, model: SizeModel) -> int:
        return (model.aggregate_bytes + model.group_id_bytes) * len(value)


class _FadedDeltaCombiner(_GroupDeltaCombiner):
    """Group-delta sum in float space, for exponentially faded monitors.

    Fresh deltas are integers (exactly representable in float64, so tree
    order cannot change the sum); only resync contributions carry
    genuinely faded float values.
    """

    def identity(self) -> LocalItemSet:
        return FadedItemSet(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))

    def combine(self, left: LocalItemSet, right: LocalItemSet) -> LocalItemSet:
        return FadedItemSet.merge_faded([left, right])


def _integer_diff(current: LocalItemSet, base: LocalItemSet) -> LocalItemSet:
    """Per-item arrivals since ``base`` (values only ever grow)."""
    if len(base) == 0:
        return current
    merged = LocalItemSet.merge_many(
        [current, LocalItemSet(base.ids, -base.values)]
    )
    return merged.select(merged.values != 0)


def _faded_group_vector(bank: FilterBank, faded: FadedItemSet) -> np.ndarray:
    """The flat ``f·g`` group projection of a faded item set (float64)."""
    if len(faded) == 0:
        return np.zeros(bank.total_groups, dtype=np.float64)
    parts = []
    for filt in bank.filters:
        groups = filt.group_of(faded.ids)
        parts.append(np.bincount(groups, weights=faded.values, minlength=filt.n_groups))
    return np.concatenate(parts)


class EpochAttempt:
    """One attempt at one wall epoch: stage, preview, then commit or
    abandon.

    The attempt owns its pending dict, so a late request from an
    abandoned attempt can never leak staged state into a newer one — the
    closure of each attempt's specs captures *this* attempt.
    """

    def __init__(self, monitor: "ContinuousNetFilter", epoch: int, mode: str) -> None:
        if epoch <= monitor.committed_epoch:
            raise AggregationError(
                f"epoch {epoch} is not past the committed epoch "
                f"{monitor.committed_epoch}: committed epochs are monotone"
            )
        self.monitor = monitor
        self.epoch = epoch
        self.mode = mode
        self.closed = False
        self._pending: dict[int, _PendingContribution] = {}
        self._preview: _FoldPreview | None = None

    @property
    def anchor(self) -> EpochAnchor:
        return EpochAnchor(
            epoch=self.epoch,
            committed_epoch=self.monitor.committed_epoch,
            baseline_epoch=self.monitor.baseline_epoch,
        )

    @property
    def dense(self) -> bool:
        return self.mode != SPARSE

    # ------------------------------------------------------------------
    # Peer-side staging
    # ------------------------------------------------------------------
    def _stage(self, node: Node) -> _PendingContribution:
        pend = self._pending.get(node.peer_id)
        if pend is not None:
            return pend
        monitor = self.monitor
        bank = monitor.bank
        ledger = monitor._ledger.get(node.peer_id)
        current_groups = bank.local_group_aggregates(node.items)
        resynced = (
            ledger is not None
            and ledger.base_epoch >= 0
            and ledger.base_epoch < monitor.baseline_epoch
        )
        if ledger is None or resynced:
            # Nothing of this peer's history is in the root's committed
            # vector: a first-time participant, or a peer that was down
            # across a dense re-baseline.  Its full state is the delta.
            prev_groups: np.ndarray | None = None
        else:
            prev_groups = ledger.groups
        # ``fresh`` is always relative to the peer's own ledger base: a
        # resync re-ships the *whole* contribution on the wire, but the
        # faded recurrence must not re-date already-counted arrivals.
        prev_items = LocalItemSet.empty() if ledger is None else ledger.items
        delta = (
            current_groups.copy() if prev_groups is None else current_groups - prev_groups
        )
        fresh = _integer_diff(node.items, prev_items)
        faded: FadedItemSet | None = None
        decay = monitor.decay
        if decay is not None and decay.exponential:
            if ledger is not None and ledger.faded is not None and ledger.base_epoch >= 0:
                mult = decay.multiplier(self.epoch - ledger.base_epoch)
                faded = ledger.faded.scaled(mult).merge(fresh)
            else:
                faded = FadedItemSet.from_integer(fresh)
            if resynced:
                # The delta re-ships the whole faded contribution — the
                # only place float values enter the up-sweep.
                vector = _faded_group_vector(bank, faded)
                changed_idx = np.flatnonzero(vector)
                delta_set: LocalItemSet = FadedItemSet(changed_idx, vector[changed_idx])
            else:
                changed_idx = np.flatnonzero(delta)
                delta_set = FadedItemSet(
                    changed_idx, delta[changed_idx].astype(np.float64)
                )
        else:
            changed_idx = np.flatnonzero(delta)
            delta_set = LocalItemSet(changed_idx, delta[changed_idx])
        if resynced:
            sim = node.network.sim
            sim.telemetry.registry.counter("monitor.resyncs").inc()
            sim.trace.emit(
                sim.now,
                "monitor.resync",
                peer=node.peer_id,
                base_epoch=-1 if ledger is None else ledger.base_epoch,
                baseline_epoch=monitor.baseline_epoch,
                epoch=self.epoch,
            )
        pend = _PendingContribution(
            groups=current_groups,
            items=node.items,
            fresh=fresh,
            delta_set=delta_set,
            changed=len(delta_set),
            resynced=resynced,
            faded=faded,
        )
        self._pending[node.peer_id] = pend
        return pend

    def _window_view(self, peer_id: int, pend: _PendingContribution) -> LocalItemSet:
        """A peer's in-window items: committed window entries that have
        not aged out, plus this attempt's fresh arrivals (dated now)."""
        decay = self.monitor.decay
        assert decay is not None and decay.windowed
        horizon = self.epoch - decay.window
        ledger = self.monitor._ledger.get(peer_id)
        parts = (
            [items for (ep, items) in ledger.window if ep > horizon] if ledger else []
        )
        parts.append(pend.fresh)
        return LocalItemSet.merge_many(parts)

    def _dense_vector(self, node: Node, pend: _PendingContribution) -> np.ndarray:
        decay = self.monitor.decay
        bank = self.monitor.bank
        if decay is None:
            return pend.groups
        if decay.exponential:
            assert pend.faded is not None
            return _faded_group_vector(bank, pend.faded)
        return bank.local_group_aggregates(self._window_view(node.peer_id, pend))

    def _view_items(self, node: Node) -> LocalItemSet:
        """The item set verification should materialize candidates from —
        the same state this attempt's phase 1 represented."""
        decay = self.monitor.decay
        pend = self._stage(node)
        if decay is None:
            return pend.items
        if decay.exponential:
            assert pend.faded is not None
            return pend.faded
        return self._window_view(node.peer_id, pend)

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    def phase1_spec(self) -> AggregateSpec:
        """This attempt's phase-1 aggregation: (delta-or-vector, changed
        count) pairs, with the epoch anchor riding down in the request."""
        monitor = self.monitor
        if self.mode == LEGACY_DENSE:
            from repro.core.netfilter import filtering_spec

            return filtering_spec(monitor.bank)
        attempt = self
        dense = self.dense
        decay = monitor.decay
        part: Combiner[Any]
        if dense:
            part = VectorSumCombiner(monitor.bank.total_groups)
        elif decay is not None and decay.exponential:
            part = _FadedDeltaCombiner()
        else:
            part = _GroupDeltaCombiner()

        def contribute(node: Node, _: Any) -> tuple[Any, int]:
            pend = attempt._stage(node)
            if dense:
                return attempt._dense_vector(node, pend), pend.changed
            return pend.delta_set, pend.changed

        def request_bytes(request_data: Any, model: SizeModel) -> int:
            # The (epoch, committed, baseline) anchor: 3 aggregate ints.
            return 3 * model.aggregate_bytes

        return AggregateSpec(
            name="netfilter.group_deltas",
            combiner=TupleCombiner(part, ScalarSumCombiner()),
            contribute=contribute,
            up_category=CostCategory.FILTERING,
            request_bytes=request_bytes,
        )

    def verification_spec(self) -> AggregateSpec:
        """Phase 2 over this attempt's staged views (faded / windowed /
        raw), so verification prices candidates in the same decayed space
        phase 1 selected them in."""
        monitor = self.monitor
        if self.mode == LEGACY_DENSE:
            return verification_spec(monitor.bank)
        attempt = self
        bank = monitor.bank

        def contribute(node: Node, heavy: HeavyGroups) -> LocalItemSet:
            partial = materialize_candidates(attempt._view_items(node), bank, heavy)
            sim = node.network.sim
            sim.telemetry.registry.histogram(
                "netfilter.candidates_per_peer", buckets=(0, 1, 4, 16, 64, 256, 1024)
            ).observe(len(partial))
            sim.trace.emit(
                sim.now,
                "verify.materialized",
                peer=node.peer_id,
                candidates=len(partial),
            )
            return partial

        def request_bytes(heavy: HeavyGroups, model: SizeModel) -> int:
            return heavy.wire_bytes(model)

        return AggregateSpec(
            name="netfilter.candidates",
            combiner=KeyedSumCombiner(),
            contribute=contribute,
            up_category=CostCategory.AGGREGATION,
            down_category=CostCategory.DISSEMINATION,
            request_bytes=request_bytes,
        )

    # ------------------------------------------------------------------
    # Root-side fold
    # ------------------------------------------------------------------
    def fold(self, aggregate: Any, grand_total: float | None = None) -> _FoldPreview:
        """Fold the phase-1 aggregate against committed state, without
        committing — the preview feeds heavy-group selection, and is
        applied to the monitor only by :meth:`commit`."""
        monitor = self.monitor
        bank = monitor.bank
        decay = monitor.decay
        epoch = self.epoch
        expired = 0
        if self.mode == LEGACY_DENSE:
            group_totals = np.asarray(aggregate, dtype=np.int64)
            dense_delta = None
            changed_groups = bank.total_groups
            changed_total = 0
        elif self.dense:
            vector, changed_total = aggregate
            dtype = np.float64 if decay is not None and decay.exponential else np.int64
            group_totals = np.asarray(vector, dtype=dtype)
            dense_delta = group_totals.copy()
            changed_groups = bank.total_groups
            changed_total = int(changed_total)
        else:
            delta_set, changed_total = aggregate
            changed_total = int(changed_total)
            changed_groups = len(delta_set)
            dense_delta = np.zeros_like(monitor._group_totals)
            if len(delta_set):
                dense_delta[delta_set.ids] = delta_set.values
            if decay is not None and decay.exponential:
                mult = (
                    decay.multiplier(epoch - monitor.committed_epoch)
                    if monitor.committed_epoch >= 0
                    else 1.0
                )
                group_totals = monitor._group_totals * mult + dense_delta
            elif decay is not None and decay.windowed:
                group_totals = monitor._group_totals + dense_delta
                horizon = epoch - decay.window
                for commit_epoch, vec in monitor._window_history:
                    if commit_epoch <= horizon:
                        group_totals = group_totals - vec
                        expired += 1
            else:
                group_totals = monitor._group_totals + dense_delta
        # Filter 0 partitions all items, so its slice sums every item's
        # (faded) mass exactly once — the (faded) grand total.
        faded_total = float(group_totals[: bank.filter_size].sum())
        if decay is None:
            if grand_total is None:
                raise AggregationError(
                    "an undecayed monitor resolves its threshold from the "
                    "totals phase; pass grand_total to fold()"
                )
            threshold: float = monitor.config.resolve_threshold(int(grand_total))
        else:
            grand_total = faded_total
            if monitor.config.threshold is not None:
                threshold = monitor.config.threshold
            elif decay.windowed:
                threshold = monitor.config.resolve_threshold(int(faded_total))
            else:
                assert monitor.config.threshold_ratio is not None
                threshold = max(monitor.config.threshold_ratio * faded_total, 1.0)
        preview = _FoldPreview(
            group_totals=group_totals,
            dense_delta=dense_delta,
            changed_groups=changed_groups,
            changed_total=changed_total,
            faded_total=faded_total,
            threshold=threshold,
            grand_total=float(grand_total),
            expired=expired,
        )
        self._preview = preview
        return preview

    # ------------------------------------------------------------------
    # Commit / abandon
    # ------------------------------------------------------------------
    def commit(
        self, result: NetFilterResult, participants: Sequence[int]
    ) -> EpochReport:
        """Apply the previewed fold and promote every staged ledger entry.

        Only call this when every phase completed with full coverage over
        an unchanged live set — commit assumes each staged contribution
        was actually folded into the aggregate.
        """
        if self.closed:
            raise AggregationError("this epoch attempt is already closed")
        preview = self._preview
        if preview is None:
            raise AggregationError("commit before fold(): run phase 1 first")
        monitor = self.monitor
        decay = monitor.decay
        epoch = self.epoch
        monitor._group_totals = preview.group_totals
        if decay is not None and decay.windowed:
            history = monitor._window_history
            if self.dense:
                history.clear()
            horizon = epoch - decay.window
            while history and history[0][0] <= horizon:
                history.popleft()
            if preview.dense_delta is not None:
                history.append((epoch, preview.dense_delta))
        resyncs = 0
        if self.mode != LEGACY_DENSE:
            for peer_id in sorted(self._pending):
                pend = self._pending[peer_id]
                resyncs += int(pend.resynced)
                previous = monitor._ledger.get(peer_id)
                window: deque[tuple[int, LocalItemSet]] = deque()
                if decay is not None and decay.windowed:
                    horizon = epoch - decay.window
                    if previous is not None and not pend.resynced:
                        window.extend(
                            entry for entry in previous.window if entry[0] > horizon
                        )
                    if len(pend.fresh):
                        window.append((epoch, pend.fresh))
                monitor._ledger[peer_id] = _PeerLedger(
                    base_epoch=epoch,
                    groups=pend.groups,
                    items=pend.items,
                    faded=pend.faded,
                    window=window,
                )
        monitor.committed_epoch = epoch
        monitor.commit_count += 1
        monitor.epoch = max(monitor.epoch, epoch + 1)
        if self.dense and self.mode != LEGACY_DENSE:
            monitor.baseline_epoch = epoch
        if self.mode != LEGACY_DENSE:
            allow_dense = decay is None or decay.exponential
            monitor._dense_next = allow_dense and not sparse_cheaper_than_dense(
                preview.changed_total,
                result.n_participants,
                monitor.bank.total_groups,
                monitor.engine.network.size_model,
            )
        model = monitor.engine.network.size_model
        population = monitor.engine.network.n_peers
        dense_equivalent = (
            model.aggregate_bytes
            * monitor.bank.total_groups
            * max(result.n_participants - 1, 0)
            / population
        )
        report = EpochReport(
            epoch=epoch,
            result=result,
            changed_groups=preview.changed_groups,
            dense_equivalent_bytes=dense_equivalent,
            mode=self.mode,
            changed_total=preview.changed_total,
            faded_total=preview.faded_total,
            resyncs=resyncs,
        )
        monitor.reports.append(report)
        monitor._record_probes(report)
        self.closed = True
        participants_tuple = tuple(int(p) for p in participants)
        for listener in monitor._commit_listeners:
            listener(report, participants_tuple)
        return report

    def abandon(self) -> None:
        """Discard the attempt: no committed state moved, no peer ledger
        advanced — the next attempt computes deltas against the same
        committed base."""
        self.closed = True
        self._pending.clear()
        self._preview = None


class ContinuousNetFilter:
    """Epoch-driven netFilter with committed delta filtering and decay.

    Drive it synchronously (each call is one wall epoch that always
    commits)::

        monitor = ContinuousNetFilter(config, engine)
        for _ in range(epochs):
            stream.apply_to(network)
            report = monitor.run_epoch()

    or supervise it as a standing service with deadlines and degraded
    answers via :class:`repro.service.MonitorService`, which drives the
    :meth:`begin_attempt` / commit-or-abandon cycle explicitly.

    Parameters
    ----------
    config:
        Filter settings and threshold (resolved against each epoch's
        (faded) grand total, so the threshold tracks the data).
    engine:
        The aggregation engine to run over.
    delta_filtering:
        Disable to rerun dense phase 1 every epoch (the ablation's
        baseline arm, byte-identical to one-shot netFilter's phase 1).
    decay:
        Optional time-decay semantics (exponential fading or sliding
        window).  Requires ``delta_filtering``.
    """

    def __init__(
        self,
        config: NetFilterConfig,
        engine: AggregationEngine,
        delta_filtering: bool = True,
        decay: DecayConfig | None = None,
    ) -> None:
        if decay is not None and not delta_filtering:
            raise ConfigurationError(
                "time decay rides on the committed peer ledgers of delta "
                "filtering; delta_filtering=False cannot decay"
            )
        self.config = config
        self.engine = engine
        self.delta_filtering = delta_filtering
        self.decay = decay
        self.bank = FilterBank(
            config.num_filters, config.filter_size, config.hash_seed
        )
        #: Next wall epoch (what run_epoch will attempt).
        self.epoch = 0
        #: Wall epoch of the last committed attempt (-1: nothing yet).
        self.committed_epoch = -1
        #: Wall epoch of the last dense re-anchor (resync watermark).
        self.baseline_epoch = 0
        self.commit_count = 0
        self.reports: list[EpochReport] = []
        dtype = np.float64 if decay is not None and decay.exponential else np.int64
        # Root-side running totals; the per-peer committed ledgers play
        # the role of each peer's own durable cache in a real deployment.
        self._group_totals = np.zeros(self.bank.total_groups, dtype=dtype)
        self._window_history: deque[tuple[int, np.ndarray]] = deque()
        self._ledger: dict[int, _PeerLedger] = {}
        self._dense_next = True
        self._commit_listeners: list[
            Callable[[EpochReport, tuple[int, ...]], None]
        ] = []

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------
    def on_commit(
        self, listener: Callable[[EpochReport, tuple[int, ...]], None]
    ) -> None:
        """Subscribe to commits: ``listener(report, participants)`` runs
        after each successful epoch commit (oracle trackers use this)."""
        self._commit_listeners.append(listener)

    def choose_mode(self, force_dense: bool = False) -> str:
        """Phase-1 mode for the next attempt: dense on the first epoch
        (everything changed), then whatever last commit's cost-crossover
        predicted; ``force_dense`` escalates to a dense re-baseline
        (window mode has no re-anchor semantics and stays sparse after
        its first commit)."""
        if not self.delta_filtering:
            return LEGACY_DENSE
        if self.commit_count == 0:
            return DENSE
        if self.decay is not None and self.decay.windowed:
            return SPARSE
        if force_dense or self._dense_next:
            return DENSE
        return SPARSE

    def begin_attempt(
        self, epoch: int | None = None, force_dense: bool = False
    ) -> EpochAttempt:
        """Open an attempt at wall epoch ``epoch`` (default: the next).

        Nothing commits until :meth:`EpochAttempt.commit`; an abandoned
        attempt leaves all committed state untouched.
        """
        if epoch is None:
            epoch = self.epoch
        return EpochAttempt(self, epoch, self.choose_mode(force_dense))

    # ------------------------------------------------------------------
    # Synchronous driver (one call = one committed wall epoch)
    # ------------------------------------------------------------------
    def run_epoch(self) -> EpochReport:
        """Run one monitoring epoch over the current peer data."""
        engine = self.engine
        network = engine.network
        accounting = network.accounting
        model = network.size_model
        before = accounting.bytes_by_category()
        started_at = engine.sim.now
        attempt = self.begin_attempt()

        handles = []
        grand_total: float | None = None
        n_participants = 0
        if self.decay is None:
            totals_handle = engine.run_session(totals_spec())
            handles.append(totals_handle)
            grand_total, n_participants = totals_handle.value
        anchor = None if attempt.mode == LEGACY_DENSE else attempt.anchor
        phase1 = engine.run_session(attempt.phase1_spec(), request_data=anchor)
        handles.append(phase1)
        preview = attempt.fold(phase1.value, grand_total=grand_total)
        if self.decay is not None:
            n_participants = phase1.covered
        heavy = HeavyGroups.from_aggregate(
            self.bank, preview.group_totals, preview.threshold
        )
        verify = engine.run_session(attempt.verification_spec(), request_data=heavy)
        handles.append(verify)
        candidates: LocalItemSet = verify.value
        frequent = candidates.filter_values(preview.threshold)

        after = accounting.bytes_by_category()
        population = network.n_peers
        diff = {
            category: after.get(category, 0) - before.get(category, 0)
            for category in sorted(set(before) | set(after))
        }
        breakdown = CostBreakdown(
            filtering=diff.get(CostCategory.FILTERING, 0) / population,
            dissemination=diff.get(CostCategory.DISSEMINATION, 0) / population,
            aggregation=diff.get(CostCategory.AGGREGATION, 0) / population,
            control=diff.get(CostCategory.CONTROL, 0) / population,
        )
        result = NetFilterResult(
            frequent=frequent,
            candidates=candidates,
            heavy_groups=heavy,
            threshold=preview.threshold,
            grand_total=int(preview.grand_total),
            n_participants=int(n_participants),
            breakdown=breakdown,
            avg_candidates_per_peer=(
                diff.get(CostCategory.AGGREGATION, 0) / model.pair_bytes / population
            ),
            config=self.config,
            elapsed_time=engine.sim.now - started_at,
            coverage=min(handle.coverage for handle in handles),
            complete=all(handle.complete for handle in handles),
        )
        report = attempt.commit(result, tuple(network.live_peers()))
        self.epoch = max(self.epoch, attempt.epoch + 1)
        return report

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def _record_probes(self, report: EpochReport) -> None:
        """Feed the windowed epoch timeseries, when one is enabled.

        Staleness (sim time from epoch start to the exact result),
        changed-group count, frequent-set size, and filtering savings land
        as probes in the telemetry epoch grid, so continuous runs can plot
        recall/staleness over time from the ring buffer or the
        ``epoch.snapshot`` trace events.
        """
        epochs = self.engine.sim.telemetry.epochs
        if epochs is None:
            return
        result = report.result
        epochs.record("monitor.staleness", result.elapsed_time)
        epochs.record("monitor.changed_groups", float(report.changed_groups))
        epochs.record("monitor.frequent_items", float(len(result.frequent)))
        epochs.record("monitor.filtering_savings", report.filtering_savings)
        epochs.record("monitor.faded_total", report.faded_total)
