"""Requester-side recovery policy: re-issue on insufficient coverage.

The hardened aggregation layer *detects* incomplete sessions (coverage
accounting in :mod:`repro.aggregation.hierarchical`); this module holds
the requester's *response* to that signal.  A protocol run configured with
a :class:`RecoveryPolicy` re-issues an aggregation phase — and, if phases
keep coming back short, the whole query — up to bounded retry budgets,
waiting a settle delay between attempts so transient failures (a crashed
peer reviving, a partition healing) can clear.  The delay backs off
exponentially with a cap, in the same deterministic style as the
transport's retransmit schedule: early retries are cheap when the cause
was a blip, later retries wait long enough for repair to land.

This is what restores the paper's no-false-negative guarantee whenever
the network stabilises: a phase that finally covers every live peer is
exact, so the query built from fully-covered phases is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Retry budgets for coverage-driven re-issue.

    Attributes
    ----------
    min_coverage:
        A phase whose coverage (peers covered / live peers at session
        start) falls below this fraction is considered failed and
        re-issued.  ``1.0`` demands exactness — any missing peer triggers
        a retry.
    max_phase_reissues:
        How many times a single phase may be re-issued before the run
        accepts the best coverage it achieved.
    max_query_reissues:
        How many times the *whole query* may be re-run when a phase stays
        below ``min_coverage`` after its per-phase budget.  Re-running the
        query (rather than just the failed phase) matters because early
        phases feed later ones: a grand total measured over 4/5 peers
        yields the wrong threshold even if later phases recover.
    reissue_delay:
        Simulated time to wait before the *first* re-issue, giving
        revivals and hierarchy repair a chance to land.
    backoff_factor:
        Multiplier applied to the delay on every further attempt
        (attempt ``k`` waits ``reissue_delay * backoff_factor**(k-1)``,
        matching the transport's retransmit style).  ``1.0`` restores the
        fixed settle delay.
    reissue_delay_cap:
        Ceiling on any single backed-off delay.
    """

    min_coverage: float = 1.0
    max_phase_reissues: int = 2
    max_query_reissues: int = 1
    reissue_delay: float = 50.0
    backoff_factor: float = 2.0
    reissue_delay_cap: float = 400.0

    def __post_init__(self) -> None:
        if not (0.0 < self.min_coverage <= 1.0):
            raise ConfigurationError("min_coverage must be in (0, 1]")
        if self.max_phase_reissues < 0:
            raise ConfigurationError("max_phase_reissues must be non-negative")
        if self.max_query_reissues < 0:
            raise ConfigurationError("max_query_reissues must be non-negative")
        if self.reissue_delay < 0:
            raise ConfigurationError("reissue_delay must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1.0")
        if self.reissue_delay_cap < self.reissue_delay:
            raise ConfigurationError("reissue_delay_cap must be >= reissue_delay")

    def delay_for(self, attempt: int) -> float:
        """Settle delay before re-issue number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.reissue_delay_cap,
            self.reissue_delay * self.backoff_factor ** (attempt - 1),
        )
