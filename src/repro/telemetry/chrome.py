"""Chrome trace-event (Perfetto-loadable) export of causal spans.

Converts a reconstructed span tree (:func:`repro.telemetry.critical_path.
collect_spans`) into the Trace Event Format consumed by ``chrome://
tracing`` and https://ui.perfetto.dev: one *complete* (``ph="X"``) event
per closed span, laid out with one track (``tid``) per peer, plus *flow*
arrows (``ph="s"``/``ph="f"``) for every recorded ``cause`` edge — so
the convergecast's "last reply in" chain is visible as arrows across
peer tracks.

Simulated time has no epoch, so one simulated time unit is mapped to one
microsecond (the format's native unit); absolute positions are
meaningful only relative to each other, which is all a single-run view
needs.  Spans never closed (a killed run) are exported with zero
duration and an ``unfinished`` flag rather than dropped, so they remain
findable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.critical_path import SpanNode

#: One simulated time unit maps to this many Trace-Event microseconds.
TIME_SCALE = 1_000_000.0

#: The single process id used for all tracks (there is one simulation).
PID = 1

#: Track for spans with no owning peer (sessions, run/phase spans).
CONTROL_TID = 0


def chrome_trace_events(spans: dict[int, SpanNode]) -> list[dict[str, Any]]:
    """The Trace-Event list for a span tree (deterministic order)."""
    events: list[dict[str, Any]] = []
    for sid in sorted(spans):
        node = spans[sid]
        tid = CONTROL_TID if node.peer is None else int(node.peer) + 1
        start_us = node.start * TIME_SCALE
        args: dict[str, Any] = {"span": node.sid, "status": node.status}
        args.update(node.fields)
        args.update(node.close_fields)
        if not node.closed:
            args["unfinished"] = True
        events.append(
            {
                "name": node.label(),
                "cat": node.kind,
                "ph": "X",
                "ts": start_us,
                "dur": node.duration * TIME_SCALE,
                "pid": PID,
                "tid": tid,
                "args": args,
            }
        )
        cause = spans.get(node.cause)
        if cause is not None and cause.closed and node.closed:
            # A flow arrow from the cause's close to this span's close:
            # "this input's completion is what completed me".
            flow_id = node.sid
            cause_tid = CONTROL_TID if cause.peer is None else int(cause.peer) + 1
            assert cause.end is not None and node.end is not None
            events.append(
                {
                    "name": "cause",
                    "cat": "cause",
                    "ph": "s",
                    "id": flow_id,
                    "ts": cause.end * TIME_SCALE,
                    "pid": PID,
                    "tid": cause_tid,
                }
            )
            events.append(
                {
                    "name": "cause",
                    "cat": "cause",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": node.end * TIME_SCALE,
                    "pid": PID,
                    "tid": tid,
                }
            )
    return events


def thread_names(spans: dict[int, SpanNode]) -> list[dict[str, Any]]:
    """Metadata events labelling each track with its peer id."""
    tids = {CONTROL_TID}
    for node in spans.values():
        if node.peer is not None:
            tids.add(int(node.peer) + 1)
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "args": {
                "name": "control" if tid == CONTROL_TID else f"peer {tid - 1}"
            },
        }
        for tid in sorted(tids)
    ]


def export_chrome(spans: dict[int, SpanNode], path: str) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    events = thread_names(spans) + chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            handle,
            separators=(",", ":"),
        )
    return len(events)
