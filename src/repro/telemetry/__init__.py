"""Protocol-wide telemetry: tracing, metrics, JSONL export, run reports.

This package unifies the repo's three observability primitives — the
structured :class:`~repro.sim.trace.Tracer`, the
:class:`~repro.metrics.registry.MetricsRegistry` of counters/gauges/
timers/histograms, and the byte-level
:class:`~repro.metrics.accounting.CostAccounting` — behind one
:class:`~repro.telemetry.core.Telemetry` object hung off every
:class:`~repro.sim.engine.Simulation` (``sim.telemetry``).

Typical use::

    sim = Simulation(seed=0)
    sink = sim.telemetry.attach_jsonl("run.jsonl")   # stream events to disk
    ...  # build network, run netFilter — everything is instrumented
    sim.telemetry.close()                            # flush the trace

    $ python -m repro.telemetry report run.jsonl     # per-phase time,
                                                     # bytes by category,
                                                     # latency histogram,
                                                     # heaviest peers

With no sink attached the instrumentation costs one counter increment per
event, so it stays on in benchmarks and large sweeps.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.sink import JsonlTraceSink, iter_trace, read_trace
from repro.telemetry.spans import NO_SPAN, SpanTracker

__all__ = [
    "JsonlTraceSink",
    "NO_SPAN",
    "SpanTracker",
    "Telemetry",
    "iter_trace",
    "read_trace",
]
