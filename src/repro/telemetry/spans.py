"""Causal span tracking for protocol sessions.

A *span* brackets one causally meaningful unit of work in simulated time:
an IFI query session, one aggregation phase, one node's convergecast
participation, one message on the wire.  Spans form a tree — every span
records the span that was *current* when it was opened — and the tree is
what turns "the query took 14 rounds" into "because the subtree under
peer 42 was the last to reply at every level".

Span context propagates through the places causality actually flows:

* :meth:`Telemetry.span <repro.telemetry.core.Telemetry.span>` opens a
  span for the ``with`` block and makes it current, so nested protocol
  phases nest in the tree;
* the transport opens a span per wire message under the sender's current
  span, carries the span id in the :class:`~repro.net.message.Message`
  envelope, and makes it current while the recipient's handler runs — so
  work triggered by a delivery hangs off that message;
* the aggregation engine opens a session span per
  :class:`~repro.aggregation.hierarchical.SessionHandle` and a per-node
  convergecast span (stamped with the node's hierarchy depth) per
  participant, and records on close which input span *completed* each of
  them (``cause``) — the backbone the critical-path walk follows.

Spans are emitted as plain trace events (``span.open`` / ``span.close``)
so the existing JSONL sink, sampling summary, and same-seed replay gate
all apply unchanged; the tree is rebuilt offline by
:mod:`repro.telemetry.critical_path`.

Cost discipline (docs/PERFORMANCE.md): span tracking is opt-in
(:meth:`~repro.telemetry.core.Telemetry.enable_spans`) *and* gated on the
tracer's compiled :attr:`~repro.sim.trace.Tracer.active` predicate.  With
either gate closed, :meth:`SpanTracker.open` returns the null span id
``0`` without allocating, and every other entry point is a no-op on id
``0`` — hot call sites hoist ``spans.enabled and trace.active`` into one
local, exactly like the existing emit guards.

Determinism: span ids come from a per-simulation counter advanced only
when a span is actually opened, timestamps are simulated time, and
closes happen at deterministic protocol points (including the crash
sweep, which runs inside the deterministic failure path) — so span
records replay bit-for-bit with the rest of the trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulation
    from repro.sim.trace import Tracer

#: The null span id: "no span".  Opens return it when tracking is off;
#: every SpanTracker entry point treats it as a no-op.
NO_SPAN = 0

#: Close statuses with defined meaning.  ``ok`` is a normal close;
#: ``error`` closes carry a ``reason`` field (``peer_crashed``,
#: ``dead_recipient``, ``root_lost``, ...); ``lost`` / ``dropped`` mark
#: wire spans ended by the loss process / fault injector; ``inflight``
#: marks wire spans of messages still traveling when the trace shut
#: down (the run ended before their delivery events fired); ``unclosed``
#: marks non-wire spans swept by :meth:`SpanTracker.finish` at trace
#: shutdown — a span that *leaked* (the OBS001 lint rule exists to
#: prevent these).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_LOST = "lost"
STATUS_DROPPED = "dropped"
STATUS_INFLIGHT = "inflight"
STATUS_UNCLOSED = "unclosed"

#: The wire-message span kind (opened by the transport, closed on every
#: delivery/drop/loss path).  One of these still open at shutdown means
#: the message was in flight when the run ended, not that code leaked it.
WIRE_SPAN_KIND = "wire.msg"

#: Span kinds subject to :attr:`SpanTracker.sample_every` — the
#: per-message kinds whose volume scales with traffic, mirroring the
#: JSONL sink's ``msg.*`` sampling.  Control spans (sessions, phases,
#: per-node convergecast) are never sampled: there are O(N) of them per
#: session, not O(messages), and the tree hangs off them.
SAMPLED_SPAN_KINDS = frozenset({WIRE_SPAN_KIND})


class SpanTracker:
    """Per-simulation open-span table and current-span context.

    One tracker hangs off every :class:`~repro.telemetry.core.Telemetry`
    (``sim.telemetry.spans``).  It does not retain closed spans — the
    JSONL trace is the record of truth; the tracker only tracks what is
    *open* (so crashes and shutdown can sweep leaks) and what is
    *current* (so new spans and outgoing messages know their parent).

    Examples
    --------
    >>> from repro.sim.engine import Simulation
    >>> sim = Simulation(seed=0)
    >>> sim.trace.start_recording()
    >>> spans = sim.telemetry.enable_spans()
    >>> sid = sim.telemetry.spans.open("netfilter.run")
    >>> sim.telemetry.spans.close(sid)
    >>> [r.kind for r in sim.trace.stop_recording()]
    ['span.open', 'span.close']
    """

    __slots__ = (
        "_sim",
        "_tracer",
        "enabled",
        "current",
        "sample_every",
        "_sample_seen",
        "_next_id",
        "_open",
    )

    def __init__(self, sim: "Simulation", tracer: "Tracer") -> None:
        self._sim = sim
        self._tracer = tracer
        #: The opt-in gate.  Hot paths must check ``enabled`` *and* the
        #: tracer's ``active`` predicate before doing span work.
        self.enabled = False
        #: The currently active span id (NO_SPAN outside any span).
        self.current = NO_SPAN
        #: Keep 1 in this many :data:`SAMPLED_SPAN_KINDS` opens (wire
        #: spans).  Sampling happens *at open time*: a sampled-out
        #: message costs one counter increment and never allocates — the
        #: knob that keeps span recording within budget at benchmark
        #: message rates.  Control spans are always kept, so the session
        #: tree (and the critical path through it) survives sampling;
        #: only per-message latency attribution thins out.
        self.sample_every = 1
        self._sample_seen = 0
        self._next_id = 1
        # Open spans: id -> (kind, peer).  Insertion-ordered, so the
        # crash sweep and the shutdown sweep close leaks in the
        # deterministic order they were opened.
        self._open: dict[int, tuple[str, int | None]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        """Number of spans currently open (0 when everything closed)."""
        return len(self._open)

    def open_ids(self) -> tuple[int, ...]:
        """Ids of currently open spans, in open order (diagnostics)."""
        return tuple(self._open)

    # ------------------------------------------------------------------
    # Opening and closing
    # ------------------------------------------------------------------
    def open(
        self,
        kind: str,
        parent: int | None = None,
        peer: int | None = None,
        **fields: Any,
    ) -> int:
        """Open a span and emit its ``span.open`` record.

        ``parent`` defaults to the current span; ``peer`` names the
        owning peer so a crash closes the span (see :meth:`close_peer`).
        Returns :data:`NO_SPAN` — and does nothing — unless span tracking
        is enabled and the tracer has a consumer.
        """
        tracer = self._tracer
        if not (self.enabled and tracer.active):
            return NO_SPAN
        if self.sample_every > 1 and kind in SAMPLED_SPAN_KINDS:
            self._sample_seen += 1
            if self._sample_seen % self.sample_every:
                return NO_SPAN
        sid = self._next_id
        self._next_id = sid + 1
        if parent is None:
            parent = self.current
        self._open[sid] = (kind, peer)
        tracer.emit(
            self._sim.now,
            "span.open",
            span=sid,
            parent=parent,
            span_kind=kind,
            peer=peer,
            **fields,
        )
        return sid

    def close(
        self,
        sid: int,
        status: str = STATUS_OK,
        cause: int = NO_SPAN,
        **fields: Any,
    ) -> None:
        """Close an open span and emit its ``span.close`` record.

        ``cause`` names the input span whose completion ended this one
        (the last reply's wire span for a convergecast merge) — the edge
        the critical-path walk follows.  Closing :data:`NO_SPAN` or an
        already-closed span is a no-op, so crash sweeps and normal closes
        compose without double-close bookkeeping at the call sites.
        """
        if sid == NO_SPAN:
            return
        entry = self._open.pop(sid, None)
        if entry is None:
            return
        self._tracer.emit(
            self._sim.now,
            "span.close",
            span=sid,
            span_kind=entry[0],
            status=status,
            cause=cause,
            **fields,
        )

    # ------------------------------------------------------------------
    # Context propagation
    # ------------------------------------------------------------------
    def activate(self, sid: int) -> int:
        """Make ``sid`` the current span; returns the previous current
        span for :meth:`restore`.  Callers must restore in LIFO order."""
        previous = self.current
        self.current = sid
        return previous

    def restore(self, previous: int) -> None:
        """Restore the current span saved by :meth:`activate`."""
        self.current = previous

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def close_peer(self, peer: int, reason: str = "peer_crashed") -> int:
        """Close every open span owned by ``peer`` with an error status.

        Called from the node failure path so a crashed peer's in-flight
        convergecast spans end as *closed trees with an error tag*
        instead of leaking to the shutdown sweep.  Returns how many spans
        were closed.
        """
        if not self._open:
            return 0
        victims = [sid for sid, (_, owner) in self._open.items() if owner == peer]
        for sid in victims:
            self.close(sid, status=STATUS_ERROR, reason=reason)
        return len(victims)

    def finish(self) -> int:
        """Close every span still open; returns the number of true leaks.

        Run by :meth:`Telemetry.close <repro.telemetry.core.Telemetry.close>`
        before the JSONL sinks detach, so a finished trace never contains
        an open without a matching close.  Wire-message spans close with
        status ``inflight`` — the transport closes them on every delivery
        path, so one still open means its message was traveling when the
        run ended.  Everything else closes ``unclosed`` and counts toward
        the returned leak total — tests assert it stays 0.
        """
        leaked = 0
        for sid, (kind, _) in list(self._open.items()):
            if kind == WIRE_SPAN_KIND:
                self.close(sid, status=STATUS_INFLIGHT)
            else:
                leaked += 1
                self.close(sid, status=STATUS_UNCLOSED)
        return leaked

    def reset(self) -> None:
        """Forget open spans and context (for experiment sweeps reusing a
        simulation factory).  The ``enabled`` gate is left as configured;
        the id counter restarts so replays allocate identical ids."""
        self._open.clear()
        self.current = NO_SPAN
        self._sample_seen = 0
        self._next_id = 1
