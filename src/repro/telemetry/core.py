"""The per-simulation :class:`Telemetry` facade.

One ``Telemetry`` hangs off every :class:`~repro.sim.engine.Simulation` and
unifies the three observability primitives behind a single handle:

* the event-level :class:`~repro.sim.trace.Tracer` (what happened, when),
* a :class:`~repro.metrics.registry.MetricsRegistry` of counters, gauges,
  timers and histograms (how much, how often, how long),
* the network's :class:`~repro.metrics.accounting.CostAccounting` (bytes
  per peer per category — the paper's metric), attached by the network
  when it is constructed.

Protocols instrument themselves through :meth:`emit` and :meth:`span`;
with no JSONL sink attached and nobody recording, an emit is one counter
increment and a span adds two of them — cheap enough for hot paths.
Attach a :class:`~repro.telemetry.sink.JsonlTraceSink` via
:meth:`attach_jsonl` to stream every event to disk for the
``python -m repro.telemetry`` run-report CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator
from contextlib import contextmanager
from time import perf_counter

from repro.metrics.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.metrics.accounting import CostAccounting
    from repro.sim.engine import Simulation
    from repro.telemetry.sink import JsonlTraceSink


class Telemetry:
    """Unified observability for one simulation.

    Examples
    --------
    >>> from repro.sim.engine import Simulation
    >>> sim = Simulation(seed=0)
    >>> with sim.telemetry.span("filter.phase"):
    ...     pass
    >>> sim.telemetry.tracer.counters["filter.phase"]
    2
    """

    def __init__(self, sim: "Simulation") -> None:
        self._sim = sim
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.accounting: "CostAccounting | None" = None
        self._sinks: list["JsonlTraceSink"] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_accounting(self, accounting: "CostAccounting") -> None:
        """Register the network's byte accounting (kept by reference, so
        reports always see current totals)."""
        self.accounting = accounting

    def attach_jsonl(
        self,
        path: str,
        sample_every: int = 1,
        sampled_prefixes: tuple[str, ...] = ("msg.", "heartbeat."),
    ) -> "JsonlTraceSink":
        """Stream every trace event to a JSONL file.

        ``sample_every=k`` keeps one in ``k`` events of the high-frequency
        kinds (those matching ``sampled_prefixes``); structural events are
        always kept.  The returned sink must be closed (or use
        :meth:`close`) to flush the trailing summary record.
        """
        from repro.telemetry.sink import JsonlTraceSink

        sink = JsonlTraceSink(
            path,
            self.tracer,
            sample_every=sample_every,
            sampled_prefixes=sampled_prefixes,
        )
        self._sinks.append(sink)
        return sink

    @property
    def sinks(self) -> tuple["JsonlTraceSink", ...]:
        """Currently attached trace sinks."""
        return tuple(self._sinks)

    def close(self) -> list[str]:
        """Close every attached sink; returns the paths written."""
        paths = []
        for sink in self._sinks:
            sink.close()
            paths.append(sink.path)
        self._sinks.clear()
        return paths

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one trace event stamped with the current simulated time."""
        self.tracer.emit(self._sim.now, kind, **fields)

    @contextmanager
    def span(self, kind: str, **fields: Any) -> Iterator[dict[str, Any]]:
        """Bracket a protocol phase with begin/end events.

        Emits ``kind`` with ``ev="begin"`` on entry and ``ev="end"`` on
        exit, the end event carrying the simulated (``sim_elapsed``) and
        wall-clock (``wall_elapsed``, seconds) durations plus anything the
        body stores into the yielded dict.  The simulated duration also
        feeds the ``span.<kind>`` timer in the registry.
        """
        self.tracer.emit(self._sim.now, kind, ev="begin", **fields)
        extra: dict[str, Any] = {}
        sim_started = self._sim.now
        wall_started = perf_counter()
        try:
            yield extra
        finally:
            sim_elapsed = self._sim.now - sim_started
            merged = dict(fields)
            merged.update(extra)
            self.tracer.emit(
                self._sim.now,
                kind,
                ev="end",
                sim_elapsed=sim_elapsed,
                wall_elapsed=perf_counter() - wall_started,
                **merged,
            )
            self.registry.timer(f"span.{kind}", DEFAULT_TIME_BUCKETS).observe(
                sim_elapsed
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the tracer, registry, and (if attached) the accounting —
        for experiment sweeps that reuse one simulation factory."""
        self.tracer.reset()
        self.registry.reset()
        if self.accounting is not None:
            self.accounting.reset()
