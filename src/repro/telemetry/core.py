"""The per-simulation :class:`Telemetry` facade.

One ``Telemetry`` hangs off every :class:`~repro.sim.engine.Simulation` and
unifies the three observability primitives behind a single handle:

* the event-level :class:`~repro.sim.trace.Tracer` (what happened, when),
* a :class:`~repro.metrics.registry.MetricsRegistry` of counters, gauges,
  timers and histograms (how much, how often, how long),
* the network's :class:`~repro.metrics.accounting.CostAccounting` (bytes
  per peer per category — the paper's metric), attached by the network
  when it is constructed.

Protocols instrument themselves through :meth:`emit` and :meth:`span`;
with no JSONL sink attached and nobody recording, an emit is one counter
increment and a span adds two of them — cheap enough for hot paths.
Attach a :class:`~repro.telemetry.sink.JsonlTraceSink` via
:meth:`attach_jsonl` to stream every event to disk for the
``python -m repro.telemetry`` run-report CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator
from contextlib import contextmanager
from time import perf_counter

from repro.metrics.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.sim.trace import Tracer
from repro.telemetry.spans import SpanTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.metrics.accounting import CostAccounting
    from repro.metrics.timeseries import EpochTimeseries
    from repro.sim.engine import Simulation
    from repro.telemetry.sink import JsonlTraceSink


class Telemetry:
    """Unified observability for one simulation.

    Examples
    --------
    >>> from repro.sim.engine import Simulation
    >>> sim = Simulation(seed=0)
    >>> with sim.telemetry.span("filter.phase"):
    ...     pass
    >>> sim.telemetry.tracer.counters["filter.phase"]
    2
    """

    def __init__(self, sim: "Simulation") -> None:
        self._sim = sim
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.accounting: "CostAccounting | None" = None
        self.spans = SpanTracker(sim, self.tracer)
        self.epochs: "EpochTimeseries | None" = None
        self._sinks: list["JsonlTraceSink"] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_accounting(self, accounting: "CostAccounting") -> None:
        """Register the network's byte accounting (kept by reference, so
        reports always see current totals)."""
        self.accounting = accounting

    def attach_jsonl(
        self,
        path: str,
        sample_every: int = 1,
        sampled_prefixes: tuple[str, ...] = ("msg.", "heartbeat."),
    ) -> "JsonlTraceSink":
        """Stream every trace event to a JSONL file.

        ``sample_every=k`` keeps one in ``k`` events of the high-frequency
        kinds (those matching ``sampled_prefixes``); structural events are
        always kept.  The returned sink must be closed (or use
        :meth:`close`) to flush the trailing summary record.
        """
        from repro.telemetry.sink import JsonlTraceSink

        sink = JsonlTraceSink(
            path,
            self.tracer,
            sample_every=sample_every,
            sampled_prefixes=sampled_prefixes,
        )
        self._sinks.append(sink)
        return sink

    def enable_spans(self, sample_every: int = 1) -> SpanTracker:
        """Turn on causal span tracking (see :mod:`repro.telemetry.spans`).

        Spans only emit while the tracer is also :attr:`~repro.sim.trace.
        Tracer.active` (a sink attached or recording on), so enabling them
        for a run with no consumer still costs nothing on the hot path.

        ``sample_every`` keeps 1 in that many per-message *wire* spans
        (control spans are never sampled) — pass the JSONL sink's
        sampling factor so span volume scales with the rest of the trace.
        """
        self.spans.enabled = True
        self.spans.sample_every = max(int(sample_every), 1)
        return self.spans

    def enable_epochs(
        self, epoch_length: float, capacity: int | None = None
    ) -> "EpochTimeseries":
        """Create (or return) the windowed epoch timeseries layer.

        Repeated calls with the same ``epoch_length`` return the existing
        instance so independent probes share one epoch grid; asking for a
        different length once epochs exist raises.
        """
        from repro.metrics.timeseries import DEFAULT_CAPACITY, EpochTimeseries

        existing = self.epochs
        if existing is not None:
            if existing.epoch_length != epoch_length:
                raise ValueError(
                    f"epoch timeseries already enabled with length "
                    f"{existing.epoch_length}, not {epoch_length}"
                )
            return existing
        self.epochs = EpochTimeseries(
            self.registry,
            self.tracer,
            lambda: self._sim.now,
            epoch_length=epoch_length,
            capacity=DEFAULT_CAPACITY if capacity is None else capacity,
        )
        return self.epochs

    @property
    def sinks(self) -> tuple["JsonlTraceSink", ...]:
        """Currently attached trace sinks."""
        return tuple(self._sinks)

    def close(self) -> list[str]:
        """Close every attached sink; returns the paths written.

        Before detaching, any epochs the clock has passed are flushed and
        leaked spans are swept closed (status ``unclosed``), so a finished
        trace is always a set of *closed* span trees.
        """
        if self.epochs is not None:
            self.epochs.roll()
        self.spans.finish()
        paths = []
        for sink in self._sinks:
            sink.close()
            paths.append(sink.path)
        self._sinks.clear()
        return paths

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one trace event stamped with the current simulated time."""
        self.tracer.emit(self._sim.now, kind, **fields)

    @contextmanager
    def span(self, kind: str, **fields: Any) -> Iterator[dict[str, Any]]:
        """Bracket a protocol phase with begin/end events.

        Emits ``kind`` with ``ev="begin"`` on entry and ``ev="end"`` on
        exit, the end event carrying the simulated (``sim_elapsed``) and
        wall-clock (``wall_elapsed``, seconds) durations plus anything the
        body stores into the yielded dict.  The simulated duration also
        feeds the ``span.<kind>`` timer in the registry.

        When causal span tracking is on (:meth:`enable_spans`), the block
        additionally opens a tracker span of the same kind and makes it
        the current causal context, so phases nest correctly in the span
        tree and sessions started inside the block parent to it.
        """
        spans = self.spans
        sid = spans.open(kind)
        previous = spans.activate(sid) if sid else spans.current
        self.tracer.emit(self._sim.now, kind, ev="begin", **fields)
        extra: dict[str, Any] = {}
        sim_started = self._sim.now
        wall_started = perf_counter()
        try:
            yield extra
        finally:
            sim_elapsed = self._sim.now - sim_started
            merged = dict(fields)
            merged.update(extra)
            self.tracer.emit(
                self._sim.now,
                kind,
                ev="end",
                sim_elapsed=sim_elapsed,
                wall_elapsed=perf_counter() - wall_started,
                **merged,
            )
            self.registry.timer(f"span.{kind}", DEFAULT_TIME_BUCKETS).observe(
                sim_elapsed
            )
            if sid:
                spans.restore(previous)
                spans.close(sid)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the tracer, registry, spans, epochs, and (if attached) the
        accounting — for experiment sweeps that reuse one simulation
        factory."""
        self.tracer.reset()
        self.registry.reset()
        self.spans.reset()
        if self.epochs is not None:
            self.epochs.reset()
        if self.accounting is not None:
            self.accounting.reset()
