"""Streaming JSONL trace export with bounded memory.

A :class:`JsonlTraceSink` subscribes to a tracer's wildcard channel and
writes each record as one JSON line the moment it is emitted — nothing is
buffered beyond the file object's write buffer, so a million-message run
costs disk, not RAM.  High-frequency event kinds can be sampled
(``sample_every=k`` keeps every k-th event per kind); the trailing
``trace.summary`` record carries the exact per-kind emit counts from the
tracer so reports can rescale sampled quantities.

File format, one JSON object per line:

* line 1 — ``{"kind": "trace.meta", "version": 1, ...}``
* body  — ``{"t": <sim time>, "kind": ..., <event fields>}``
* last  — ``{"kind": "trace.summary", "counters": {...}, ...}``

:func:`read_trace` is the matching loader.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.sim.trace import TraceRecord, Tracer

TRACE_FORMAT_VERSION = 1

#: Flush to disk at least every this many written records, so a crashed or
#: abandoned run still leaves a usable trace behind.
FLUSH_INTERVAL = 1000


class JsonlTraceSink:
    """Streams trace records to a JSONL file as they are emitted."""

    def __init__(
        self,
        path: str,
        tracer: Tracer,
        sample_every: int = 1,
        sampled_prefixes: tuple[str, ...] = ("msg.", "heartbeat."),
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.path = str(path)
        self.sample_every = sample_every
        self.sampled_prefixes = tuple(sampled_prefixes)
        self.written = 0
        self.skipped = 0
        self._seen: dict[str, int] = {}
        self._tracer = tracer
        self._closed = False
        self._file = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "kind": "trace.meta",
                "version": TRACE_FORMAT_VERSION,
                "sample_every": sample_every,
                "sampled_prefixes": list(self.sampled_prefixes),
            }
        )
        tracer.subscribe("", self._on_record)

    # ------------------------------------------------------------------
    # Record handling
    # ------------------------------------------------------------------
    def _on_record(self, record: TraceRecord) -> None:
        if self._closed:
            return
        kind = record.kind
        if self.sample_every > 1 and kind.startswith(self.sampled_prefixes):
            seen = self._seen.get(kind, 0)
            self._seen[kind] = seen + 1
            if seen % self.sample_every:
                self.skipped += 1
                return
        line: dict[str, Any] = {"t": record.time, "kind": kind}
        line.update(record.fields)
        self._write_line(line)

    def _write_line(self, obj: dict[str, Any]) -> None:
        self._file.write(json.dumps(obj, default=_jsonable))
        self._file.write("\n")
        self.written += 1
        if self.written % FLUSH_INTERVAL == 0:
            self._file.flush()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unsubscribe, append the summary record, and close the file.

        Idempotent; the summary's ``counters`` are the tracer's exact
        per-kind emit counts (unaffected by sampling).
        """
        if self._closed:
            return
        self._closed = True
        self._tracer.unsubscribe("", self._on_record)
        self._write_line(
            {
                "kind": "trace.summary",
                "counters": dict(self._tracer.counters),
                "written": self.written,
                "skipped": self.skipped,
                "sample_every": self.sample_every,
            }
        )
        self._file.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _jsonable(value: Any) -> Any:
    """Last-resort JSON coercion for numpy scalars/arrays and enums."""
    if hasattr(value, "tolist"):  # numpy scalars and arrays alike
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "value"):
        return value.value
    return str(value)


def read_trace(path: str) -> list[dict[str, Any]]:
    """Load every record of a JSONL trace (meta and summary included)."""
    return list(iter_trace(path))


def iter_trace(path: str) -> Iterator[dict[str, Any]]:
    """Stream a JSONL trace one record at a time (bounded memory).

    A malformed *final* line is silently dropped — that is what a killed
    run leaves mid-write, and the rest of the trace is still good.  A
    malformed line anywhere else raises :class:`ValueError` with the
    line number, because it means the file is corrupt, not truncated.
    """
    with open(path, "r", encoding="utf-8") as handle:
        pending_error: ValueError | None = None
        for lineno, line in enumerate(handle, start=1):
            if pending_error is not None:
                raise pending_error
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                pending_error = ValueError(
                    f"{path}:{lineno}: malformed trace line ({error})"
                )
