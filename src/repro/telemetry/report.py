"""Run reports from JSONL traces.

:func:`build_report` folds a trace into a :class:`RunReport`: per-phase
simulated/wall time (from span begin/end events), bytes and messages by
cost category (by replaying ``msg.sent`` events through the same
:class:`~repro.metrics.accounting.CostAccounting` the live system uses),
a message-latency histogram (from ``msg.delivered`` events), and the
top-k heaviest senders.  :func:`render_report` turns it into the aligned
plain-text report the ``python -m repro.telemetry`` CLI prints.

When the trace was written with sampling, byte/message totals are scaled
back up using the exact per-kind counters in the trailing
``trace.summary`` record, and the report says so.

Forward compatibility: a trace written by a *newer* build may contain
event kinds this build has never heard of.  Those records are skipped
and counted (per kind, surfaced in the report header) instead of being
folded into the declared-kind statistics — an old report reading a new
trace degrades to a complete report over the kinds it understands.

When the trace carries causal spans (:mod:`repro.telemetry.spans`), the
report grows the attribution views: the critical path of every
aggregation session (whose segment latencies sum to the session's
end-to-end latency by construction), per-phase subtree bytes, and
per-hierarchy-level convergecast cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.experiments.report import format_value, render_table
from repro.metrics.accounting import CostAccounting
from repro.metrics.registry import DEFAULT_TIME_BUCKETS, HistogramMetric
from repro.net.wire import CostCategory
from repro.telemetry import critical_path as cpath
from repro.telemetry.kinds import TRACE_KINDS


@dataclass
class PhaseStat:
    """Aggregated span timings for one event kind."""

    kind: str
    count: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "phase": self.kind,
            "runs": self.count,
            "sim time": self.sim_time,
            "wall s": self.wall_time,
        }


@dataclass
class RunReport:
    """Everything :func:`build_report` extracts from one trace."""

    path: str
    events: int
    first_time: float
    last_time: float
    kinds: dict[str, int]
    phases: list[PhaseStat]
    accounting: CostAccounting
    n_peers_seen: int
    latency: HistogramMetric
    sample_scale: dict[str, float] = field(default_factory=dict)
    #: Records whose kind this build does not declare, skipped and
    #: counted per kind (forward compatibility with newer traces).
    unknown_kinds: dict[str, int] = field(default_factory=dict)
    #: Reconstructed causal spans (empty when the trace has none).
    spans: dict[int, cpath.SpanNode] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Simulated time covered by the trace."""
        return max(self.last_time - self.first_time, 0.0)

    def top_peers(self, k: int = 5) -> list[tuple[int, int]]:
        """The ``k`` heaviest senders as ``(peer, bytes)``, descending."""
        per_peer = self.accounting.per_peer_bytes()
        return sorted(per_peer.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


def build_report(
    records: Iterable[dict[str, Any]],
    path: str = "<trace>",
    latency_buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
) -> RunReport:
    """Fold trace records (as loaded by ``read_trace``) into a report."""
    accounting = CostAccounting()
    latency = HistogramMetric("msg.latency", latency_buckets)
    phases: dict[str, PhaseStat] = {}
    kinds: dict[str, int] = {}
    unknown_kinds: dict[str, int] = {}
    span_records: list[dict[str, Any]] = []
    peers: set[int] = set()
    events = 0
    first_time = math.inf
    last_time = -math.inf
    summary: dict[str, Any] | None = None

    for record in records:
        kind = record.get("kind", "?")
        if kind == "trace.meta":
            continue
        if kind == "trace.summary":
            summary = record
            continue
        if kind not in TRACE_KINDS:
            # A newer trace may carry kinds this build does not declare:
            # skip them (their field conventions are unknown) but count
            # them, so the report can say what it ignored.
            unknown_kinds[kind] = unknown_kinds.get(kind, 0) + 1
            continue
        events += 1
        kinds[kind] = kinds.get(kind, 0) + 1
        time = record.get("t")
        if isinstance(time, (int, float)):
            first_time = min(first_time, time)
            last_time = max(last_time, time)
        if kind in ("span.open", "span.close"):
            span_records.append(record)
        elif kind == "msg.sent":
            sender = record.get("sender")
            if sender is not None:
                peers.add(sender)
            recipient = record.get("recipient")
            if recipient is not None:
                peers.add(recipient)
            size = record.get("size")
            category = _parse_category(record.get("category"))
            if sender is not None and size is not None and category is not None:
                accounting.record(peer=sender, category=category, size=size)
        elif kind == "msg.delivered":
            value = record.get("latency")
            if isinstance(value, (int, float)):
                latency.observe(value)
        elif record.get("ev") == "end":
            stat = phases.get(kind)
            if stat is None:
                stat = phases[kind] = PhaseStat(kind)
            stat.count += 1
            stat.sim_time += float(record.get("sim_elapsed", 0.0))
            stat.wall_time += float(record.get("wall_elapsed", 0.0))

    sample_scale: dict[str, float] = {}
    if summary is not None:
        emitted = summary.get("counters", {})
        for kind, written in kinds.items():
            total = emitted.get(kind, written)
            if written and total > written:
                sample_scale[kind] = total / written

    if events == 0:
        first_time = last_time = 0.0
    return RunReport(
        path=path,
        events=events,
        first_time=first_time,
        last_time=last_time,
        kinds=kinds,
        phases=sorted(phases.values(), key=lambda s: s.kind),
        accounting=accounting,
        n_peers_seen=len(peers),
        latency=latency,
        sample_scale=sample_scale,
        unknown_kinds=unknown_kinds,
        spans=cpath.collect_spans(span_records),
    )


def _parse_category(value: Any) -> CostCategory | None:
    if value is None:
        return None
    try:
        return CostCategory(value)
    except ValueError:
        return None


def render_histogram(hist: HistogramMetric, width: int = 30) -> str:
    """ASCII rendering of a histogram, one bucket per line."""
    if hist.count == 0:
        return "(no observations)"
    lines = []
    peak = max(hist.bucket_counts)
    labels = [f"<= {format_value(b)}" for b in hist.bounds] + ["> last"]
    label_width = max(len(label) for label in labels)
    for label, count in zip(labels, hist.bucket_counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  {label.rjust(label_width)}  {str(count).rjust(8)}  {bar}")
    lines.append(
        f"  n={hist.count}  mean={format_value(hist.mean)}  "
        f"min={format_value(hist.min)}  max={format_value(hist.max)}  "
        f"p50~{format_value(hist.quantile(0.5))}  p99~{format_value(hist.quantile(0.99))}"
    )
    return "\n".join(lines)


def render_critical_paths(report: RunReport, max_sessions: int = 8) -> str:
    """Critical-path tables, one per aggregation session in the trace.

    Each table's segment latencies sum to the session's end-to-end
    latency (the walk telescopes by construction); the footer line states
    both numbers so the equality is visible in the rendered report.
    """
    spans = report.spans
    children = cpath.children_of(spans)
    sessions = [s for s in cpath.sessions(spans) if s.closed]
    if not sessions:
        return "Critical paths\n(no closed session spans in trace)"
    shown = sessions[:max_sessions]
    blocks = []
    for session in shown:
        segments = cpath.critical_path(spans, session.sid, children)
        rows = [
            {
                "at": seg.start,
                "segment": seg.span.label(),
                "latency": seg.duration,
                "bytes": seg.span.size,
            }
            for seg in reversed(segments)  # chronological order
        ]
        title = (
            f"Critical path — session {session.fields.get('session', session.sid)} "
            f"({session.fields.get('spec', '?')}, status {session.status})"
        )
        path_total = sum(seg.duration for seg in segments)
        blocks.append(
            render_table(rows, title=title)
            + f"\n  path total {format_value(path_total)} "
            f"= session latency {format_value(session.duration)}, "
            f"{cpath.path_bytes(segments)} bytes on path"
        )
    if len(sessions) > len(shown):
        blocks.append(f"({len(sessions) - len(shown)} more sessions not shown)")
    return "\n\n".join(blocks)


def render_span_sections(report: RunReport) -> list[str]:
    """The span-derived report sections (empty when the trace has none)."""
    spans = report.spans
    if not spans:
        return []
    children = cpath.children_of(spans)
    sections = []
    statuses = cpath.status_summary(spans)
    sections.append(
        f"Causal spans: {len(spans)} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(statuses.items()))})"
    )
    sections.append("")
    sections.append(render_critical_paths(report))
    sections.append("")
    phase_rows = cpath.per_phase_attribution(spans, children)
    if phase_rows:
        sections.append(render_table(phase_rows, title="Per-phase attribution"))
        sections.append("")
    level_rows = cpath.per_level_attribution(spans, children)
    if level_rows:
        sections.append(
            render_table(level_rows, title="Per-level convergecast attribution")
        )
        sections.append("")
    return sections


def render_report(report: RunReport, top_k: int = 5) -> str:
    """The full plain-text run report."""
    lines = [
        f"Trace: {report.path}",
        f"  {report.events} events, {len(report.kinds)} kinds, "
        f"simulated span [{format_value(report.first_time)}, "
        f"{format_value(report.last_time)}] "
        f"(duration {format_value(report.duration)})",
    ]
    if report.unknown_kinds:
        skipped = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(report.unknown_kinds.items())
        )
        lines.append(
            f"  {sum(report.unknown_kinds.values())} records of "
            f"{len(report.unknown_kinds)} undeclared kinds skipped ({skipped})"
        )
    if report.sample_scale:
        scaled = ", ".join(
            f"{kind} x{scale:.1f}" for kind, scale in sorted(report.sample_scale.items())
        )
        lines.append(
            f"  sampled trace — byte/message totals rescaled from the "
            f"summary counters ({scaled})"
        )
    lines.append("")

    if report.phases:
        lines.append(
            render_table(
                [stat.as_dict() for stat in report.phases], title="Per-phase time"
            )
        )
    else:
        lines.append("Per-phase time\n(no span events in trace)")
    lines.append("")

    scale = report.sample_scale.get("msg.sent", 1.0)
    by_category = report.accounting.bytes_by_category()
    if by_category:
        n = max(report.n_peers_seen, 1)
        rows = [
            {
                "category": str(cat),
                "bytes": int(total * scale),
                "messages": int(report.accounting.message_count(cat) * scale),
                "bytes/peer": total * scale / n,
            }
            for cat, total in sorted(
                by_category.items(), key=lambda kv: -kv[1]
            )
        ]
        rows.append(
            {
                "category": "TOTAL",
                "bytes": int(report.accounting.total_bytes() * scale),
                "messages": int(report.accounting.message_count() * scale),
                "bytes/peer": report.accounting.total_bytes() * scale / n,
            }
        )
        lines.append(
            render_table(
                rows,
                title=f"Bytes by category ({report.n_peers_seen} peers seen)",
            )
        )
    else:
        lines.append("Bytes by category\n(no msg.sent events in trace)")
    lines.append("")

    lines.append("Message latency (simulated time)")
    lines.append(render_histogram(report.latency))
    lines.append("")

    lines.extend(render_span_sections(report))

    top = report.top_peers(top_k)
    if top:
        lines.append(
            render_table(
                [
                    {"peer": peer, "bytes sent": int(size * scale)}
                    for peer, size in top
                ],
                title=f"Top {len(top)} heaviest peers",
            )
        )
    return "\n".join(lines)
