"""The trace-kind registry: every event kind a protocol may emit.

The JSONL traces (PR 1) are only analysable — and only comparable across
runs, which the same-seed replay gate in ``tests/test_determinism.py``
depends on — if event kinds form a closed vocabulary.  A typo'd kind
(``"herarchy.attached"``) silently splits one event stream into two and
every report built on the real kind under-counts.  This module is the
single source of truth; the ``PROTO002`` rule of :mod:`repro.lint`
statically checks that every ``emit(...)``/``span(...)`` call site in
protocol code uses a declared kind.

Adding a kind is one line in :data:`TRACE_KINDS` (or, for downstream
extensions, one :func:`declare_kind` call at import time).
"""

from __future__ import annotations

#: Every declared trace-event kind, mapped to a one-line description.
#: Span kinds appear here under their bare name; the begin/end bracketing
#: (``ev="begin"`` / ``ev="end"``) is carried in the record fields, and the
#: derived ``span.<kind>`` timer names live in the metrics registry only.
TRACE_KINDS: dict[str, str] = {
    # -- transport ------------------------------------------------------
    "msg.sent": "a payload was priced, charged, and put on the wire",
    "msg.delivered": "a payload reached a live recipient",
    "msg.lost": "the transport's loss process dropped a message",
    "msg.dropped_dead_recipient": "delivery attempted to a failed/unknown peer",
    "msg.unhandled": "a delivered payload type had no registered handler",
    "transport.retransmit": "an unacked reliable message was re-sent",
    "transport.retransmit_exhausted": "a reliable message ran out of retries",
    # -- fault injection ------------------------------------------------
    "fault.injected": "a scripted fault scenario action fired",
    "msg.dropped_fault": "the fault injector dropped a matching message",
    "msg.delayed_fault": "the fault injector delayed a matching message",
    # -- node / churn lifecycle ----------------------------------------
    "node.failed": "a peer crashed (stops sending, receiving, timing)",
    "node.revived": "a failed peer rejoined with the same identity",
    "churn.failure": "the churn process selected and failed a victim",
    "churn.revival": "the churn process revived a failed peer",
    # -- heartbeats / failure detection --------------------------------
    "heartbeat.neighbor_down": "a neighbour's watchdog expired",
    # -- hierarchy construction and repair -----------------------------
    "hierarchy.build": "span: BFS flood from the designated root",
    "hierarchy.attached": "a peer adopted an upstream neighbour",
    "hierarchy.invalidated": "a peer detached (depth <- infinity)",
    "hierarchy.reattached": "a detached peer re-entered via a heartbeat",
    "hierarchy.child_dropped": "a failed child was removed from downstream",
    "hierarchy.repair": "span: repair episode (used by maintenance tests)",
    "hierarchy.cross_gen_drop": "the generation fence discarded stale traffic",
    "hierarchy.cycle_break": "the last-resort depth bound fired (alarm)",
    "hierarchy.root_promoted": "a failover successor promoted itself to root",
    "hierarchy.root_abdicated": "a superseded root rejoined the newer epoch",
    "hierarchy.child_readopted": "a parent re-adopted a wrongly dropped child",
    "hierarchy.stale_child_dropped": "a parent dropped a child attached elsewhere",
    # -- aggregation sessions ------------------------------------------
    "aggregation.start": "the root opened an aggregation session",
    "aggregation.complete": "the root obtained the global aggregate",
    "aggregation.child_timeout": "a node gave up waiting for children",
    "aggregation.reprobe": "a hardened node re-probed children missing at timeout",
    "aggregation.incomplete": "a session completed short of full coverage",
    "aggregation.root_lost": "a session's root died or was replaced mid-flight",
    # -- recovery (requester-side re-issue) -----------------------------
    "request.reissued": "a requester re-ran a phase/query on low coverage",
    # -- netFilter (hierarchical) --------------------------------------
    "netfilter.run": "span: one full two-phase netFilter execution",
    "totals.phase": "span: the combined (v, N) aggregation",
    "filter.phase": "span: phase-1 candidate filtering",
    "filter.heavy_groups": "phase-1 outcome: heavy groups per filter",
    "verify.phase": "span: phase-2 candidate verification",
    "verify.materialized": "a peer materialized its partial candidate set",
    # -- continuous monitoring / service layer -------------------------
    "monitor.resync": "a peer re-shipped its full state after a re-baseline",
    "service.epoch": "span: one scheduled monitoring epoch, commit or degrade",
    "service.attempt": "span: one epoch attempt (three convergecasts)",
    "service.commit": "an epoch attempt committed a fresh result",
    "service.abandon": "an epoch attempt was abandoned (deadline/coverage/root)",
    "service.degraded": "an epoch ended degraded: serving the last committed result",
    "service.answer": "the root served a monitor answer (fresh or degraded)",
    # -- multi-tenant front door (repro.frontdoor) ----------------------
    "frontdoor.submit": "a client peer fired a query request at the root",
    "frontdoor.admit": "admission control accepted a request into the batch queue",
    "frontdoor.reject": "the front door rejected a request (reason, retry_after)",
    "frontdoor.cache_hit": "a still-fresh cached answer served the request",
    "frontdoor.round": "span: one front-door scheduling round (admit, batch, serve)",
    "frontdoor.session": "span: one shared aggregation session over a batch",
    "frontdoor.session_retry": "a failed shared session was retried after backoff",
    "frontdoor.answer": "the root sent a terminal answer back to a requester",
    "frontdoor.timeout": "a client-side request deadline expired unanswered",
    "frontdoor.breaker": "the overload circuit breaker changed state",
    # -- netFilter (gossip variant) ------------------------------------
    "gossip.filter.phase": "span: push-sum candidate filtering",
    "gossip.flood.phase": "span: heavy-group overlay flood",
    "gossip.verify.phase": "span: keyed push-sum verification",
    # -- causal spans (repro.telemetry.spans) ---------------------------
    "span.open": "a causal span opened (fields: span, parent, span_kind, peer)",
    "span.close": "a causal span closed (fields: span, status, cause)",
    # The span_kind vocabulary for tracker spans (values of the
    # ``span_kind`` field above); phase spans reuse the kinds of the
    # begin/end events they shadow (netfilter.run, filter.phase, ...).
    "wire.msg": "causal span: one message on the wire, send to delivery",
    "agg.session": "causal span: one aggregation session, root-side",
    "agg.node": "causal span: one node's convergecast participation",
    # -- epoch timeseries (repro.metrics.timeseries) --------------------
    "epoch.snapshot": "a sim-time epoch closed: counter deltas + gauge/probe values",
    # -- sink framing (written by JsonlTraceSink, never emitted) -------
    "trace.meta": "first JSONL line: format version and sampling setup",
    "trace.summary": "last JSONL line: exact per-kind emit counters",
}


def declare_kind(kind: str, description: str) -> str:
    """Declare an additional trace kind (for protocol extensions).

    Returns ``kind`` so modules can bind it to a constant at import time::

        REBALANCE_KIND = declare_kind("hierarchy.rebalanced", "...")

    Re-declaring an existing kind with a different description raises —
    two modules silently fighting over one kind is exactly the confusion
    the registry exists to prevent.
    """
    existing = TRACE_KINDS.get(kind)
    if existing is not None and existing != description:
        raise ValueError(
            f"trace kind {kind!r} already declared with a different description"
        )
    TRACE_KINDS[kind] = description
    return kind


def is_declared(kind: str) -> bool:
    """Whether ``kind`` is in the registry."""
    return kind in TRACE_KINDS
