"""Span-tree reconstruction and critical-path attribution.

The live system only ever *emits* ``span.open`` / ``span.close`` records
(:mod:`repro.telemetry.spans`); this module is the offline half: it joins
the two record streams back into :class:`SpanNode` trees and answers the
question the paper's cost tables cannot — *which chain of peers, links
and phases did the end-to-end latency actually sit on?*

The critical path of a span is computed by a backward walk in simulated
time.  Standing at ``cursor`` (initially the span's close time), the
walk asks "what was the last input to finish before this point?" — an
input being a child span or the recorded ``cause`` link (the last
delivery that completed a convergecast merge).  The gap between that
input's end and the cursor is attributed to the current span (it was the
one working, or waiting on nothing); then the walk descends into the
input and repeats.  A span with no inputs before the cursor absorbs the
gap down to its own open time and the walk climbs to its opener.  The
segments produced this way telescope — each starts exactly where the
previous one ended — so their durations sum to the root span's
end-to-end latency by construction, whatever shape the tree has.

Byte attribution rides along: every ``wire.msg`` span carries its priced
size, so a path, a phase subtree, or a hierarchy level can each report
the bytes that moved on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Spans of these kinds are protocol phases for the per-phase table.
PHASE_KINDS = (
    "totals.phase",
    "filter.phase",
    "verify.phase",
    "gossip.filter.phase",
    "gossip.flood.phase",
    "gossip.verify.phase",
)


@dataclass
class SpanNode:
    """One reconstructed span (an open/close pair from the trace)."""

    sid: int
    kind: str
    parent: int
    start: float
    peer: int | None = None
    end: float | None = None
    status: str = "open"
    cause: int = 0
    #: Extra fields from the open record (depth, size, session, ...).
    fields: dict[str, Any] = field(default_factory=dict)
    #: Extra fields from the close record (covered, latency, reason, ...).
    close_fields: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated lifetime (0.0 while open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def size(self) -> int:
        """Wire bytes carried (non-zero for ``wire.msg`` spans only)."""
        return int(self.fields.get("size", 0))

    def label(self) -> str:
        """Short human-readable identity for tables."""
        if self.kind == "wire.msg":
            return (
                f"wire {self.fields.get('sender', '?')}"
                f"→{self.fields.get('recipient', '?')} "
                f"{self.fields.get('payload_kind', '?')}"
            )
        if self.peer is not None:
            return f"{self.kind} @peer {self.peer}"
        return self.kind


_OPEN_ONLY_FIELDS = frozenset({"span", "parent", "span_kind", "peer"})
_CLOSE_ONLY_FIELDS = frozenset({"span", "span_kind", "status", "cause"})


def collect_spans(records: Iterable[dict[str, Any]]) -> dict[int, SpanNode]:
    """Join ``span.open`` / ``span.close`` trace records into span nodes.

    Close records without a matching open (a truncated trace) are
    ignored; opens without a close stay ``status="open"`` — a finished
    trace never contains those (``SpanTracker.finish`` sweeps them), so
    their presence means the run was killed mid-flight.
    """
    spans: dict[int, SpanNode] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "span.open":
            sid = int(record["span"])
            spans[sid] = SpanNode(
                sid=sid,
                kind=str(record.get("span_kind", "?")),
                parent=int(record.get("parent", 0)),
                start=float(record.get("t", 0.0)),
                peer=record.get("peer"),
                fields={
                    key: value
                    for key, value in record.items()
                    if key not in _OPEN_ONLY_FIELDS and key not in ("t", "kind")
                },
            )
        elif kind == "span.close":
            node = spans.get(int(record["span"]))
            if node is None:
                continue
            node.end = float(record.get("t", node.start))
            node.status = str(record.get("status", "ok"))
            node.cause = int(record.get("cause", 0))
            node.close_fields = {
                key: value
                for key, value in record.items()
                if key not in _CLOSE_ONLY_FIELDS and key not in ("t", "kind")
            }
    return spans


def children_of(spans: dict[int, SpanNode]) -> dict[int, list[SpanNode]]:
    """Structural child index (open-order preserved by span-id order)."""
    index: dict[int, list[SpanNode]] = {}
    for node in spans.values():
        index.setdefault(node.parent, []).append(node)
    for siblings in index.values():
        siblings.sort(key=lambda n: n.sid)
    return index


def roots(spans: dict[int, SpanNode]) -> list[SpanNode]:
    """Spans whose parent is outside the trace (usually parent 0)."""
    return sorted(
        (n for n in spans.values() if n.parent not in spans),
        key=lambda n: n.sid,
    )


def sessions(spans: dict[int, SpanNode]) -> list[SpanNode]:
    """All ``agg.session`` spans, in open order."""
    return sorted(
        (n for n in spans.values() if n.kind == "agg.session"),
        key=lambda n: n.sid,
    )


@dataclass
class PathSegment:
    """One attributed slice of a critical path: ``span`` owned the
    interval ``[start, end]`` (nothing it was waiting on finished later
    than ``start``)."""

    span: SpanNode
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(
    spans: dict[int, SpanNode],
    root_id: int,
    children: dict[int, list[SpanNode]] | None = None,
) -> list[PathSegment]:
    """The dominant causal chain under the span ``root_id``.

    Returns segments ordered backward in time (root's close first); the
    segments are contiguous — each starts where the next one ends — and
    cover exactly ``[root.start, root.end]``, so their durations sum to
    the root's end-to-end latency.  Zero-length segments are dropped.

    Open (never closed) spans cannot anchor a walk; asking for one
    raises ``ValueError``.
    """
    root = spans[root_id]
    if root.end is None:
        raise ValueError(f"span {root_id} ({root.kind}) never closed")
    if children is None:
        children = children_of(spans)
    segments: list[PathSegment] = []
    visited: set[int] = set()
    current = root
    cursor = root.end
    while True:
        visited.add(current.sid)
        # Inputs: the recorded cause plus structural children; viable ones
        # finished inside (current.start, cursor] — i.e. they could have
        # been the thing current was last waiting on.
        candidates: list[SpanNode] = []
        cause = spans.get(current.cause)
        if cause is not None:
            candidates.append(cause)
        candidates.extend(children.get(current.sid, ()))
        viable = [
            node
            for node in candidates
            if node.sid not in visited
            and node.end is not None
            and current.start < node.end <= cursor
        ]
        if viable:
            blocker = max(viable, key=lambda n: (n.end, n.sid))
            assert blocker.end is not None
            if cursor > blocker.end:
                segments.append(PathSegment(current, blocker.end, cursor))
            current = blocker
            cursor = blocker.end
            continue
        # Nothing blocked current before the cursor: it owns the interval
        # back to its own start (clamped to the walk's window), then the
        # walk climbs to whatever opened it.
        start = max(current.start, root.start)
        if cursor > start:
            segments.append(PathSegment(current, start, cursor))
        cursor = start
        if cursor <= root.start:
            return segments
        parent = spans.get(current.parent)
        if parent is None:
            # Walk surface exhausted without reaching the window start
            # (a cause link escaped the root's subtree): absorb the
            # remainder into the root so the telescoping still holds.
            segments.append(PathSegment(root, root.start, cursor))
            return segments
        # Climbing may revisit ancestors already on the path — that is
        # fine (``visited`` only gates descents, so the walk never
        # re-enters a span it already attributed): parent ids are always
        # smaller than child ids, so climb chains terminate.
        current = parent


def path_bytes(segments: Iterable[PathSegment]) -> int:
    """Wire bytes carried by the spans on a critical path."""
    return sum(seg.span.size for seg in segments)


def _subtree_reduce(
    node: SpanNode, children: dict[int, list[SpanNode]]
) -> tuple[int, int]:
    """``(bytes, wire messages)`` summed over a span's whole subtree."""
    total_bytes = 0
    total_msgs = 0
    stack = [node]
    while stack:
        span = stack.pop()
        if span.kind == "wire.msg":
            total_bytes += span.size
            total_msgs += 1
        stack.extend(children.get(span.sid, ()))
    return total_bytes, total_msgs


def per_phase_attribution(
    spans: dict[int, SpanNode],
    children: dict[int, list[SpanNode]] | None = None,
) -> list[dict[str, Any]]:
    """One row per protocol phase span: latency plus subtree bytes.

    ``sessions`` counts the aggregation sessions issued inside the phase
    (recovery re-issues show up as extra sessions on the same phase).
    """
    if children is None:
        children = children_of(spans)
    rows = []
    for node in sorted(spans.values(), key=lambda n: n.sid):
        if node.kind not in PHASE_KINDS:
            continue
        total_bytes, total_msgs = _subtree_reduce(node, children)
        n_sessions = sum(
            1 for child in children.get(node.sid, ()) if child.kind == "agg.session"
        )
        rows.append(
            {
                "phase": node.kind,
                "status": node.status,
                "sim time": node.duration,
                "sessions": n_sessions,
                "messages": total_msgs,
                "bytes": total_bytes,
            }
        )
    return rows


def per_level_attribution(
    spans: dict[int, SpanNode],
    children: dict[int, list[SpanNode]] | None = None,
) -> list[dict[str, Any]]:
    """Convergecast cost by hierarchy depth, from ``agg.node`` spans.

    ``bytes`` counts the wire spans *directly caused* by each node span
    (its request fan-out and its reply), so levels partition the traffic
    rather than double-counting whole subtrees.
    """
    if children is None:
        children = children_of(spans)
    levels: dict[int, dict[str, Any]] = {}
    for node in spans.values():
        if node.kind != "agg.node":
            continue
        depth = int(node.fields.get("depth", -1))
        row = levels.get(depth)
        if row is None:
            row = levels[depth] = {
                "depth": depth,
                "nodes": 0,
                "errors": 0,
                "sim time": 0.0,
                "max time": 0.0,
                "bytes": 0,
            }
        row["nodes"] += 1
        if node.status != "ok":
            row["errors"] += 1
        row["sim time"] += node.duration
        row["max time"] = max(row["max time"], node.duration)
        row["bytes"] += sum(
            child.size
            for child in children.get(node.sid, ())
            if child.kind == "wire.msg"
        )
    return [levels[d] for d in sorted(levels)]


def status_summary(spans: dict[int, SpanNode]) -> dict[str, int]:
    """Span counts by close status (``open`` = never closed)."""
    out: dict[str, int] = {}
    for node in spans.values():
        out[node.status] = out.get(node.status, 0) + 1
    return out
