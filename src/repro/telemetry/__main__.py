"""Command-line run-report tool for JSONL traces.

Usage::

    python -m repro.telemetry run-report trace.jsonl [--top 5]
    python -m repro.telemetry kinds trace.jsonl
    python -m repro.telemetry export-chrome trace.jsonl -o trace.chrome.json

``run-report`` (alias ``report``) prints the full run report: per-phase
simulated/wall time, bytes and messages by cost category (the paper's
Figure 5-style cost split), a message-latency histogram, the heaviest
senders, and — when the trace carries causal spans — per-session
critical paths with per-phase and per-level attribution.  ``kinds``
lists every event kind in the trace with its count — a quick way to see
what a run actually did.  ``export-chrome`` converts the spans into a
Chrome trace-event file loadable in https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.report import build_report, render_report
from repro.telemetry.sink import iter_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect JSONL telemetry traces produced by repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report_parser = sub.add_parser(
        "run-report", aliases=["report"], help="print the full run report"
    )
    report_parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")
    report_parser.add_argument(
        "--top", type=int, default=5, help="how many heaviest peers to list"
    )

    kinds_parser = sub.add_parser("kinds", help="list event kinds with counts")
    kinds_parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")

    chrome_parser = sub.add_parser(
        "export-chrome",
        help="export causal spans as a Perfetto-loadable Chrome trace",
    )
    chrome_parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")
    chrome_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <trace>.chrome.json; only valid with "
        "a single input trace)",
    )

    args = parser.parse_args(argv)
    if args.command == "export-chrome" and args.output and len(args.trace) > 1:
        parser.error("--output requires a single input trace")
    for i, path in enumerate(args.trace):
        if i:
            print()
        try:
            report = build_report(iter_trace(path), path=path)
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 1
        if args.command in ("run-report", "report"):
            print(render_report(report, top_k=args.top))
        elif args.command == "export-chrome":
            from repro.telemetry.chrome import export_chrome

            out = args.output or f"{path}.chrome.json"
            try:
                written = export_chrome(report.spans, out)
            except OSError as error:
                print(f"cannot write {out}: {error}", file=sys.stderr)
                return 1
            print(f"{out}: {written} events from {len(report.spans)} spans")
        else:
            print(f"Trace: {path} ({report.events} events)")
            width = max((len(k) for k in report.kinds), default=0)
            for kind in sorted(report.kinds):
                print(f"  {kind.ljust(width)}  {report.kinds[kind]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
