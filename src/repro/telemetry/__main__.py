"""Command-line run-report tool for JSONL traces.

Usage::

    python -m repro.telemetry report trace.jsonl [--top 5]
    python -m repro.telemetry kinds trace.jsonl

``report`` prints the full run report: per-phase simulated/wall time,
bytes and messages by cost category (the paper's Figure 5-style cost
split), a message-latency histogram, and the heaviest senders.  ``kinds``
lists every event kind in the trace with its count — a quick way to see
what a run actually did.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.report import build_report, render_report
from repro.telemetry.sink import iter_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect JSONL telemetry traces produced by repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report_parser = sub.add_parser("report", help="print the full run report")
    report_parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")
    report_parser.add_argument(
        "--top", type=int, default=5, help="how many heaviest peers to list"
    )

    kinds_parser = sub.add_parser("kinds", help="list event kinds with counts")
    kinds_parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")

    args = parser.parse_args(argv)
    for i, path in enumerate(args.trace):
        if i:
            print()
        try:
            report = build_report(iter_trace(path), path=path)
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 1
        if args.command == "report":
            print(render_report(report, top_k=args.top))
        else:
            print(f"Trace: {path} ({report.events} events)")
            width = max((len(k) for k in report.kinds), default=0)
            for kind in sorted(report.kinds):
                print(f"  {kind.ljust(width)}  {report.kinds[kind]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
