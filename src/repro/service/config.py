"""Configuration of the standing monitoring service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceConfig:
    """How the monitoring service schedules, retries, and degrades.

    Attributes
    ----------
    epoch_interval:
        Sim time between scheduled epoch starts (the monitoring cadence).
    deadline:
        Sim-time budget per epoch, measured from its scheduled start.  An
        epoch that cannot commit within it is abandoned and served
        degraded; the budget must leave room inside ``epoch_interval`` so
        a late epoch never eats its successor's slot.
    max_attempts:
        Attempts per epoch before giving up early (the deadline still
        bounds the total even if attempts remain).
    retry_backoff:
        Settle delay before the first retry (lets in-flight repair
        traffic — failovers, re-adoptions — land before re-asking).
    backoff_factor:
        Multiplier on the settle delay per further retry.
    min_coverage:
        Coverage floor for commit: every phase of the attempt must cover
        at least this fraction of the peers live at its start.  1.0 (the
        default) demands full coverage — the exactness gate.
    max_staleness:
        The service's advertised staleness bound, in epochs.  Serving an
        answer older than this is a contract violation: it is still
        served (never block), but counted and traced.
    rebaseline_after:
        Consecutive abandoned epochs after which the next attempt
        escalates to a dense re-baseline, re-anchoring the root vector to
        the live population instead of chasing deltas that keep failing.
    """

    epoch_interval: float = 240.0
    deadline: float = 180.0
    max_attempts: int = 3
    retry_backoff: float = 20.0
    backoff_factor: float = 2.0
    min_coverage: float = 1.0
    max_staleness: int = 8
    rebaseline_after: int = 3

    def __post_init__(self) -> None:
        if self.epoch_interval <= 0:
            raise ConfigurationError(
                f"epoch_interval must be positive, got {self.epoch_interval}"
            )
        if not 0 < self.deadline <= self.epoch_interval:
            raise ConfigurationError(
                f"deadline must be in (0, epoch_interval], got {self.deadline}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )
        if not 0 < self.min_coverage <= 1.0:
            raise ConfigurationError(
                f"min_coverage must be in (0, 1], got {self.min_coverage}"
            )
        if self.max_staleness < 1:
            raise ConfigurationError(
                f"max_staleness must be at least 1 epoch, got {self.max_staleness}"
            )
        if self.rebaseline_after < 1:
            raise ConfigurationError(
                f"rebaseline_after must be at least 1, got {self.rebaseline_after}"
            )

    def delay_for(self, attempt: int) -> float:
        """Settle delay before retry number ``attempt`` (1-based)."""
        return self.retry_backoff * self.backoff_factor ** (attempt - 1)
