"""The standing monitoring service: schedule, retry, commit or degrade.

:class:`MonitorService` supervises a :class:`ContinuousNetFilter` as a
long-lived query.  Each scheduled epoch it opens an
:class:`~repro.core.continuous.EpochAttempt` and drives the three
convergecasts under a per-epoch deadline; an attempt that loses its root,
misses the deadline, falls below the coverage floor, or sees the live set
change mid-flight is **abandoned** (nothing committed, no peer ledger
advanced) and retried after a settle backoff.  An epoch whose deadline
expires with no committed attempt ends **degraded**: the root keeps
serving the newest committed result, flagged with an honest
``staleness_epochs`` bound — the service never blocks and never fabricates
a fresh answer it did not compute.

After ``rebaseline_after`` consecutive degraded epochs the next attempt
escalates to a dense re-baseline, re-anchoring the root's group vector to
the live population instead of chasing deltas through a membership the
committed ledgers no longer describe; peers revived later resync off the
new baseline (see :mod:`repro.core.continuous`).

Any peer can query the service over the wire
(:meth:`MonitorService.query_from`): a ``MonitorQueryPayload`` to the
root is answered with the current :class:`MonitorAnswer`, degraded or
not.
"""

from __future__ import annotations

from typing import Callable

from repro.core.continuous import LEGACY_DENSE, ContinuousNetFilter, EpochReport
from repro.core.netfilter import NetFilterResult, totals_spec
from repro.core.verification import HeavyGroups
from repro.items.itemset import LocalItemSet
from repro.metrics.breakdown import CostBreakdown
from repro.net.message import Message
from repro.net.wire import CostCategory
from repro.service.answer import EpochOutcome, MonitorAnswer
from repro.service.config import ServiceConfig
from repro.service.payloads import MonitorAnswerPayload, MonitorQueryPayload


class MonitorService:
    """Run a continuous monitor as a deadline-driven standing service.

    Examples
    --------
    The essential shape (see ``repro.experiments.soak`` for the full
    fault-composed harness)::

        monitor = ContinuousNetFilter(config, engine, decay=DecayConfig())
        service = MonitorService(monitor, ServiceConfig(epoch_interval=240))
        outcomes = service.run(epochs=50, before_epoch=apply_stream)
        service.answer()           # newest answer, honest staleness bound
        service.query_from(peer=7) # the same answer over the wire
    """

    def __init__(
        self, monitor: ContinuousNetFilter, config: ServiceConfig | None = None
    ) -> None:
        self.monitor = monitor
        self.config = config or ServiceConfig()
        self.engine = monitor.engine
        self.network = self.engine.network
        self.sim = self.engine.sim
        #: One entry per scheduled epoch, committed or degraded.
        self.outcomes: list[EpochOutcome] = []
        #: Wall epoch currently (or most recently) being served.
        self.current_epoch = -1
        self._last_report: EpochReport | None = None
        self._consecutive_degraded = 0
        self._client_answers: dict[int, MonitorAnswer] = {}
        self._listeners: list[Callable[[EpochOutcome], None]] = []
        for peer in self.network.live_peers():
            self._install(peer)
        # fail() wipes a peer's handler table; re-install on every revive.
        self.network.on_join(self._install)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def answer(self, epoch: int | None = None) -> MonitorAnswer:
        """The answer served right now, for wall epoch ``epoch`` (default:
        the current one).  Always returns — degraded with a staleness
        bound when that epoch has no committed result of its own."""
        if epoch is None:
            epoch = self.current_epoch
        report = self._last_report
        now = self.sim.now
        if report is None:
            return MonitorAnswer(
                epoch=epoch,
                committed_epoch=-1,
                degraded=True,
                staleness_epochs=epoch + 1,
                threshold=0.0,
                frequent=LocalItemSet.empty(),
                grand_total=0.0,
                served_at=now,
            )
        staleness = max(epoch - report.epoch, 0)
        return MonitorAnswer(
            epoch=epoch,
            committed_epoch=report.epoch,
            degraded=staleness > 0,
            staleness_epochs=staleness,
            threshold=report.result.threshold,
            frequent=report.result.frequent,
            grand_total=report.faded_total,
            served_at=now,
        )

    def subscribe(self, listener: Callable[[EpochOutcome], None]) -> None:
        """Call ``listener`` with every epoch outcome as it concludes
        (committed or degraded).  Consumers like the query front door use
        this to keep a warm cache of the newest honest answer."""
        self._listeners.append(listener)

    def query_from(self, peer: int, timeout: float = 120.0) -> MonitorAnswer | None:
        """Ask the root for the current answer over the wire, from
        ``peer``; drives the simulation until the reply lands or
        ``timeout`` sim time passes.  Returns ``None`` on timeout (root
        unreachable)."""
        root = self.engine.hierarchy.root
        self._client_answers.pop(peer, None)
        self.network.node(peer).send(root, MonitorQueryPayload(requester=peer))
        deadline = self.sim.now + timeout
        while peer not in self._client_answers:
            if self.sim.now >= deadline or not self.sim.step():
                break
        return self._client_answers.get(peer)

    # ------------------------------------------------------------------
    # The epoch scheduler
    # ------------------------------------------------------------------
    def run(
        self,
        epochs: int,
        before_epoch: Callable[[int], None] | None = None,
    ) -> list[EpochOutcome]:
        """Run ``epochs`` scheduled monitoring epochs from the current sim
        time.  ``before_epoch(epoch)`` runs at each epoch's scheduled
        start — the hook workload streams apply new arrivals through.

        Returns the outcomes of exactly these epochs (all outcomes ever
        are on :attr:`outcomes`)."""
        start = self.sim.now
        first = self.current_epoch + 1
        produced: list[EpochOutcome] = []
        for k in range(epochs):
            target = start + k * self.config.epoch_interval
            if self.sim.now < target:
                self.sim.run(until=target)
            epoch = first + k
            self.current_epoch = epoch
            if before_epoch is not None:
                before_epoch(epoch)
            outcome = self.run_one(epoch)
            self.outcomes.append(outcome)
            produced.append(outcome)
        return produced

    def run_one(self, epoch: int) -> EpochOutcome:
        """Attempt wall epoch ``epoch`` until commit, attempt budget, or
        deadline; always returns an outcome with a served answer."""
        cfg = self.config
        telemetry = self.sim.telemetry
        deadline_at = self.sim.now + cfg.deadline
        self.current_epoch = max(self.current_epoch, epoch)
        attempts = 0
        report: EpochReport | None = None
        reason = "deadline"
        with telemetry.span("service.epoch", epoch=epoch) as span:
            while report is None and attempts < cfg.max_attempts:
                if attempts and self.sim.now >= deadline_at:
                    break
                attempts += 1
                force_dense = self._consecutive_degraded >= cfg.rebaseline_after
                report, reason = self._attempt_epoch(epoch, deadline_at, force_dense)
                if report is None:
                    telemetry.registry.counter("service.abandons").inc()
                    telemetry.emit(
                        "service.abandon",
                        epoch=epoch,
                        attempt=attempts,
                        reason=reason,
                    )
                    if attempts < cfg.max_attempts:
                        settle = min(
                            cfg.delay_for(attempts),
                            max(deadline_at - self.sim.now, 0.0),
                        )
                        if settle > 0:
                            self.sim.run(until=self.sim.now + settle)
            span["committed"] = report is not None
            span["attempts"] = attempts
        return self._conclude(epoch, report, attempts, reason)

    def _conclude(
        self, epoch: int, report: EpochReport | None, attempts: int, reason: str
    ) -> EpochOutcome:
        telemetry = self.sim.telemetry
        cfg = self.config
        if report is not None:
            self._last_report = report
            self._consecutive_degraded = 0
            telemetry.registry.counter("service.commits").inc()
            telemetry.emit(
                "service.commit",
                epoch=epoch,
                mode=report.mode,
                frequent=len(report.result.frequent),
                changed_groups=report.changed_groups,
                resyncs=report.resyncs,
            )
            reason = ""
        else:
            self._consecutive_degraded += 1
            telemetry.registry.counter("service.degraded_epochs").inc()
        answer = self.answer(epoch)
        if answer.degraded:
            telemetry.emit(
                "service.degraded",
                epoch=epoch,
                committed_epoch=answer.committed_epoch,
                staleness_epochs=answer.staleness_epochs,
                reason=reason,
            )
        if answer.staleness_epochs > cfg.max_staleness:
            telemetry.registry.counter("service.staleness_violations").inc()
        epochs_ts = telemetry.epochs
        if epochs_ts is not None:
            epochs_ts.record("service.committed", 0.0 if answer.degraded else 1.0)
            epochs_ts.record(
                "service.staleness_epochs", float(answer.staleness_epochs)
            )
        outcome = EpochOutcome(
            epoch=epoch,
            committed=report is not None,
            attempts=attempts,
            answer=answer,
            report=report,
            reason=reason,
        )
        for listener in self._listeners:
            listener(outcome)
        return outcome

    # ------------------------------------------------------------------
    # One attempt
    # ------------------------------------------------------------------
    def _attempt_epoch(
        self, epoch: int, deadline_at: float, force_dense: bool
    ) -> tuple[EpochReport | None, str]:
        monitor = self.monitor
        engine = self.engine
        network = self.network
        cfg = self.config
        if not network.node(engine.hierarchy.root).alive:
            return None, "root_dead"
        live_at_start = tuple(network.live_peers())
        accounting = network.accounting
        model = network.size_model
        before = accounting.bytes_by_category()
        started_at = self.sim.now
        attempt = monitor.begin_attempt(epoch=epoch, force_dense=force_dense)
        telemetry = self.sim.telemetry
        with telemetry.span("service.attempt", epoch=epoch, mode=attempt.mode) as span:
            handles = []
            grand_total: float | None = None
            n_participants = 0
            if monitor.decay is None:
                totals = self._run_phase(totals_spec(), None, deadline_at)
                if totals is None or totals.failed:
                    attempt.abandon()
                    return None, "deadline" if totals is None else "root_lost"
                handles.append(totals)
                grand_total, n_participants = totals.value
            anchor = None if attempt.mode == LEGACY_DENSE else attempt.anchor
            phase1 = self._run_phase(attempt.phase1_spec(), anchor, deadline_at)
            if phase1 is None or phase1.failed:
                attempt.abandon()
                return None, "deadline" if phase1 is None else "root_lost"
            handles.append(phase1)
            preview = attempt.fold(phase1.value, grand_total=grand_total)
            if monitor.decay is not None:
                n_participants = phase1.covered
            heavy = HeavyGroups.from_aggregate(
                monitor.bank, preview.group_totals, preview.threshold
            )
            verify = self._run_phase(attempt.verification_spec(), heavy, deadline_at)
            if verify is None or verify.failed:
                attempt.abandon()
                return None, "deadline" if verify is None else "root_lost"
            handles.append(verify)
            if tuple(network.live_peers()) != live_at_start:
                attempt.abandon()
                return None, "membership_changed"
            coverage = min(handle.coverage for handle in handles)
            complete = all(handle.complete for handle in handles)
            gated = not complete if cfg.min_coverage >= 1.0 else coverage < cfg.min_coverage
            if gated:
                attempt.abandon()
                return None, "coverage"
            span["coverage"] = coverage

            candidates: LocalItemSet = verify.value
            frequent = candidates.filter_values(preview.threshold)
            after = accounting.bytes_by_category()
            population = network.n_peers
            diff = {
                category: after.get(category, 0) - before.get(category, 0)
                for category in sorted(set(before) | set(after))
            }
            breakdown = CostBreakdown(
                filtering=diff.get(CostCategory.FILTERING, 0) / population,
                dissemination=diff.get(CostCategory.DISSEMINATION, 0) / population,
                aggregation=diff.get(CostCategory.AGGREGATION, 0) / population,
                control=diff.get(CostCategory.CONTROL, 0) / population,
            )
            result = NetFilterResult(
                frequent=frequent,
                candidates=candidates,
                heavy_groups=heavy,
                threshold=preview.threshold,
                grand_total=int(preview.grand_total),
                n_participants=int(n_participants),
                breakdown=breakdown,
                avg_candidates_per_peer=(
                    diff.get(CostCategory.AGGREGATION, 0)
                    / model.pair_bytes
                    / population
                ),
                config=monitor.config,
                elapsed_time=self.sim.now - started_at,
                coverage=coverage,
                complete=complete,
            )
            report = attempt.commit(result, live_at_start)
            span["frequent"] = len(frequent)
        return report, ""

    def _run_phase(self, spec, request_data, deadline_at):  # type: ignore[no-untyped-def]
        """One phase under the epoch deadline.  Returns ``None`` when the
        deadline expired with the session still in flight (the caller
        abandons the attempt); a failed handle means the root was lost."""
        engine = self.engine
        if not self.network.node(engine.hierarchy.root).alive:
            return engine.dead_root_session(spec)
        handle = engine.start(spec, request_data)
        engine.drive_session(handle, deadline=deadline_at)
        if not handle.done:
            return None
        return handle

    # ------------------------------------------------------------------
    # Wire serving
    # ------------------------------------------------------------------
    def _install(self, peer: int) -> None:
        node = self.network.node(peer)
        node.register_handler(MonitorQueryPayload, self._on_query)
        node.register_handler(MonitorAnswerPayload, self._on_answer)

    def _on_query(self, message: Message) -> None:
        assert isinstance(message.payload, MonitorQueryPayload)
        node = self.network.node(message.recipient)
        if message.recipient != self.engine.hierarchy.root:
            # A stale client aimed at a deposed/dead root's successor
            # window: drop, the client retries against the current root.
            return
        answer = self.answer()
        self.sim.telemetry.emit(
            "service.answer",
            requester=message.payload.requester,
            epoch=answer.epoch,
            committed_epoch=answer.committed_epoch,
            degraded=answer.degraded,
            staleness_epochs=answer.staleness_epochs,
        )
        node.send(message.payload.requester, MonitorAnswerPayload(answer=answer))

    def _on_answer(self, message: Message) -> None:
        assert isinstance(message.payload, MonitorAnswerPayload)
        self._client_answers[message.recipient] = message.payload.answer
