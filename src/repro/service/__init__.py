"""The standing monitoring service layer (ROADMAP item 3).

Supervises :class:`~repro.core.continuous.ContinuousNetFilter` as a
long-lived query: scheduled epochs with deadlines, retry with backoff,
coverage-gated two-phase commit, and degraded-mode serving with honest
staleness bounds.  See :mod:`repro.service.monitor`.
"""

from repro.service.answer import EpochOutcome, MonitorAnswer
from repro.service.config import ServiceConfig
from repro.service.monitor import MonitorService
from repro.service.payloads import MonitorAnswerPayload, MonitorQueryPayload

__all__ = [
    "EpochOutcome",
    "MonitorAnswer",
    "MonitorAnswerPayload",
    "MonitorQueryPayload",
    "MonitorService",
    "ServiceConfig",
]
