"""Wire payloads of the monitoring service's query/answer exchange."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.codec import register_payload
from repro.net.message import Payload
from repro.net.wire import CostCategory, SizeModel
from repro.service.answer import MonitorAnswer


@register_payload
@dataclass(frozen=True)
class MonitorQueryPayload(Payload):
    """A client peer asks the root for the current monitoring answer."""

    requester: int
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@register_payload
@dataclass(frozen=True)
class MonitorAnswerPayload(Payload):
    """The root's reply: the served answer, fresh or degraded.

    Priced as the frequent (id, value) pairs plus three scalars (epoch
    stamp, staleness bound, threshold) — what a real deployment would
    serialize.
    """

    answer: MonitorAnswer
    category = CostCategory.DISSEMINATION

    def body_bytes(self, model: SizeModel) -> int:
        return 3 * model.aggregate_bytes + model.pair_bytes * len(self.answer.frequent)
