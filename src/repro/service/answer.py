"""What the monitoring service serves and records per epoch."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.continuous import EpochReport
from repro.items.itemset import LocalItemSet


@dataclass(frozen=True)
class MonitorAnswer:
    """The answer the root serves for one wall epoch.

    A *fresh* answer carries the result committed this epoch
    (``degraded=False``, ``staleness_epochs=0``).  A *degraded* answer
    re-serves the newest committed result with an honest staleness bound:
    the frequent set reflects data as of ``committed_epoch``, which is
    ``staleness_epochs`` monitoring epochs ago.  Before anything has ever
    committed, a degraded answer has ``committed_epoch=-1`` and an empty
    frequent set — explicitly "no data yet", never a fabricated result.
    """

    epoch: int
    committed_epoch: int
    degraded: bool
    staleness_epochs: int
    threshold: float
    frequent: LocalItemSet
    grand_total: float
    served_at: float


@dataclass(frozen=True)
class EpochOutcome:
    """One scheduled epoch's bookkeeping: what happened and what was
    served."""

    epoch: int
    committed: bool
    attempts: int
    answer: MonitorAnswer
    #: The committed report, when this epoch committed one.
    report: EpochReport | None = None
    #: Why the last attempt failed, when the epoch ended degraded.
    reason: str = ""
