"""Heartbeats with a DEPTH counter, and neighbour failure detection.

Section III-A.3 of the paper: peers periodically exchange heartbeat
messages with their overlay neighbours; the messages are extended with a
``DEPTH`` counter (the sender's depth in the aggregation hierarchy) so that
the hierarchy can be repaired after churn — a peer whose depth is
"infinite" reattaches under the first neighbour it hears from with a finite
depth.

The service is deliberately decoupled from the hierarchy: it takes a
``depth_provider`` callback and emits ``on_heartbeat`` / ``on_neighbor_down``
events.  The hierarchy-maintenance service subscribes to those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel
from repro.sim.timers import PeriodicTimer, Timeout
from repro.types import INFINITE_DEPTH


@register_payload
@dataclass(frozen=True)
class HeartbeatPayload(Payload):
    """A heartbeat carrying the sender's hierarchy depth (Section III-A.3)."""

    depth: int
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        # The DEPTH counter rides in the (pre-existing) heartbeat; we charge
        # one aggregate-sized integer for it.
        return model.aggregate_bytes


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing of the heartbeat protocol.

    Attributes
    ----------
    interval:
        Period between heartbeats from one peer.
    timeout:
        Silence after which a neighbour is declared failed.  Must exceed
        the interval (typically 3-4x) or live neighbours get falsely
        suspected whenever jitter stretches a gap.
    jitter:
        Per-tick jitter so peers do not phase-lock.
    """

    interval: float = 10.0
    timeout: float = 35.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.timeout <= self.interval:
            raise ValueError("heartbeat timeout must exceed the interval")


class HeartbeatService:
    """Per-node heartbeat emitter and neighbour failure detector.

    Parameters
    ----------
    node:
        The node this service runs on.
    config:
        Heartbeat timing.
    depth_provider:
        Returns the node's current hierarchy depth, embedded in every
        heartbeat (``INFINITE_DEPTH`` while detached).
    on_heartbeat:
        Called ``(neighbor, depth)`` for every received heartbeat.
    on_neighbor_down:
        Called ``(neighbor,)`` when a neighbour times out.
    """

    def __init__(
        self,
        node: Node,
        config: HeartbeatConfig,
        depth_provider: Callable[[], int] | None = None,
        on_heartbeat: Callable[[int, int], None] | None = None,
        on_neighbor_down: Callable[[int], None] | None = None,
    ) -> None:
        self._node = node
        self._config = config
        self._depth_provider = depth_provider or (lambda: INFINITE_DEPTH)
        self._on_heartbeat = on_heartbeat
        self._on_neighbor_down = on_neighbor_down
        self._watchdogs: dict[int, Timeout] = {}
        self.last_known_depth: dict[int, int] = {}

        sim = node.network.sim
        node.register_handler(HeartbeatPayload, self._handle_heartbeat)
        self._timer = PeriodicTimer(
            sim,
            config.interval,
            self._beat,
            jitter=config.jitter,
            start_immediately=True,
        )
        node.on_failure(self.stop)
        # Arm a watchdog per current neighbour so a neighbour that dies
        # before ever beating is still detected.
        for neighbor in node.network.topology.adjacency[node.peer_id]:
            self._arm_watchdog(neighbor)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _beat(self) -> None:
        depth = self._depth_provider()
        payload = HeartbeatPayload(depth=depth)
        for neighbor in self._node.network.topology.adjacency[self._node.peer_id]:
            self._node.send(neighbor, payload)

    # ------------------------------------------------------------------
    # Receiving / detection
    # ------------------------------------------------------------------
    def _handle_heartbeat(self, message: Message) -> None:
        payload = message.payload
        assert isinstance(payload, HeartbeatPayload)
        neighbor = message.sender
        self.last_known_depth[neighbor] = payload.depth
        self._arm_watchdog(neighbor)
        if self._on_heartbeat is not None:
            self._on_heartbeat(neighbor, payload.depth)

    def _arm_watchdog(self, neighbor: int) -> None:
        watchdog = self._watchdogs.get(neighbor)
        if watchdog is None:
            watchdog = Timeout(
                self._node.network.sim,
                self._config.timeout,
                lambda n=neighbor: self._neighbor_down(n),
            )
            self._watchdogs[neighbor] = watchdog
        watchdog.reset()

    def _neighbor_down(self, neighbor: int) -> None:
        if not self._node.alive:
            return
        self.last_known_depth.pop(neighbor, None)
        network = self._node.network
        sim = network.sim
        # Detection latency: how long after the actual crash the watchdog
        # fired.  Only known when the failure went through the network's
        # bookkeeping (a false suspicion has no crash time).
        failed_at = network.failed_at.get(neighbor)
        detect_latency = None if failed_at is None else sim.now - failed_at
        if detect_latency is not None:
            sim.telemetry.registry.histogram("net.failure_detect_latency").observe(
                detect_latency
            )
        sim.trace.emit(
            sim.now,
            "heartbeat.neighbor_down",
            peer=self._node.peer_id,
            neighbor=neighbor,
            detect_latency=detect_latency,
        )
        if self._on_neighbor_down is not None:
            self._on_neighbor_down(neighbor)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Silence the service (node failed or protocol torn down)."""
        self._timer.stop()
        for watchdog in self._watchdogs.values():
            watchdog.cancel()
