"""Heartbeats with DEPTH and GENERATION counters, and failure detection.

Section III-A.3 of the paper: peers periodically exchange heartbeat
messages with their overlay neighbours; the messages are extended with a
``DEPTH`` counter (the sender's depth in the aggregation hierarchy) so that
the hierarchy can be repaired after churn — a peer whose depth is
"infinite" reattaches under the first neighbour it hears from with a finite
depth.  On top of the paper's design, heartbeats also carry the sender's
hierarchy *generation* (the epoch fencing counter of
:mod:`repro.hierarchy.generation`), so repair decisions can tell current
state from stale state left over by an earlier build or root failover.

Failure detection comes in two flavours:

* **fixed-timeout** (the legacy mode, ``adaptive=False``): a neighbour is
  suspected after ``timeout`` units of silence, full stop.  Simple, but
  any injected delay burst longer than the timeout falsely suspects every
  live neighbour at once and triggers a spurious invalidation cascade.
* **adaptive** (the default): a phi-accrual-style detector.  Each receiver
  keeps the recent inter-arrival gaps per neighbour and suspects only
  after ``mean + suspicion_threshold × spread`` of silence, where the
  spread is the observed gap deviation (floored by the configured jitter
  so a perfectly quiet history cannot collapse the margin).  The deadline
  never drops below the fixed ``timeout``, so on a quiet network the two
  modes behave identically — the adaptive detector only ever *stretches*
  its patience after observing jittery links.  All state is per-neighbour
  and advanced purely by message arrivals, so detection is deterministic.

The service is deliberately decoupled from the hierarchy: it takes
``depth_provider`` / ``generation_provider`` callbacks and emits
``on_heartbeat`` / ``on_neighbor_down`` events.  The hierarchy-maintenance
service subscribes to those.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.node import Node
from repro.net.wire import CostCategory, SizeModel
from repro.sim.timers import PeriodicTimer, Timeout
from repro.types import INFINITE_DEPTH


@register_payload
@dataclass(frozen=True)
class HeartbeatPayload(Payload):
    """A heartbeat carrying the sender's hierarchy depth (Section III-A.3),
    hierarchy generation (the fencing epoch; 0 = no claim) and claimed
    upstream peer (``None`` for a root or detached sender).

    The upstream claim lets a parent notice a live child it wrongly
    dropped after a false suspicion and silently re-adopt it — without
    it, the child (which never learns it was dropped) would stay missing
    from the parent's downstream set forever.
    """

    depth: int
    generation: int = 0
    upstream: int | None = None
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        # The DEPTH, GENERATION and UPSTREAM counters ride in the
        # (pre-existing) heartbeat; we charge one aggregate-sized integer
        # for each.
        return 3 * model.aggregate_bytes


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing of the heartbeat protocol and its failure detector.

    Attributes
    ----------
    interval:
        Period between heartbeats from one peer.
    timeout:
        Silence after which a neighbour is declared failed.  Must exceed
        the interval (typically 3-4x) or live neighbours get falsely
        suspected whenever jitter stretches a gap.  In adaptive mode this
        is the *floor* of the suspicion deadline, never the ceiling.
    jitter:
        Per-tick jitter so peers do not phase-lock.
    adaptive:
        Use the accrual detector (default).  ``False`` restores the
        legacy fixed-timeout behaviour.
    suspicion_threshold:
        How many spreads of silence beyond the mean gap before suspicion
        (the accrual detector's sensitivity knob; higher = more patient).
    history_window:
        How many recent inter-arrival gaps to keep per neighbour.
    min_history:
        Gaps required before the adaptive deadline applies; until then
        the fixed ``timeout`` is used.
    """

    interval: float = 10.0
    timeout: float = 35.0
    jitter: float = 1.0
    adaptive: bool = True
    suspicion_threshold: float = 4.0
    history_window: int = 16
    min_history: int = 3

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.timeout <= self.interval:
            raise ValueError("heartbeat timeout must exceed the interval")
        if self.suspicion_threshold <= 0:
            raise ValueError("suspicion_threshold must be positive")
        if self.min_history < 1:
            raise ValueError("min_history must be at least 1")
        if self.history_window < self.min_history:
            raise ValueError("history_window must be >= min_history")


class HeartbeatService:
    """Per-node heartbeat emitter and neighbour failure detector.

    Parameters
    ----------
    node:
        The node this service runs on.
    config:
        Heartbeat timing and detector mode.
    depth_provider:
        Returns the node's current hierarchy depth, embedded in every
        heartbeat (``INFINITE_DEPTH`` while detached).
    generation_provider:
        Returns the node's current hierarchy generation, embedded in
        every heartbeat (0 when the node makes no generation claim).
    upstream_provider:
        Returns the node's current upstream peer (``None`` when the node
        is a root, detached, or makes no hierarchy claim), embedded in
        every heartbeat.
    on_heartbeat:
        Called ``(neighbor, depth, generation, upstream)`` for every
        received heartbeat.
    on_neighbor_down:
        Called ``(neighbor,)`` when a neighbour is suspected.
    """

    def __init__(
        self,
        node: Node,
        config: HeartbeatConfig,
        depth_provider: Callable[[], int] | None = None,
        generation_provider: Callable[[], int] | None = None,
        upstream_provider: Callable[[], int | None] | None = None,
        on_heartbeat: Callable[[int, int, int, int | None], None] | None = None,
        on_neighbor_down: Callable[[int], None] | None = None,
    ) -> None:
        self._node = node
        self._config = config
        self._depth_provider = depth_provider or (lambda: INFINITE_DEPTH)
        self._generation_provider = generation_provider or (lambda: 0)
        self._upstream_provider = upstream_provider or (lambda: None)
        self._on_heartbeat = on_heartbeat
        self._on_neighbor_down = on_neighbor_down
        self._watchdogs: dict[int, Timeout] = {}
        self.last_known_depth: dict[int, int] = {}
        self.last_known_generation: dict[int, int] = {}
        # Accrual-detector state: last arrival time and recent gaps, per
        # neighbour.  Advanced only by message arrivals — deterministic.
        self._last_arrival: dict[int, float] = {}
        self._gaps: dict[int, deque[float]] = {}

        sim = node.network.sim
        node.register_handler(HeartbeatPayload, self._handle_heartbeat)
        self._timer = PeriodicTimer(
            sim,
            config.interval,
            self._beat,
            jitter=config.jitter,
            start_immediately=True,
        )
        node.on_failure(self.stop)
        # Arm a watchdog per current neighbour so a neighbour that dies
        # before ever beating is still detected.
        for neighbor in node.network.topology.adjacency[node.peer_id]:
            self._arm_watchdog(neighbor)

    @property
    def active(self) -> bool:
        """Whether the service is still emitting heartbeats."""
        return self._timer.running

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _beat(self) -> None:
        payload = HeartbeatPayload(
            depth=self._depth_provider(),
            generation=self._generation_provider(),
            upstream=self._upstream_provider(),
        )
        for neighbor in self._node.network.topology.adjacency[self._node.peer_id]:
            self._node.send(neighbor, payload)

    def beat_now(self) -> None:
        """Send one immediate out-of-schedule heartbeat (used by the
        hierarchy layer to announce a root promotion without waiting an
        interval)."""
        self._beat()

    # ------------------------------------------------------------------
    # Receiving / detection
    # ------------------------------------------------------------------
    def _handle_heartbeat(self, message: Message) -> None:
        payload = message.payload
        assert isinstance(payload, HeartbeatPayload)
        neighbor = message.sender
        now = self._node.network.sim.now
        last = self._last_arrival.get(neighbor)
        if last is not None:
            gaps = self._gaps.get(neighbor)
            if gaps is None:
                gaps = deque(maxlen=self._config.history_window)
                self._gaps[neighbor] = gaps
            # Delayed messages can arrive out of order; a negative gap is
            # clamped — the reordering still shows up as spread.
            gaps.append(max(now - last, 0.0))
        self._last_arrival[neighbor] = now
        self.last_known_depth[neighbor] = payload.depth
        self.last_known_generation[neighbor] = payload.generation
        self._arm_watchdog(neighbor)
        if self._on_heartbeat is not None:
            self._on_heartbeat(
                neighbor, payload.depth, payload.generation, payload.upstream
            )

    def suspicion_deadline(self, neighbor: int) -> float:
        """How much silence this service tolerates from ``neighbor`` right
        now before suspecting it."""
        config = self._config
        if not config.adaptive:
            return config.timeout
        gaps = self._gaps.get(neighbor)
        if gaps is None or len(gaps) < config.min_history:
            return config.timeout
        mean = sum(gaps) / len(gaps)
        variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
        # Floor the spread so a perfectly regular history cannot collapse
        # the margin below what the configured jitter already implies.
        spread = max(math.sqrt(variance), config.jitter, 0.1 * mean)
        return max(config.timeout, mean + config.suspicion_threshold * spread)

    def _arm_watchdog(self, neighbor: int) -> None:
        watchdog = self._watchdogs.get(neighbor)
        if watchdog is None:
            watchdog = Timeout(
                self._node.network.sim,
                self._config.timeout,
                lambda n=neighbor: self._neighbor_down(n),
            )
            self._watchdogs[neighbor] = watchdog
        watchdog.reset(self.suspicion_deadline(neighbor))

    def _neighbor_down(self, neighbor: int) -> None:
        if not self._node.alive:
            return
        self.last_known_depth.pop(neighbor, None)
        self.last_known_generation.pop(neighbor, None)
        # Reset the arrival baseline but KEEP the learned gap history: a
        # suspicion may be false (delivery jitter, not a crash), and
        # discarding the history would snap the adaptive deadline back to
        # its bootstrap floor — the detector would false-suspect the same
        # jittery link forever instead of learning it once.
        self._last_arrival.pop(neighbor, None)
        network = self._node.network
        sim = network.sim
        # Detection latency: how long after the actual crash the watchdog
        # fired.  Only known when the failure went through the network's
        # bookkeeping (a false suspicion has no crash time).
        failed_at = network.failed_at.get(neighbor)
        detect_latency = None if failed_at is None else sim.now - failed_at
        if detect_latency is not None:
            sim.telemetry.registry.histogram("net.failure_detect_latency").observe(
                detect_latency
            )
        else:
            sim.telemetry.registry.counter("heartbeat.false_suspicions").inc()
        sim.trace.emit(
            sim.now,
            "heartbeat.neighbor_down",
            peer=self._node.peer_id,
            neighbor=neighbor,
            detect_latency=detect_latency,
        )
        if self._on_neighbor_down is not None:
            self._on_neighbor_down(neighbor)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Silence the service (node failed or protocol torn down)."""
        self._timer.stop()
        for watchdog in self._watchdogs.values():
            watchdog.cancel()
