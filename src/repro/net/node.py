"""The peer runtime.

A :class:`Node` is one peer: it holds the peer's local item set, its overlay
neighbour list, and a payload-type dispatch table that protocol *services*
(hierarchy builder, aggregation engine, heartbeat service, ...) register
handlers into.  Services are composable: each owns its payload types, so
two protocols never contend for the same handler slot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.items.itemset import LocalItemSet
from repro.net.message import Message, Payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.network import Network


class Node:
    """One peer in the simulated overlay.

    Attributes
    ----------
    peer_id:
        The peer's identifier (its index in the topology).
    items:
        The peer's local item set ``A_i`` with local values.
    alive:
        Whether the peer is currently up.  Failed peers receive nothing and
        their pending timers are cancelled through the registered failure
        hooks.
    """

    __slots__ = (
        "network",
        "peer_id",
        "items",
        "alive",
        "up_since",
        "_handlers",
        "_failure_hooks",
        "_transport_send",
    )

    def __init__(self, network: "Network", peer_id: int) -> None:
        self.network = network
        self.peer_id = peer_id
        self.items: LocalItemSet = LocalItemSet.empty()
        self.alive = True
        #: Simulation time of the most recent (re)start — root-failover
        #: successor election prefers the most stable (longest-up) peer.
        self.up_since: float = 0.0
        self._handlers: dict[type[Payload], Callable[[Message], None]] = {}
        # Bound once: node.send is called for every outgoing message and
        # the transport's send entry point never changes after wiring.
        self._transport_send = network.transport.send
        self._failure_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> list[int]:
        """The peer's current overlay neighbours (live peers only)."""
        return self.network.live_neighbors(self.peer_id)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, recipient: int, payload: Payload) -> None:
        """Send a payload to another peer.  No-op if this node is down
        (a dead peer cannot transmit)."""
        if not self.alive:
            return
        self._transport_send(self.peer_id, recipient, payload)

    def register_handler(
        self, payload_type: type[Payload], handler: Callable[[Message], None]
    ) -> None:
        """Install the handler for one payload type.

        Raises
        ------
        NetworkError
            If another service already claimed this payload type — silent
            handler replacement is how protocol bugs hide.
        """
        if payload_type in self._handlers:
            raise NetworkError(
                f"handler for {payload_type.__name__} already registered on "
                f"peer {self.peer_id}"
            )
        self._handlers[payload_type] = handler

    def unregister_handler(self, payload_type: type[Payload]) -> None:
        """Remove a handler (used when a one-shot protocol session ends)."""
        self._handlers.pop(payload_type, None)

    def deliver(self, message: Message) -> None:
        """Dispatch an incoming message to the registered handler.

        Unhandled payload types are dropped with a trace record rather than
        raising: in a churning network a message can legitimately arrive
        after the protocol session that expected it has been torn down.
        """
        if not self.alive:
            return
        handler = self._handlers.get(type(message.payload))
        if handler is None:
            self.network.sim.trace.emit(
                self.network.sim.now,
                "msg.unhandled",
                peer=self.peer_id,
                payload_kind=message.kind,
            )
            return
        handler(message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_failure(self, hook: Callable[[], None]) -> None:
        """Register a cleanup hook run when this node fails or leaves."""
        self._failure_hooks.append(hook)

    def fail(self) -> None:
        """Crash the node: it stops sending, receiving and timing."""
        if not self.alive:
            return
        self.alive = False
        for hook in self._failure_hooks:
            hook()
        # A crash wipes volatile protocol state: on revival, services are
        # re-installed from scratch by the network's join listeners.
        self._handlers.clear()
        self._failure_hooks.clear()
        sim = self.network.sim
        # Error-close any causal spans this peer still owns (in-flight
        # convergecast participations, root-side sessions): a crashed
        # peer's spans must end as error-tagged trees, not leak.
        sim.telemetry.spans.close_peer(self.peer_id)
        sim.trace.emit(sim.now, "node.failed", peer=self.peer_id)

    def revive(self) -> None:
        """Bring a failed node back up (a rejoin with the same identity).

        Protocol state is *not* restored — services observe the revival via
        the network's join notifications and re-integrate the peer.
        """
        if self.alive:
            return
        self.alive = True
        self.up_since = self.network.sim.now
        self.network.sim.trace.emit(
            self.network.sim.now, "node.revived", peer=self.peer_id
        )
