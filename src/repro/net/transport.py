"""Simulated point-to-point transport.

The transport models per-message latency (fixed plus optional uniform
jitter) and optional message loss, delivers payloads to live nodes, and is
the single place where bytes are priced and charged to the sender's cost
account.  Losing the destination (it failed or left) silently drops the
message — exactly what a UDP-style P2P overlay would observe — and the
protocols above are designed to survive that via timeouts and repair.

Two robustness hooks layer on top of that base model:

* **Fault injection** — :meth:`Transport.set_fault_hook` installs a single
  deterministic interception point consulted for every wire attempt (see
  :mod:`repro.faults`).  The hook can drop a message (link partitions,
  scripted drop bursts) or stretch its delivery latency, and the transport
  records what was done so fault runs can assert on what was lost.
* **Reliability** — an optional per-message ACK + bounded-retransmit
  scheme (:class:`ReliabilityConfig`) for control/aggregation traffic.
  Every reliable wire copy is charged like any other message (a
  retransmission costs real bytes), acknowledgements travel the same
  lossy links as data, duplicates created by lost ACKs are suppressed at
  the receiver, and the retransmit backoff is a deterministic exponential
  so runs replay bit-for-bit.

Every silently dropped message — dead/absent destination, random loss, or
fault injection — is additionally counted in the metrics registry under
``net.msgs_dropped.<reason>.<category>``, keyed by the payload's cost
category, so robustness experiments can assert on exactly what traffic
was lost.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.metrics.accounting import CostAccounting, MessageCell
from repro.metrics.registry import CounterMetric
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.wire import CostCategory, SizeModel
from repro.sim.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.node import Node

#: Fault-hook verdicts: deliver the message unchanged, drop it on the
#: floor, or deliver it after the returned extra delay.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"

#: A fault hook inspects ``(sender, recipient, payload)`` for one wire
#: attempt and returns ``(verdict, extra_delay)`` where the verdict is one
#: of :data:`DELIVER` / :data:`DROP` / :data:`DELAY`.  Hooks must be
#: deterministic functions of simulation state and named RNG streams.
FaultHook = Callable[[int, int, Payload], "tuple[str, float]"]


@dataclass(frozen=True)
class TransportConfig:
    """Delivery characteristics of the simulated links.

    Attributes
    ----------
    latency:
        Base one-hop delay in simulated time units.
    latency_jitter:
        Uniform jitter added per message, in ``[0, latency_jitter]``.
    loss_probability:
        Independent per-message drop probability (0 disables loss).
    """

    latency: float = 1.0
    latency_jitter: float = 0.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise NetworkError("latency must be non-negative")
        if self.latency_jitter < 0:
            raise NetworkError("latency_jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise NetworkError("loss_probability must be in [0, 1)")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Per-message ACK + bounded retransmit for selected traffic.

    Attributes
    ----------
    categories:
        Cost categories whose payloads are sent reliably.  Defaults to the
        convergecast/control categories; gossip traffic is redundant by
        design and stays fire-and-forget.
    exclude_kinds:
        Payload class names exempted even within a reliable category.
        Heartbeats are excluded by default: a late heartbeat is worthless
        (the next one supersedes it) and acking every heartbeat would
        double the steady-state control traffic.
    ack_timeout:
        Initial retransmit timeout.  Must exceed one round trip
        (``2 * (latency + latency_jitter)``) to avoid spurious copies.
    max_retransmits:
        Wire copies after the first send before the sender gives up.
    backoff_factor:
        Deterministic exponential backoff applied per attempt.
    """

    categories: frozenset[CostCategory] = frozenset(
        {
            CostCategory.CONTROL,
            CostCategory.FILTERING,
            CostCategory.DISSEMINATION,
            CostCategory.AGGREGATION,
            CostCategory.NAIVE,
            CostCategory.SAMPLING,
        }
    )
    exclude_kinds: frozenset[str] = frozenset({"HeartbeatPayload"})
    ack_timeout: float = 6.0
    max_retransmits: int = 4
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise NetworkError("ack_timeout must be positive")
        if self.max_retransmits < 0:
            raise NetworkError("max_retransmits must be non-negative")
        if self.backoff_factor < 1.0:
            raise NetworkError("backoff_factor must be >= 1")


@register_payload
@dataclass(frozen=True)
class TransportAckPayload(Payload):
    """Transport-level acknowledgement of one reliable wire message.

    Consumed by the receiving :class:`Transport` itself, never dispatched
    to node handlers.  ACKs travel the same lossy, partitionable links as
    data and are themselves fire-and-forget (a lost ACK costs one
    retransmission, suppressed as a duplicate at the receiver).
    """

    msg_id: int
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@dataclass
class _PendingSend:
    """Sender-side bookkeeping for one unacknowledged reliable message."""

    sender: int
    recipient: int
    payload: Payload
    attempts: int = 0


class _Batch:
    """Deliveries coalesced onto one (sender, recipient) link for one
    arrival instant.

    The transport schedules a single event per batch; messages whose
    computed arrival time matches an open batch on the same link are
    appended instead of scheduling their own event.  Draining preserves
    send order, and each entry keeps its own ``(payload, sent_at,
    msg_id, span)`` so per-message semantics (latency, ACKs, fault
    accounting, causal spans) are untouched — see docs/PERFORMANCE.md
    for the exact transparency boundary.
    """

    __slots__ = ("time", "entries")

    def __init__(
        self, time: float, entries: "deque[tuple[Payload, float, int | None, int]]"
    ) -> None:
        self.time = time
        self.entries = entries


class Transport:
    """Delivers payloads between nodes with latency, jitter and loss.

    Parameters
    ----------
    sim:
        The simulation providing the clock and RNG streams.
    resolve:
        Callback mapping a peer id to its :class:`~repro.net.node.Node`
        (or ``None`` if the peer is unknown/departed).  Supplied by the
        :class:`~repro.net.network.Network` to avoid a circular reference.
    config:
        Link characteristics.
    size_model:
        Wire pricing for payloads.
    accounting:
        Where sent bytes are charged.
    reliability:
        Optional ACK/retransmit configuration.  ``None`` (the default)
        keeps the paper's fire-and-forget semantics.

    Notes
    -----
    ``send`` is an instance attribute bound at construction — straight to
    :meth:`_transmit` for fire-and-forget links, through the reliable
    entry point when an ACK scheme is active — and the class is
    ``__slots__``-only so the per-message attribute reads skip the
    instance-dict hash lookups.
    """

    __slots__ = (
        "_sim",
        "_resolve",
        "_config",
        "_latency",
        "_jitter",
        "_loss_p",
        "size_model",
        "accounting",
        "reliability",
        "send",
        "_fault_hook",
        "_msg_ids",
        "_pending",
        "_delivered_reliable",
        "_bytes_sent",
        "_msgs_in_flight",
        "_latency_hist",
        "_retransmits",
        "_retransmit_failures",
        "_duplicates",
        "_n_sent",
        "_n_delivered",
        "_spans",
        "_cost_handles",
        "_drop_counters",
        "_batches",
    )

    send: Callable[[int, int, Payload], None]

    def __init__(
        self,
        sim: Simulation,
        resolve: Callable[[int], "Node | None"],
        config: TransportConfig,
        size_model: SizeModel,
        accounting: CostAccounting,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        self._sim = sim
        self._resolve = resolve
        self.config = config  # property: also hoists the link scalars
        self.size_model = size_model
        self.accounting = accounting
        self.reliability = reliability
        # Fire-and-forget configuration routes sends straight into
        # _transmit, skipping one Python frame per message; the reliable
        # entry point takes over whenever an ACK scheme is active.
        self.send = self._transmit if reliability is None else self._send_reliable
        self._fault_hook: FaultHook | None = None
        # Reliable-delivery state: monotonically increasing message ids,
        # unacknowledged sends, and the receiver-side duplicate filter.
        # The sets grow with the number of reliable messages in a run —
        # acceptable for simulation, where runs are finite by construction.
        self._msg_ids = itertools.count(1)
        self._pending: dict[int, _PendingSend] = {}
        self._delivered_reliable: set[int] = set()
        # Metric handles are resolved once: the send/deliver path updates
        # them with plain attribute math, no registry lookups.
        registry = sim.telemetry.registry
        self._bytes_sent = registry.counter("net.bytes_sent")
        self._msgs_in_flight = registry.gauge("net.msgs_in_flight")
        self._latency_hist = registry.histogram("net.msg_latency")
        self._retransmits = registry.counter("transport.retransmits")
        self._retransmit_failures = registry.counter("transport.retransmit_exhausted")
        self._duplicates = registry.counter("transport.duplicates_suppressed")
        # Quiet-path trace counts: with the tracer inactive, msg.sent /
        # msg.delivered are plain integer adds here, flushed into the
        # tracer's Counter whenever someone reads `tracer.counters`.
        self._n_sent = 0
        self._n_delivered = 0
        sim.trace.register_flush(self._flush_counts)
        # Causal span tracker handle (opt-in; `.enabled` is False by
        # default, so the per-message checks below are one attribute read).
        self._spans = sim.telemetry.spans
        # Interned accounting handles, one per cost category seen: the
        # per-message charge becomes two attribute/dict updates instead of
        # two defaultdict walks through CostAccounting.record.
        self._cost_handles: dict[
            CostCategory, tuple[dict[int, int], MessageCell]
        ] = {}
        self._drop_counters: dict[tuple[str, CostCategory], CounterMetric] = {}
        # Open delivery batches keyed by link; see _Batch.
        self._batches: dict[tuple[int, int], _Batch] = {}

    @property
    def config(self) -> TransportConfig:
        """Link characteristics.  Reassignable: experiments swap in a new
        :class:`TransportConfig` to change loss/latency mid-setup."""
        return self._config

    @config.setter
    def config(self, config: TransportConfig) -> None:
        self._config = config
        # Hot-path scalars hoisted onto the instance: read per message
        # without a dataclass attribute walk.  Kept in sync here, which is
        # why ``config`` is a property rather than a plain attribute.
        self._latency = config.latency
        self._jitter = config.latency_jitter
        self._loss_p = config.loss_probability

    def _flush_counts(self) -> None:
        """Move quiet-path send/deliver tallies into the tracer."""
        if self._n_sent:
            self._sim.trace.count("msg.sent", self._n_sent)
            self._n_sent = 0
        if self._n_delivered:
            self._sim.trace.count("msg.delivered", self._n_delivered)
            self._n_delivered = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or, with ``None``, remove) the fault-injection hook.

        At most one hook is active; a scenario that needs several fault
        processes composes them inside one hook (see
        :class:`repro.faults.FaultInjector`).
        """
        if hook is not None and self._fault_hook is not None:
            raise NetworkError(
                "a fault hook is already installed; clear it first "
                "(set_fault_hook(None)) or compose scenarios in one injector"
            )
        self._fault_hook = hook

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _send_reliable(self, sender: int, recipient: int, payload: Payload) -> None:
        """Charge the sender and schedule delivery (``send`` with an ACK
        scheme active).

        Bytes are charged at send time whether or not the message survives:
        a sender pays for what it puts on the wire.  With reliability
        enabled and the payload in a reliable category, the sender also
        arms a retransmit timer that re-sends the message until it is
        acknowledged or the retry budget is exhausted.
        """
        if self.reliability is not None and self._is_reliable(payload):
            msg_id = next(self._msg_ids)
            self._pending[msg_id] = _PendingSend(
                sender=sender, recipient=recipient, payload=payload
            )
            self._attempt(msg_id)
            return
        self._transmit(sender, recipient, payload, msg_id=None)

    def _is_reliable(self, payload: Payload) -> bool:
        assert self.reliability is not None
        if isinstance(payload, TransportAckPayload):
            return False  # never ack an ack
        if type(payload).__name__ in self.reliability.exclude_kinds:
            return False
        return payload.category in self.reliability.categories

    def _attempt(self, msg_id: int) -> None:
        """One wire copy of a pending reliable message plus its timer."""
        assert self.reliability is not None
        pending = self._pending[msg_id]
        pending.attempts += 1
        timeout = self.reliability.ack_timeout * (
            self.reliability.backoff_factor ** (pending.attempts - 1)
        )
        self._sim.post(timeout, self._on_ack_timeout, msg_id)
        self._transmit(pending.sender, pending.recipient, pending.payload, msg_id)

    def _on_ack_timeout(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:
            return  # acknowledged in time
        assert self.reliability is not None
        sender_node = self._resolve(pending.sender)
        if sender_node is None or not sender_node.alive:
            del self._pending[msg_id]  # a crashed sender retransmits nothing
            return
        if pending.attempts > self.reliability.max_retransmits:
            del self._pending[msg_id]
            self._retransmit_failures.inc()
            self._sim.trace.emit(
                self._sim.now,
                "transport.retransmit_exhausted",
                sender=pending.sender,
                recipient=pending.recipient,
                payload_kind=type(pending.payload).__name__,
                attempts=pending.attempts,
            )
            return
        self._retransmits.inc()
        self._sim.trace.emit(
            self._sim.now,
            "transport.retransmit",
            sender=pending.sender,
            recipient=pending.recipient,
            payload_kind=type(pending.payload).__name__,
            attempt=pending.attempts,
        )
        self._attempt(msg_id)

    def _transmit(
        self, sender: int, recipient: int, payload: Payload, msg_id: int | None = None
    ) -> None:
        """One wire attempt: charge, trace, inject faults, lose, delay."""
        sim = self._sim
        # Inlined payload-size cache hit (see Payload.size_bytes): payloads
        # are repriced thousands of times against the same model.
        model = self.size_model
        cache = payload.__dict__.get("_size_cache")
        if cache is not None and cache[0] is model:
            size = cache[1]
        else:
            size = payload.size_bytes(model)
        category = payload.category
        handles = self._cost_handles.get(category)
        if handles is None:
            handles = (
                self.accounting.bucket(category),
                self.accounting.message_cell(category),
            )
            self._cost_handles[category] = handles
        bucket, cell = handles
        bucket[sender] += size
        cell.n += 1
        self._bytes_sent.value += size
        trace = sim.trace
        span_sid = 0
        if trace.active:
            trace.emit(
                sim.now,
                "msg.sent",
                sender=sender,
                recipient=recipient,
                payload_kind=type(payload).__name__,
                category=category.value,
                size=size,
            )
            spans_ = self._spans
            if spans_.enabled:
                # The wire span parents to the sender's current causal
                # context and travels with the message through the batch
                # queue; every exit below (fault drop, loss, dead
                # recipient, delivery) closes it.  Owner stays None: a
                # sender crash does not recall bytes already on the wire.
                span_sid = spans_.open(
                    "wire.msg",
                    sender=sender,
                    recipient=recipient,
                    payload_kind=type(payload).__name__,
                    category=category.value,
                    size=size,
                )
        else:
            self._n_sent += 1
        extra_delay = 0.0
        if self._fault_hook is not None:
            verdict, extra = self._fault_hook(sender, recipient, payload)
            if verdict == DROP:
                self._count_drop("fault", category)
                trace.emit(
                    sim.now,
                    "msg.dropped_fault",
                    sender=sender,
                    recipient=recipient,
                    payload_kind=type(payload).__name__,
                    category=category.value,
                )
                if span_sid:
                    self._spans.close(span_sid, status="dropped", reason="fault")
                return
            if verdict == DELAY:
                extra_delay = extra
                trace.emit(
                    sim.now,
                    "msg.delayed_fault",
                    sender=sender,
                    recipient=recipient,
                    extra=extra,
                )
        if self._loss_p > 0.0:
            rng = sim.rng.stream("transport.loss")
            if rng.random() < self._loss_p:
                self._count_drop("loss", category)
                trace.emit(sim.now, "msg.lost", sender=sender)
                if span_sid:
                    self._spans.close(span_sid, status="lost")
                return
        delay = self._latency + extra_delay
        if self._jitter > 0.0:
            rng = sim.rng.stream("transport.latency")
            delay += float(rng.uniform(0.0, self._jitter))
        sent_at = sim._now
        # Inlined gauge update: this runs once per message.
        inflight = self._msgs_in_flight
        value = inflight.value + 1.0
        inflight.value = value
        if value > inflight.max_value:
            inflight.max_value = value
        # Coalesce same-arrival-instant deliveries on the same link into
        # one scheduled event; entries drain in send order, so each
        # message keeps its exact unbatched delivery time and ordering
        # relative to its link.
        deliver_at = sent_at + delay
        key = (sender, recipient)
        batch = self._batches.get(key)
        if batch is not None and batch.time == deliver_at:
            batch.entries.append((payload, sent_at, msg_id, span_sid))
            return
        batch = _Batch(deliver_at, deque(((payload, sent_at, msg_id, span_sid),)))
        self._batches[key] = batch
        # sim.post inlined (delay is never negative here): one scheduling
        # frame per batch is the remaining per-message engine cost.
        heapq.heappush(
            sim._heap,
            (deliver_at, next(sim._seq), self._deliver_batch, (sender, recipient, batch)),
        )

    def _count_drop(self, reason: str, category: CostCategory) -> None:
        """Count one silently dropped message, keyed by cost category."""
        key = (reason, category)
        counter = self._drop_counters.get(key)
        if counter is None:
            counter = self._sim.telemetry.registry.counter(
                f"net.msgs_dropped.{reason}.{category.value}"
            )
            self._drop_counters[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver_batch(self, sender: int, recipient: int, batch: _Batch) -> None:
        """Drain one link batch, delivering each entry in send order.

        The per-message delivery logic is inlined into the drain loop (one
        Python frame per *batch*, not per message) and every loop-invariant
        handle — clock, tracer, resolver result, histogram — is hoisted
        once.
        """
        key = (sender, recipient)
        # A newer batch may have replaced us in the index (later arrival
        # instant on the same link); only the current batch un-indexes.
        if self._batches.get(key) is batch:
            del self._batches[key]
        sim = self._sim
        now = sim._now
        trace = sim.trace
        inflight = self._msgs_in_flight
        node = self._resolve(recipient)
        # Bound handler lookup: Node.deliver's dispatch is inlined below
        # (one frame per message saved).  The handler dict's identity is
        # stable — fail() clears it in place — so the bound .get always
        # sees current registrations.
        handler_for = node._handlers.get if node is not None else None
        observe = self._latency_hist.observe
        spans_ = self._spans
        entries = batch.entries
        while entries:
            payload, sent_at, msg_id, span = entries.popleft()
            inflight.value -= 1.0
            # alive is re-read per entry: an earlier delivery in this very
            # batch may have crashed the recipient.
            if node is None or not node.alive:
                self._count_drop("dead", payload.category)
                trace.emit(now, "msg.dropped_dead_recipient", recipient=recipient)
                if span:
                    spans_.close(span, status="error", reason="dead_recipient")
                continue
            if type(payload) is TransportAckPayload:
                # Transport-internal: complete the pending send, never
                # dispatch.  Exact type check: isinstance on an ABC
                # descendant goes through ABCMeta.__instancecheck__,
                # measurably slow at one call per delivered message.
                self._pending.pop(payload.msg_id, None)
                if span:
                    spans_.close(span)
                continue
            if msg_id is not None:
                # Reliable data: acknowledge every copy (the first ACK may
                # have been lost), dispatch only the first.  The ACK's own
                # wire span parents to this delivery's span.
                if span:
                    previous = spans_.activate(span)
                    self._transmit(recipient, sender, TransportAckPayload(msg_id))
                    spans_.restore(previous)
                else:
                    self._transmit(recipient, sender, TransportAckPayload(msg_id))
                if msg_id in self._delivered_reliable:
                    self._duplicates.inc()
                    if span:
                        spans_.close(span, duplicate=True)
                    continue
                self._delivered_reliable.add(msg_id)
            latency = now - sent_at
            observe(latency)
            if trace.active:
                trace.emit(
                    now,
                    "msg.delivered",
                    sender=sender,
                    recipient=recipient,
                    latency=latency,
                )
            else:
                self._n_delivered += 1
            # Inlined Node.deliver (alive was already checked above):
            # dispatch to the registered handler or trace the orphan.
            handler = handler_for(type(payload))  # type: ignore[misc]
            if handler is None:
                trace.emit(
                    now,
                    "msg.unhandled",
                    peer=recipient,
                    payload_kind=type(payload).__name__,
                )
                if span:
                    spans_.close(span, status="error", reason="unhandled")
            elif span:
                # The delivery's span is the causal context while the
                # handler runs, so protocol work (and replies) it triggers
                # parents to this message; it closes when the handler — and
                # everything synchronous it caused — returns.
                previous = spans_.activate(span)
                handler(Message(sender, recipient, payload, sent_at, now, span))
                spans_.restore(previous)
                spans_.close(span, latency=latency)
            else:
                handler(Message(sender, recipient, payload, sent_at, now))
