"""Simulated point-to-point transport.

The transport models per-message latency (fixed plus optional uniform
jitter) and optional message loss, delivers payloads to live nodes, and is
the single place where bytes are priced and charged to the sender's cost
account.  Losing the destination (it failed or left) silently drops the
message — exactly what a UDP-style P2P overlay would observe — and the
protocols above are designed to survive that via timeouts and repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.metrics.accounting import CostAccounting
from repro.net.message import Message, Payload
from repro.net.wire import SizeModel
from repro.sim.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.node import Node


@dataclass(frozen=True)
class TransportConfig:
    """Delivery characteristics of the simulated links.

    Attributes
    ----------
    latency:
        Base one-hop delay in simulated time units.
    latency_jitter:
        Uniform jitter added per message, in ``[0, latency_jitter]``.
    loss_probability:
        Independent per-message drop probability (0 disables loss).
    """

    latency: float = 1.0
    latency_jitter: float = 0.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise NetworkError("latency must be non-negative")
        if self.latency_jitter < 0:
            raise NetworkError("latency_jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise NetworkError("loss_probability must be in [0, 1)")


class Transport:
    """Delivers payloads between nodes with latency, jitter and loss.

    Parameters
    ----------
    sim:
        The simulation providing the clock and RNG streams.
    resolve:
        Callback mapping a peer id to its :class:`~repro.net.node.Node`
        (or ``None`` if the peer is unknown/departed).  Supplied by the
        :class:`~repro.net.network.Network` to avoid a circular reference.
    config:
        Link characteristics.
    size_model:
        Wire pricing for payloads.
    accounting:
        Where sent bytes are charged.
    """

    def __init__(
        self,
        sim: Simulation,
        resolve: Callable[[int], "Node | None"],
        config: TransportConfig,
        size_model: SizeModel,
        accounting: CostAccounting,
    ) -> None:
        self._sim = sim
        self._resolve = resolve
        self.config = config
        self.size_model = size_model
        self.accounting = accounting
        # Metric handles are resolved once: the send/deliver path updates
        # them with plain attribute math, no registry lookups.
        registry = sim.telemetry.registry
        self._bytes_sent = registry.counter("net.bytes_sent")
        self._msgs_in_flight = registry.gauge("net.msgs_in_flight")
        self._latency_hist = registry.histogram("net.msg_latency")

    def send(self, sender: int, recipient: int, payload: Payload) -> None:
        """Charge the sender and schedule delivery.

        Bytes are charged at send time whether or not the message survives:
        a sender pays for what it puts on the wire.
        """
        size = payload.size_bytes(self.size_model)
        category = payload.category
        self.accounting.record(sender, category, size)
        self._bytes_sent.value += size
        trace = self._sim.trace
        if trace.active:
            trace.emit(
                self._sim.now,
                "msg.sent",
                sender=sender,
                recipient=recipient,
                payload_kind=type(payload).__name__,
                category=category.value,
                size=size,
            )
        else:
            trace.counters["msg.sent"] += 1
        if self.config.loss_probability > 0.0:
            rng = self._sim.rng.stream("transport.loss")
            if rng.random() < self.config.loss_probability:
                self._sim.trace.emit(self._sim.now, "msg.lost", sender=sender)
                return
        delay = self.config.latency
        if self.config.latency_jitter > 0.0:
            rng = self._sim.rng.stream("transport.latency")
            delay += float(rng.uniform(0.0, self.config.latency_jitter))
        sent_at = self._sim.now
        # Inlined gauge update: this runs once per message.
        inflight = self._msgs_in_flight
        inflight.value += 1.0
        if inflight.value > inflight.max_value:
            inflight.max_value = inflight.value
        self._sim.schedule(delay, self._deliver, sender, recipient, payload, sent_at)

    def _deliver(
        self, sender: int, recipient: int, payload: Payload, sent_at: float
    ) -> None:
        self._msgs_in_flight.value -= 1.0
        node = self._resolve(recipient)
        if node is None or not node.alive:
            self._sim.trace.emit(
                self._sim.now, "msg.dropped_dead_recipient", recipient=recipient
            )
            return
        latency = self._sim.now - sent_at
        self._latency_hist.observe(latency)
        trace = self._sim.trace
        if trace.active:
            trace.emit(
                self._sim.now,
                "msg.delivered",
                sender=sender,
                recipient=recipient,
                latency=latency,
            )
        else:
            trace.counters["msg.delivered"] += 1
        message = Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=sent_at,
            delivered_at=self._sim.now,
        )
        node.deliver(message)
