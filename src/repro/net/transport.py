"""Simulated point-to-point transport.

The transport models per-message latency (fixed plus optional uniform
jitter) and optional message loss, delivers payloads to live nodes, and is
the single place where bytes are priced and charged to the sender's cost
account.  Losing the destination (it failed or left) silently drops the
message — exactly what a UDP-style P2P overlay would observe — and the
protocols above are designed to survive that via timeouts and repair.

Two robustness hooks layer on top of that base model:

* **Fault injection** — :meth:`Transport.set_fault_hook` installs a single
  deterministic interception point consulted for every wire attempt (see
  :mod:`repro.faults`).  The hook can drop a message (link partitions,
  scripted drop bursts) or stretch its delivery latency, and the transport
  records what was done so fault runs can assert on what was lost.
* **Reliability** — an optional per-message ACK + bounded-retransmit
  scheme (:class:`ReliabilityConfig`) for control/aggregation traffic.
  Every reliable wire copy is charged like any other message (a
  retransmission costs real bytes), acknowledgements travel the same
  lossy links as data, duplicates created by lost ACKs are suppressed at
  the receiver, and the retransmit backoff is a deterministic exponential
  so runs replay bit-for-bit.

Every silently dropped message — dead/absent destination, random loss, or
fault injection — is additionally counted in the metrics registry under
``net.msgs_dropped.<reason>.<category>``, keyed by the payload's cost
category, so robustness experiments can assert on exactly what traffic
was lost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.metrics.accounting import CostAccounting
from repro.net.codec import register_payload
from repro.net.message import Message, Payload
from repro.net.wire import CostCategory, SizeModel
from repro.sim.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.node import Node

#: Fault-hook verdicts: deliver the message unchanged, drop it on the
#: floor, or deliver it after the returned extra delay.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"

#: A fault hook inspects ``(sender, recipient, payload)`` for one wire
#: attempt and returns ``(verdict, extra_delay)`` where the verdict is one
#: of :data:`DELIVER` / :data:`DROP` / :data:`DELAY`.  Hooks must be
#: deterministic functions of simulation state and named RNG streams.
FaultHook = Callable[[int, int, Payload], "tuple[str, float]"]


@dataclass(frozen=True)
class TransportConfig:
    """Delivery characteristics of the simulated links.

    Attributes
    ----------
    latency:
        Base one-hop delay in simulated time units.
    latency_jitter:
        Uniform jitter added per message, in ``[0, latency_jitter]``.
    loss_probability:
        Independent per-message drop probability (0 disables loss).
    """

    latency: float = 1.0
    latency_jitter: float = 0.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise NetworkError("latency must be non-negative")
        if self.latency_jitter < 0:
            raise NetworkError("latency_jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise NetworkError("loss_probability must be in [0, 1)")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Per-message ACK + bounded retransmit for selected traffic.

    Attributes
    ----------
    categories:
        Cost categories whose payloads are sent reliably.  Defaults to the
        convergecast/control categories; gossip traffic is redundant by
        design and stays fire-and-forget.
    exclude_kinds:
        Payload class names exempted even within a reliable category.
        Heartbeats are excluded by default: a late heartbeat is worthless
        (the next one supersedes it) and acking every heartbeat would
        double the steady-state control traffic.
    ack_timeout:
        Initial retransmit timeout.  Must exceed one round trip
        (``2 * (latency + latency_jitter)``) to avoid spurious copies.
    max_retransmits:
        Wire copies after the first send before the sender gives up.
    backoff_factor:
        Deterministic exponential backoff applied per attempt.
    """

    categories: frozenset[CostCategory] = frozenset(
        {
            CostCategory.CONTROL,
            CostCategory.FILTERING,
            CostCategory.DISSEMINATION,
            CostCategory.AGGREGATION,
            CostCategory.NAIVE,
            CostCategory.SAMPLING,
        }
    )
    exclude_kinds: frozenset[str] = frozenset({"HeartbeatPayload"})
    ack_timeout: float = 6.0
    max_retransmits: int = 4
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise NetworkError("ack_timeout must be positive")
        if self.max_retransmits < 0:
            raise NetworkError("max_retransmits must be non-negative")
        if self.backoff_factor < 1.0:
            raise NetworkError("backoff_factor must be >= 1")


@register_payload
@dataclass(frozen=True)
class TransportAckPayload(Payload):
    """Transport-level acknowledgement of one reliable wire message.

    Consumed by the receiving :class:`Transport` itself, never dispatched
    to node handlers.  ACKs travel the same lossy, partitionable links as
    data and are themselves fire-and-forget (a lost ACK costs one
    retransmission, suppressed as a duplicate at the receiver).
    """

    msg_id: int
    category = CostCategory.CONTROL

    def body_bytes(self, model: SizeModel) -> int:
        return model.aggregate_bytes


@dataclass
class _PendingSend:
    """Sender-side bookkeeping for one unacknowledged reliable message."""

    sender: int
    recipient: int
    payload: Payload
    attempts: int = 0


class Transport:
    """Delivers payloads between nodes with latency, jitter and loss.

    Parameters
    ----------
    sim:
        The simulation providing the clock and RNG streams.
    resolve:
        Callback mapping a peer id to its :class:`~repro.net.node.Node`
        (or ``None`` if the peer is unknown/departed).  Supplied by the
        :class:`~repro.net.network.Network` to avoid a circular reference.
    config:
        Link characteristics.
    size_model:
        Wire pricing for payloads.
    accounting:
        Where sent bytes are charged.
    reliability:
        Optional ACK/retransmit configuration.  ``None`` (the default)
        keeps the paper's fire-and-forget semantics.
    """

    def __init__(
        self,
        sim: Simulation,
        resolve: Callable[[int], "Node | None"],
        config: TransportConfig,
        size_model: SizeModel,
        accounting: CostAccounting,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        self._sim = sim
        self._resolve = resolve
        self.config = config
        self.size_model = size_model
        self.accounting = accounting
        self.reliability = reliability
        self._fault_hook: FaultHook | None = None
        # Reliable-delivery state: monotonically increasing message ids,
        # unacknowledged sends, and the receiver-side duplicate filter.
        # The sets grow with the number of reliable messages in a run —
        # acceptable for simulation, where runs are finite by construction.
        self._msg_ids = itertools.count(1)
        self._pending: dict[int, _PendingSend] = {}
        self._delivered_reliable: set[int] = set()
        # Metric handles are resolved once: the send/deliver path updates
        # them with plain attribute math, no registry lookups.
        registry = sim.telemetry.registry
        self._bytes_sent = registry.counter("net.bytes_sent")
        self._msgs_in_flight = registry.gauge("net.msgs_in_flight")
        self._latency_hist = registry.histogram("net.msg_latency")
        self._retransmits = registry.counter("transport.retransmits")
        self._retransmit_failures = registry.counter("transport.retransmit_exhausted")
        self._duplicates = registry.counter("transport.duplicates_suppressed")

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or, with ``None``, remove) the fault-injection hook.

        At most one hook is active; a scenario that needs several fault
        processes composes them inside one hook (see
        :class:`repro.faults.FaultInjector`).
        """
        if hook is not None and self._fault_hook is not None:
            raise NetworkError(
                "a fault hook is already installed; clear it first "
                "(set_fault_hook(None)) or compose scenarios in one injector"
            )
        self._fault_hook = hook

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Payload) -> None:
        """Charge the sender and schedule delivery.

        Bytes are charged at send time whether or not the message survives:
        a sender pays for what it puts on the wire.  With reliability
        enabled and the payload in a reliable category, the sender also
        arms a retransmit timer that re-sends the message until it is
        acknowledged or the retry budget is exhausted.
        """
        if self.reliability is not None and self._is_reliable(payload):
            msg_id = next(self._msg_ids)
            self._pending[msg_id] = _PendingSend(
                sender=sender, recipient=recipient, payload=payload
            )
            self._attempt(msg_id)
            return
        self._transmit(sender, recipient, payload, msg_id=None)

    def _is_reliable(self, payload: Payload) -> bool:
        assert self.reliability is not None
        if isinstance(payload, TransportAckPayload):
            return False  # never ack an ack
        if type(payload).__name__ in self.reliability.exclude_kinds:
            return False
        return payload.category in self.reliability.categories

    def _attempt(self, msg_id: int) -> None:
        """One wire copy of a pending reliable message plus its timer."""
        assert self.reliability is not None
        pending = self._pending[msg_id]
        pending.attempts += 1
        timeout = self.reliability.ack_timeout * (
            self.reliability.backoff_factor ** (pending.attempts - 1)
        )
        self._sim.schedule(timeout, self._on_ack_timeout, msg_id)
        self._transmit(pending.sender, pending.recipient, pending.payload, msg_id)

    def _on_ack_timeout(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:
            return  # acknowledged in time
        assert self.reliability is not None
        sender_node = self._resolve(pending.sender)
        if sender_node is None or not sender_node.alive:
            del self._pending[msg_id]  # a crashed sender retransmits nothing
            return
        if pending.attempts > self.reliability.max_retransmits:
            del self._pending[msg_id]
            self._retransmit_failures.inc()
            self._sim.trace.emit(
                self._sim.now,
                "transport.retransmit_exhausted",
                sender=pending.sender,
                recipient=pending.recipient,
                payload_kind=type(pending.payload).__name__,
                attempts=pending.attempts,
            )
            return
        self._retransmits.inc()
        self._sim.trace.emit(
            self._sim.now,
            "transport.retransmit",
            sender=pending.sender,
            recipient=pending.recipient,
            payload_kind=type(pending.payload).__name__,
            attempt=pending.attempts,
        )
        self._attempt(msg_id)

    def _transmit(
        self, sender: int, recipient: int, payload: Payload, msg_id: int | None
    ) -> None:
        """One wire attempt: charge, trace, inject faults, lose, delay."""
        size = payload.size_bytes(self.size_model)
        category = payload.category
        self.accounting.record(sender, category, size)
        self._bytes_sent.value += size
        trace = self._sim.trace
        if trace.active:
            trace.emit(
                self._sim.now,
                "msg.sent",
                sender=sender,
                recipient=recipient,
                payload_kind=type(payload).__name__,
                category=category.value,
                size=size,
            )
        else:
            trace.counters["msg.sent"] += 1
        extra_delay = 0.0
        if self._fault_hook is not None:
            verdict, extra = self._fault_hook(sender, recipient, payload)
            if verdict == DROP:
                self._count_drop("fault", category)
                self._sim.trace.emit(
                    self._sim.now,
                    "msg.dropped_fault",
                    sender=sender,
                    recipient=recipient,
                    payload_kind=type(payload).__name__,
                    category=category.value,
                )
                return
            if verdict == DELAY:
                extra_delay = extra
                self._sim.trace.emit(
                    self._sim.now,
                    "msg.delayed_fault",
                    sender=sender,
                    recipient=recipient,
                    extra=extra,
                )
        if self.config.loss_probability > 0.0:
            rng = self._sim.rng.stream("transport.loss")
            if rng.random() < self.config.loss_probability:
                self._count_drop("loss", category)
                self._sim.trace.emit(self._sim.now, "msg.lost", sender=sender)
                return
        delay = self.config.latency + extra_delay
        if self.config.latency_jitter > 0.0:
            rng = self._sim.rng.stream("transport.latency")
            delay += float(rng.uniform(0.0, self.config.latency_jitter))
        sent_at = self._sim.now
        # Inlined gauge update: this runs once per message.
        inflight = self._msgs_in_flight
        inflight.value += 1.0
        if inflight.value > inflight.max_value:
            inflight.max_value = inflight.value
        self._sim.schedule(
            delay, self._deliver, sender, recipient, payload, sent_at, msg_id
        )

    def _count_drop(self, reason: str, category: CostCategory) -> None:
        """Count one silently dropped message, keyed by cost category."""
        self._sim.telemetry.registry.counter(
            f"net.msgs_dropped.{reason}.{category.value}"
        ).inc()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(
        self,
        sender: int,
        recipient: int,
        payload: Payload,
        sent_at: float,
        msg_id: int | None,
    ) -> None:
        self._msgs_in_flight.value -= 1.0
        node = self._resolve(recipient)
        if node is None or not node.alive:
            self._count_drop("dead", payload.category)
            self._sim.trace.emit(
                self._sim.now, "msg.dropped_dead_recipient", recipient=recipient
            )
            return
        if isinstance(payload, TransportAckPayload):
            # Transport-internal: complete the pending send, never dispatch.
            self._pending.pop(payload.msg_id, None)
            return
        if msg_id is not None:
            # Reliable data: acknowledge every copy (the first ACK may have
            # been lost), dispatch only the first.
            self._transmit(recipient, sender, TransportAckPayload(msg_id), msg_id=None)
            if msg_id in self._delivered_reliable:
                self._duplicates.inc()
                return
            self._delivered_reliable.add(msg_id)
        latency = self._sim.now - sent_at
        self._latency_hist.observe(latency)
        trace = self._sim.trace
        if trace.active:
            trace.emit(
                self._sim.now,
                "msg.delivered",
                sender=sender,
                recipient=recipient,
                latency=latency,
            )
        else:
            trace.counters["msg.delivered"] += 1
        message = Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=sent_at,
            delivered_at=self._sim.now,
        )
        node.deliver(message)
