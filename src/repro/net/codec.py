"""The wire codec: a registry of every payload type that can be sent.

netFilter's exactness argument leans on two properties of the wire layer:
every byte the cost model reports was priced by the payload that put it
there (size accounting), and every payload type is known to the codec so
traces, reports and (future) real serialization can resolve a payload
kind by name.  An unregistered payload would be sendable but invisible to
that tooling — so registration is mandatory, checked statically by the
``PROTO001`` rule of :mod:`repro.lint` and enforced at import time by the
:func:`register_payload` decorator itself.

Usage::

    @register_payload
    @dataclass(frozen=True)
    class ProbePayload(Payload):
        category = CostCategory.CONTROL

        def body_bytes(self, model: SizeModel) -> int:
            return model.aggregate_bytes
"""

from __future__ import annotations

from typing import TypeVar

from repro.errors import NetworkError
from repro.net.message import Payload
from repro.net.wire import CostCategory

P = TypeVar("P", bound=Payload)

#: All registered payload types, keyed by class name (tagged per-instance
#: subclasses register under ``Base@tag``).
_PAYLOAD_TYPES: dict[str, type[Payload]] = {}

#: Payload class names the transport consumes itself instead of
#: dispatching to node handlers (``Transport._deliver_batch`` completes
#: the pending reliable send on an ACK and never delivers it).  Dispatch
#: metadata for tooling: the PROTO003 dead-letter rule exempts these,
#: since "sent but no register_handler anywhere" is their design.
TRANSPORT_CONSUMED_PAYLOADS: frozenset[str] = frozenset({"TransportAckPayload"})


def register_payload(cls: type[P]) -> type[P]:
    """Class decorator: validate and register one payload type.

    Validates at import time that the class carries its own size
    accounting (a concrete ``body_bytes``) and names a cost category —
    the two invariants the byte accounting of Section IV rests on.

    Raises
    ------
    NetworkError
        If the class is abstract about its size, lacks a category, or a
        different class already registered under the same name.
    """
    if cls.body_bytes is Payload.body_bytes or getattr(
        cls.body_bytes, "__isabstractmethod__", False
    ):
        raise NetworkError(
            f"payload {cls.__name__} does not implement body_bytes(); every "
            "registered payload must price itself"
        )
    category = getattr(cls, "category", None)
    if not isinstance(category, (CostCategory, property)):
        raise NetworkError(
            f"payload {cls.__name__} must declare a CostCategory (attribute "
            "or property) so its bytes land in an accounting bucket"
        )
    name = cls.__name__
    existing = _PAYLOAD_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise NetworkError(f"payload name {name!r} is already registered")
    _PAYLOAD_TYPES[name] = cls
    return cls


def payload_type(name: str) -> type[Payload]:
    """Resolve a registered payload class by name.

    Raises
    ------
    NetworkError
        If no payload registered under ``name``.
    """
    cls = _PAYLOAD_TYPES.get(name)
    if cls is None:
        raise NetworkError(f"unknown payload type {name!r}")
    return cls


def is_registered(cls: type[Payload]) -> bool:
    """Whether this exact class was registered with the codec."""
    return _PAYLOAD_TYPES.get(cls.__name__) is cls


def registered_payloads() -> dict[str, type[Payload]]:
    """Snapshot of the registry, sorted by name (stable for reports)."""
    return {name: _PAYLOAD_TYPES[name] for name in sorted(_PAYLOAD_TYPES)}
