"""The P2P network substrate.

This package provides everything the paper assumes of an unstructured P2P
system: peers (:class:`~repro.net.node.Node`) connected by an overlay
topology (:mod:`repro.net.overlay`), exchanging sized messages
(:mod:`repro.net.message`, :mod:`repro.net.wire`) through a simulated
transport with latency and optional loss (:mod:`repro.net.transport`),
with periodic heartbeats and failure detection
(:mod:`repro.net.heartbeat`) and a churn process (:mod:`repro.net.churn`).

Every byte that any protocol sends flows through
:meth:`~repro.net.network.Network.send` and is charged to a cost category
by the :class:`~repro.metrics.accounting.CostAccounting` — the experiment
harness never computes costs from formulas, it reads them off the wire.
"""

from repro.net.heartbeat import HeartbeatConfig, HeartbeatService
from repro.net.message import Message, Payload
from repro.net.network import Network
from repro.net.node import Node
from repro.net.overlay import Topology
from repro.net.transport import Transport, TransportConfig
from repro.net.wire import CostCategory, SizeModel

__all__ = [
    "CostCategory",
    "HeartbeatConfig",
    "HeartbeatService",
    "Message",
    "Network",
    "Node",
    "Payload",
    "SizeModel",
    "Topology",
    "Transport",
    "TransportConfig",
]
