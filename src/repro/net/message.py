"""Message and payload base classes.

A :class:`Payload` is what protocol code constructs and handles; the
:class:`Message` envelope (sender, recipient, timestamps) is added by the
transport.  Every payload prices itself against a
:class:`~repro.net.wire.SizeModel` and declares the
:class:`~repro.net.wire.CostCategory` its bytes are charged to, so the
accounting is decided where the payload is defined — next to the protocol —
rather than in the transport.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.net.wire import CostCategory, SizeModel


class Payload(abc.ABC):
    """Base class for everything sent between peers.

    Subclasses must set :attr:`category` and implement :meth:`body_bytes`.
    """

    #: Accounting bucket for this payload's bytes.
    category: CostCategory = CostCategory.CONTROL

    @abc.abstractmethod
    def body_bytes(self, model: SizeModel) -> int:
        """Size of the payload body in bytes under the given size model."""

    def size_bytes(self, model: SizeModel) -> int:
        """Total wire size: body plus the model's per-message header."""
        return self.body_bytes(model) + model.header_bytes


@dataclass(frozen=True)
class Message:
    """A payload in flight, as seen by the receiving node."""

    sender: int
    recipient: int
    payload: Payload
    sent_at: float
    delivered_at: float

    @property
    def kind(self) -> str:
        """Short payload-class name, for traces and debugging."""
        return type(self.payload).__name__
