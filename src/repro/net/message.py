"""Message and payload base classes.

A :class:`Payload` is what protocol code constructs and handles; the
:class:`Message` envelope (sender, recipient, timestamps) is added by the
transport.  Every payload prices itself against a
:class:`~repro.net.wire.SizeModel` and declares the
:class:`~repro.net.wire.CostCategory` its bytes are charged to, so the
accounting is decided where the payload is defined — next to the protocol —
rather than in the transport.
"""

from __future__ import annotations

import abc

from repro.net.wire import CostCategory, SizeModel


class Payload(abc.ABC):
    """Base class for everything sent between peers.

    Subclasses must set :attr:`category` and implement :meth:`body_bytes`.
    """

    #: Accounting bucket for this payload's bytes.
    category: CostCategory = CostCategory.CONTROL

    @abc.abstractmethod
    def body_bytes(self, model: SizeModel) -> int:
        """Size of the payload body in bytes under the given size model."""

    def size_bytes(self, model: SizeModel) -> int:
        """Total wire size: body plus the model's per-message header.

        The result is cached per instance, keyed by the size-model
        *identity*: payloads are immutable and a simulation prices every
        message against one model, so repeated sends of the same payload
        (heartbeats, shared control singletons, retransmissions) price it
        once.  ``object.__setattr__`` is used because most payloads are
        frozen dataclasses.
        """
        cache: tuple[SizeModel, int] | None = getattr(self, "_size_cache", None)
        if cache is not None and cache[0] is model:
            return cache[1]
        size = self.body_bytes(model) + model.header_bytes
        object.__setattr__(self, "_size_cache", (model, size))
        return size


class Message:
    """A payload in flight, as seen by the receiving node.

    A plain ``__slots__`` class rather than a dataclass: the transport
    builds one per delivered message, and the generated dataclass
    ``__init__`` roughly doubles that cost at production scale.
    """

    __slots__ = ("sender", "recipient", "payload", "sent_at", "delivered_at", "span")

    def __init__(
        self,
        sender: int,
        recipient: int,
        payload: Payload,
        sent_at: float,
        delivered_at: float,
        span: int = 0,
    ) -> None:
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        #: Causal span id of this wire message (0 when span tracking is
        #: off).  The transport stamps it at send and makes it the current
        #: causal context while the handler runs, so protocol work caused
        #: by this delivery parents to it (see repro.telemetry.spans).
        self.span = span

    @property
    def kind(self) -> str:
        """Short payload-class name, for traces and debugging."""
        return type(self.payload).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(sender={self.sender}, recipient={self.recipient}, "
            f"payload={self.payload!r}, sent_at={self.sent_at}, "
            f"delivered_at={self.delivered_at})"
        )
