"""Overlay topology builders.

The paper assumes an *unstructured* P2P overlay (Section I) and a BFS
hierarchy built over it with a mean downstream fan-out of ``b = 3``
(Table III).  This module provides several ways to get such an overlay:

* :meth:`Topology.random_connected` — a uniform spanning tree plus random
  extra edges; always connected, tunable mean degree.  This is the default
  used in the experiments.
* :meth:`Topology.random_regular`, :meth:`Topology.small_world`,
  :meth:`Topology.scale_free` — classical graph families (via ``networkx``)
  for topology-sensitivity studies.
* :meth:`Topology.balanced_tree` — an exact ``b``-ary tree, so the
  hierarchy's fan-out equals ``b`` precisely (used when validating the
  analytic cost model, which assumes a clean tree).
* :meth:`Topology.line` / :meth:`Topology.star` — degenerate shapes for
  unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError


@dataclass(frozen=True)
class Topology:
    """An undirected overlay graph as adjacency lists.

    Attributes
    ----------
    adjacency:
        ``adjacency[p]`` is the sorted tuple of peer ``p``'s neighbours.
    name:
        Human-readable description for reports.
    """

    adjacency: tuple[tuple[int, ...], ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        for peer, neighbors in enumerate(self.adjacency):
            for other in neighbors:
                if other == peer:
                    raise TopologyError(f"peer {peer} has a self-loop")
                if not 0 <= other < len(self.adjacency):
                    raise TopologyError(f"peer {peer} links to unknown peer {other}")
                if peer not in self.adjacency[other]:
                    raise TopologyError(
                        f"edge {peer}->{other} is not symmetric"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers in the overlay."""
        return len(self.adjacency)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.adjacency) // 2

    @property
    def mean_degree(self) -> float:
        """Average neighbour count."""
        return 2.0 * self.n_edges / self.n_peers if self.n_peers else 0.0

    def degree(self, peer: int) -> int:
        """Neighbour count of one peer."""
        return len(self.adjacency[peer])

    def is_connected(self) -> bool:
        """Whether every peer is reachable from peer 0 (BFS check)."""
        if self.n_peers == 0:
            return True
        seen = np.zeros(self.n_peers, dtype=bool)
        frontier = [0]
        seen[0] = True
        while frontier:
            nxt: list[int] = []
            for peer in frontier:
                for other in self.adjacency[peer]:
                    if not seen[other]:
                        seen[other] = True
                        nxt.append(other)
            frontier = nxt
        return bool(seen.all())

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(n_peers: int, edges: list[tuple[int, int]], name: str = "custom") -> "Topology":
        """Build a topology from an explicit edge list."""
        neighbor_sets: list[set[int]] = [set() for _ in range(n_peers)]
        for a, b in edges:
            if a == b:
                raise TopologyError(f"self-loop on peer {a}")
            neighbor_sets[a].add(b)
            neighbor_sets[b].add(a)
        adjacency = tuple(tuple(sorted(s)) for s in neighbor_sets)
        return Topology(adjacency=adjacency, name=name)

    @staticmethod
    def random_connected(
        n_peers: int, mean_degree: float, rng: np.random.Generator
    ) -> "Topology":
        """A connected random graph with the requested mean degree.

        Construction: a uniform random attachment tree (guarantees
        connectivity with ``n-1`` edges) plus uniformly random extra edges
        until the edge budget ``n · mean_degree / 2`` is met.
        """
        if n_peers < 2:
            raise TopologyError("need at least 2 peers")
        if mean_degree < 2.0 * (n_peers - 1) / n_peers:
            raise TopologyError(
                f"mean_degree {mean_degree} cannot keep {n_peers} peers connected"
            )
        edges: set[tuple[int, int]] = set()
        # Random attachment tree: peer k attaches to a uniform earlier peer.
        parents = rng.integers(0, np.arange(1, n_peers))
        for child in range(1, n_peers):
            parent = int(parents[child - 1])
            edges.add((min(parent, child), max(parent, child)))
        target_edges = int(round(n_peers * mean_degree / 2.0))
        max_edges = n_peers * (n_peers - 1) // 2
        target_edges = min(target_edges, max_edges)
        attempts = 0
        while len(edges) < target_edges and attempts < 50 * target_edges:
            a, b = rng.integers(0, n_peers, size=2)
            attempts += 1
            if a == b:
                continue
            edges.add((int(min(a, b)), int(max(a, b))))
        return Topology.from_edges(
            n_peers, sorted(edges), name=f"random(n={n_peers}, deg~{mean_degree})"
        )

    @staticmethod
    def random_regular(n_peers: int, degree: int, rng: np.random.Generator) -> "Topology":
        """A connected random ``degree``-regular graph (via networkx)."""
        import networkx as nx

        seed = int(rng.integers(0, 2**31 - 1))
        for attempt in range(20):
            graph = nx.random_regular_graph(degree, n_peers, seed=seed + attempt)
            if nx.is_connected(graph):
                return Topology.from_edges(
                    n_peers,
                    [(int(a), int(b)) for a, b in graph.edges()],
                    name=f"regular(n={n_peers}, d={degree})",
                )
        raise TopologyError(
            f"could not build a connected {degree}-regular graph on {n_peers} peers"
        )

    @staticmethod
    def small_world(
        n_peers: int, k: int, rewire_prob: float, rng: np.random.Generator
    ) -> "Topology":
        """A connected Watts-Strogatz small-world overlay (via networkx)."""
        import networkx as nx

        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.connected_watts_strogatz_graph(n_peers, k, rewire_prob, seed=seed)
        return Topology.from_edges(
            n_peers,
            [(int(a), int(b)) for a, b in graph.edges()],
            name=f"small_world(n={n_peers}, k={k}, p={rewire_prob})",
        )

    @staticmethod
    def scale_free(n_peers: int, attach_edges: int, rng: np.random.Generator) -> "Topology":
        """A Barabási-Albert scale-free overlay (via networkx) — the degree
        distribution empirically observed in Gnutella-like systems."""
        import networkx as nx

        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.barabasi_albert_graph(n_peers, attach_edges, seed=seed)
        return Topology.from_edges(
            n_peers,
            [(int(a), int(b)) for a, b in graph.edges()],
            name=f"scale_free(n={n_peers}, m={attach_edges})",
        )

    @staticmethod
    def balanced_tree(n_peers: int, branching: int) -> "Topology":
        """A ``branching``-ary tree with exactly ``n_peers`` nodes.

        Node ``k``'s parent is ``(k - 1) // branching``; this gives every
        internal node exactly ``branching`` children (except possibly the
        last), matching the paper's parameter ``b``.
        """
        if branching < 1:
            raise TopologyError("branching must be >= 1")
        if n_peers < 1:
            raise TopologyError("need at least 1 peer")
        edges = [((k - 1) // branching, k) for k in range(1, n_peers)]
        return Topology.from_edges(
            n_peers, edges, name=f"tree(n={n_peers}, b={branching})"
        )

    @staticmethod
    def line(n_peers: int) -> "Topology":
        """A path graph — worst-case hierarchy height, for tests."""
        edges = [(k, k + 1) for k in range(n_peers - 1)]
        return Topology.from_edges(n_peers, edges, name=f"line(n={n_peers})")

    @staticmethod
    def star(n_peers: int) -> "Topology":
        """A star graph — best-case hierarchy height, for tests."""
        edges = [(0, k) for k in range(1, n_peers)]
        return Topology.from_edges(n_peers, edges, name=f"star(n={n_peers})")
