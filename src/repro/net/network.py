"""The :class:`Network`: peers + topology + transport + accounting.

This is the object every protocol receives.  It owns the node table, knows
which peers are alive, exposes the transport, and carries the single
:class:`~repro.metrics.accounting.CostAccounting` instance that the
experiments read their results from.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import NetworkError
from repro.items.itemset import LocalItemSet
from repro.metrics.accounting import CostAccounting
from repro.net.node import Node
from repro.net.overlay import Topology
from repro.net.transport import ReliabilityConfig, Transport, TransportConfig
from repro.net.wire import SizeModel
from repro.sim.engine import Simulation


class Network:
    """A population of peers connected by an overlay.

    Parameters
    ----------
    sim:
        The discrete-event simulation driving this network.
    topology:
        The overlay graph; one :class:`~repro.net.node.Node` is created per
        topology vertex.
    transport_config:
        Link latency/jitter/loss.  Defaults to 1-unit fixed latency.
    size_model:
        Wire pricing (defaults to the paper's 4-byte integers).
    reliability:
        Optional transport-level ACK/retransmit configuration for
        control/aggregation traffic (see
        :class:`~repro.net.transport.ReliabilityConfig`).  ``None`` keeps
        the paper's fire-and-forget links.

    Examples
    --------
    >>> from repro.sim import Simulation
    >>> from repro.net.overlay import Topology
    >>> sim = Simulation(seed=1)
    >>> net = Network(sim, Topology.star(4))
    >>> sorted(net.node(0).neighbors)
    [1, 2, 3]
    """

    def __init__(
        self,
        sim: Simulation,
        topology: Topology,
        transport_config: TransportConfig | None = None,
        size_model: SizeModel | None = None,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.accounting = CostAccounting()
        sim.telemetry.attach_accounting(self.accounting)
        #: When each currently-failed peer went down — lets the failure
        #: detector report its detection latency.
        self.failed_at: dict[int, float] = {}
        self.size_model = size_model or SizeModel()
        self.nodes: dict[int, Node] = {}
        self.transport = Transport(
            sim,
            # Bound dict.get: resolving a recipient on the delivery hot
            # path is a C-level lookup, not a Python frame.  The dict is
            # filled (and mutated as peers join) in place, so the binding
            # never stales.
            self.nodes.get,
            transport_config or TransportConfig(),
            self.size_model,
            self.accounting,
            reliability=reliability,
        )
        for peer_id in range(topology.n_peers):
            self.nodes[peer_id] = Node(self, peer_id)
        self._join_listeners: list[Callable[[int], None]] = []
        self._crash_listeners: list[Callable[[int], None]] = []
        #: Highest hierarchy generation issued per tree tag — the fencing
        #: epoch of :mod:`repro.hierarchy.generation`.  Builds and root
        #: failovers bump it via :meth:`next_hierarchy_generation`.
        self._hierarchy_generations: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Total peer population (live and failed)."""
        return len(self.nodes)

    def node(self, peer_id: int) -> Node:
        """The node for ``peer_id``.

        Raises
        ------
        NetworkError
            If the peer does not exist.
        """
        node = self.nodes.get(peer_id)
        if node is None:
            raise NetworkError(f"unknown peer {peer_id}")
        return node

    def _resolve(self, peer_id: int) -> Node | None:
        return self.nodes.get(peer_id)

    def live_peers(self) -> list[int]:
        """Identifiers of currently-live peers, ascending."""
        return [peer_id for peer_id, node in self.nodes.items() if node.alive]

    @property
    def n_live_peers(self) -> int:
        """Count of currently-live peers."""
        return sum(1 for node in self.nodes.values() if node.alive)

    def live_neighbors(self, peer_id: int) -> list[int]:
        """Live overlay neighbours of a peer."""
        return [
            other
            for other in self.topology.adjacency[peer_id]
            if self.nodes[other].alive
        ]

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def assign_items(self, item_sets: dict[int, LocalItemSet] | Iterable[LocalItemSet]) -> None:
        """Install local item sets on the peers.

        Accepts either a ``{peer_id: LocalItemSet}`` mapping or an iterable
        assigned to peers ``0, 1, 2, ...`` in order.
        """
        if isinstance(item_sets, dict):
            pairs = item_sets.items()
        else:
            pairs = enumerate(item_sets)
        for peer_id, item_set in pairs:
            self.node(peer_id).items = item_set

    def grand_total_value(self) -> int:
        """``v`` — the sum of all local values of all items at live peers
        (Section IV introduces ``t = ρ · v``)."""
        return sum(node.items.total_value for node in self.nodes.values() if node.alive)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def on_join(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the peer id on every revive."""
        self._join_listeners.append(listener)

    def on_crash(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the peer id on every crash.

        Symmetric to :meth:`on_join`: services that install per-peer state
        (heartbeat timers, watchdogs) tear it down here rather than leaving
        a crashed peer's timers ticking.
        """
        self._crash_listeners.append(listener)

    def fail_peer(self, peer_id: int) -> None:
        """Crash a peer (it stops sending, receiving, and timing)."""
        node = self.node(peer_id)
        was_alive = node.alive
        if was_alive:
            self.failed_at[peer_id] = self.sim.now
            self.sim.telemetry.registry.counter("net.peer_failures").inc()
        node.fail()
        if was_alive:
            for listener in self._crash_listeners:
                listener(peer_id)

    def revive_peer(self, peer_id: int) -> None:
        """Bring a failed peer back and notify join listeners."""
        node = self.node(peer_id)
        if node.alive:
            return
        downtime = self.sim.now - self.failed_at.pop(peer_id, self.sim.now)
        node.revive()
        self.sim.telemetry.registry.counter("net.peer_revivals").inc()
        self.sim.telemetry.registry.histogram("net.peer_downtime").observe(downtime)
        for listener in self._join_listeners:
            listener(peer_id)

    # ------------------------------------------------------------------
    # Hierarchy generations
    # ------------------------------------------------------------------
    def next_hierarchy_generation(self, tag: str) -> int:
        """Issue the next generation for the tree named ``tag`` (first = 1).

        The network is the authority so that rebuilds of the same tree keep
        the counter monotone even when every :class:`HierarchyService` was
        torn down in between.
        """
        generation = self._hierarchy_generations.get(tag, 0) + 1
        self._hierarchy_generations[tag] = generation
        return generation

    def record_hierarchy_generation(self, tag: str, generation: int) -> None:
        """Advance the per-tree high-water mark to ``generation`` (a root
        failover bumps the generation locally and reports it here)."""
        if generation > self._hierarchy_generations.get(tag, 0):
            self._hierarchy_generations[tag] = generation
