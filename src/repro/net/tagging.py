"""Per-instance payload types.

Node message dispatch is keyed by payload *type*.  When two instances of
the same protocol run on one network — e.g. the multiple redundant
hierarchies of Section III-A.1 — their messages must not collide in the
dispatch table.  :func:`tagged` derives (and caches) a distinct subclass
of a payload type per instance tag; wire size, category and fields are
inherited unchanged, so tagging never alters measured costs.
"""

from __future__ import annotations

from repro.net.codec import register_payload
from repro.net.message import Payload

_CACHE: dict[tuple[type[Payload], str], type[Payload]] = {}


def tagged(base: type[Payload], tag: str) -> type[Payload]:
    """The payload type for instance ``tag`` of a protocol.

    The empty tag returns ``base`` itself, so single-instance deployments
    pay nothing.  Derived types are registered with the wire codec under
    ``Base@tag``, so tagged traffic stays resolvable by name.

    Examples
    --------
    >>> from repro.hierarchy.builder import BuildPayload
    >>> tagged(BuildPayload, "") is BuildPayload
    True
    >>> a = tagged(BuildPayload, "h1"); b = tagged(BuildPayload, "h1")
    >>> a is b and a is not BuildPayload and issubclass(a, BuildPayload)
    True
    """
    if not tag:
        return base
    key = (base, tag)
    derived = _CACHE.get(key)
    if derived is None:
        derived = register_payload(type(f"{base.__name__}@{tag}", (base,), {}))
        _CACHE[key] = derived
    return derived
