"""Wire-size model and cost categories.

Section IV of the paper measures communication cost in bytes using three
size constants: ``s_a`` (an aggregate value), ``s_g`` (an item-group
identifier) and ``s_i`` (an item identifier), all 4 bytes in the evaluation
(Table III).  :class:`SizeModel` holds these constants; every payload class
computes its own size from them, so changing the model re-prices every
protocol consistently.

:class:`CostCategory` names the buckets the paper's evaluation splits the
total cost into (candidate filtering / dissemination / aggregation), plus
buckets for the baseline and for traffic the paper explicitly excludes
(hierarchy formation and maintenance, i.e. ``CONTROL``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CostCategory(str, enum.Enum):
    """Accounting bucket for transmitted bytes.

    The paper's evaluation (Section V) reports ``FILTERING``,
    ``DISSEMINATION`` and ``AGGREGATION`` for netFilter, and the total for
    the naive baseline (``NAIVE``).  ``CONTROL`` covers hierarchy
    formation/maintenance traffic, which Section IV explicitly excludes
    from the cost model; we still measure it so ablations can quantify it.
    """

    #: Hierarchy build, heartbeats, repair, request routing.
    CONTROL = "control"
    #: Phase-1 up-sweep: item-group aggregate vectors (s_a · f · g per peer).
    FILTERING = "filtering"
    #: Heavy-group identifiers pushed down the hierarchy (s_g · f · w).
    DISSEMINATION = "dissemination"
    #: Phase-2 up-sweep: candidate (identifier, value) pairs.
    AGGREGATION = "aggregation"
    #: The naive baseline's full item-set convergecast.
    NAIVE = "naive"
    #: Random-branch sampling traffic for parameter estimation (Section IV-E).
    SAMPLING = "sampling"
    #: Push-sum gossip traffic (the paper's future-work aggregation).
    GOSSIP = "gossip"
    #: Sketch-based approximate-IFI traffic (the related-work comparator
    #: of the paper's footnote 5).
    SKETCH = "sketch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The categories that make up the paper's reported netFilter total.
NETFILTER_CATEGORIES: tuple[CostCategory, ...] = (
    CostCategory.FILTERING,
    CostCategory.DISSEMINATION,
    CostCategory.AGGREGATION,
)


@dataclass(frozen=True)
class SizeModel:
    """Byte sizes of the wire primitives (paper Table II / III).

    Attributes
    ----------
    aggregate_bytes:
        ``s_a`` — one aggregate value.
    group_id_bytes:
        ``s_g`` — one item-group identifier.
    item_id_bytes:
        ``s_i`` — one item identifier.
    header_bytes:
        Fixed per-message overhead.  The paper counts payload only, so the
        default is 0; set it to model realistic packet headers in
        sensitivity studies.
    """

    aggregate_bytes: int = 4
    group_id_bytes: int = 4
    item_id_bytes: int = 4
    header_bytes: int = 0

    def __post_init__(self) -> None:
        for name in ("aggregate_bytes", "group_id_bytes", "item_id_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")

    @property
    def pair_bytes(self) -> int:
        """``s_a + s_i`` — one (identifier, value) pair, the unit of both
        candidate aggregation and the naive baseline."""
        return self.aggregate_bytes + self.item_id_bytes


#: Default model used throughout the evaluation (4-byte integers).
PAPER_SIZE_MODEL = SizeModel()
