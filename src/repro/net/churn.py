"""Churn: peers failing and rejoining over time.

Section III-A of the paper recruits *stable* peers for the hierarchy
precisely because churn is what breaks hierarchical aggregation; Section
III-A.3 then gives the repair protocol for the residual churn among those
stable peers.  This module provides a Poisson churn process to drive that
repair machinery in tests and robustness ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.net.network import Network
from repro.sim.engine import Simulation


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the Poisson churn process.

    Attributes
    ----------
    failure_rate:
        Expected peer failures per simulated time unit (Poisson arrivals).
        ``0.0`` is allowed and means the process never fires — the natural
        control arm for robustness ablations that sweep churn rates.
    mean_downtime:
        Mean of the exponential downtime after which a failed peer
        revives.  ``None`` means failures are permanent.
    protected_peers:
        Peers that never fail (e.g. the hierarchy root, or the requester
        whose result we are asserting on in a test).
    """

    failure_rate: float = 0.01
    mean_downtime: float | None = 50.0
    protected_peers: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.failure_rate < 0:
            raise NetworkError("failure_rate must be non-negative")
        if self.mean_downtime is not None and self.mean_downtime <= 0:
            raise NetworkError("mean_downtime must be positive or None")


class ChurnProcess:
    """Drives random peer failures (and optional revivals) on a network.

    The process is started with :meth:`start` and keeps scheduling itself
    until :meth:`stop` or the simulation ends.  All randomness comes from
    the simulation's ``"churn"`` stream, so runs are reproducible.
    """

    def __init__(self, sim: Simulation, network: Network, config: ChurnConfig) -> None:
        self._sim = sim
        self._network = network
        self._config = config
        self._active = False
        self.failures = 0
        self.revivals = 0

    @property
    def active(self) -> bool:
        """Whether the process is currently scheduling failures."""
        return self._active

    def start(self) -> None:
        """Begin injecting failures.  Idempotent."""
        if self._active:
            return
        self._active = True
        self._schedule_next_failure()

    def stop(self) -> None:
        """Stop injecting failures (pending revivals still happen)."""
        self._active = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_next_failure(self) -> None:
        if self._config.failure_rate == 0:
            return  # a zero-rate process never fires (and draws no RNG)
        rng = self._sim.rng.stream("churn")
        gap = float(rng.exponential(1.0 / self._config.failure_rate))
        self._sim.schedule(gap, self._fail_one)

    def _fail_one(self) -> None:
        if not self._active:
            return
        rng = self._sim.rng.stream("churn")
        candidates = [
            peer
            for peer in self._network.live_peers()
            if peer not in self._config.protected_peers
        ]
        if candidates:
            victim = int(candidates[int(rng.integers(0, len(candidates)))])
            self._network.fail_peer(victim)
            self.failures += 1
            self._sim.trace.emit(
                self._sim.now,
                "churn.failure",
                peer=victim,
                live=self._network.n_live_peers,
            )
            if self._config.mean_downtime is not None:
                downtime = float(rng.exponential(self._config.mean_downtime))
                self._sim.schedule(downtime, self._revive_one, victim)
        self._schedule_next_failure()

    def _revive_one(self, peer: int) -> None:
        self._network.revive_peer(peer)
        self.revivals += 1
        self._sim.trace.emit(
            self._sim.now,
            "churn.revival",
            peer=peer,
            live=self._network.n_live_peers,
        )
